"""Ablation — conflict accounting: episodes vs stall cycles (DESIGN §5.3).

The paper's Fig. 10(c)-(e) counts conflicts "encountered"; lost time is
a different quantity (one episode can stall many clocks).  This bench
reports both countings side by side for the contended triad sweep and
shows where they diverge: the average stall length tracks the barrier
geometry — the INC=2 victim suffers *many 1-clock* delays
((d_victim - d_barrier)/f = 1), INC=3 *fewer but 2-clock* ones, and the
INC=16 resonance the longest of all — structure a single counter hides.
"""

from __future__ import annotations

from repro.machine.xmp import triad_sweep
from repro.viz.series import multi_series_table

from conftest import print_header

INCS = list(range(1, 17))


def _run():
    return {r.inc: r for r in triad_sweep(INCS, other_cpu_active=True, n=512)}


def test_ablation_accounting(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header(
        "Conflict accounting: episodes vs stall cycles "
        "(contended triad, n=512)"
    )
    episodes = [
        rows[i].bank_conflicts
        + rows[i].section_conflicts
        + rows[i].simultaneous_conflicts
        for i in INCS
    ]
    stalls = [
        rows[i].bank_stall_cycles
        + rows[i].section_stall_cycles
        + rows[i].simultaneous_stall_cycles
        for i in INCS
    ]
    per_episode = [s / max(1, e) for s, e in zip(stalls, episodes)]
    print(multi_series_table(
        INCS,
        {
            "episodes": episodes,
            "stall clocks": stalls,
            "clocks/episode": per_episode,
        },
        x_label="INC",
    ))

    by_inc = dict(zip(INCS, per_episode))
    by_episodes = dict(zip(INCS, episodes))
    # stalls never undercount episodes
    assert all(s >= e for s, e in zip(stalls, episodes))
    # barrier geometry: the INC=3 victim's delays ((3-1)/1 = 2 clocks)
    # run longer than the INC=2 victim's 1-clock delays...
    assert by_inc[3] > by_inc[2]
    # ...while INC=2 compensates with the most frequent stalls of the
    # small increments
    assert by_episodes[2] > by_episodes[1]
    assert by_episodes[2] > by_episodes[3]
    # the INC=16 single-bank resonance has the longest average stalls
    assert by_inc[16] == max(by_inc.values())

    benchmark.extra_info["clocks_per_episode"] = {
        i: round(v, 2) for i, v in by_inc.items()
    }
