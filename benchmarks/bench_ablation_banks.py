"""Ablation — bank-count scaling of the triad experiment.

Would a 32- or 64-bank X-MP fix the Fig. 10 pathologies?  Runs the
contended triad (INC = 1, 2, 3, 8) on memories of 16/32/64 banks (same
``n_c = 4``, sections scaled with the banks) and reports the speedups.

Finding (matching the paper's conclusion): *capacity* pathologies are
cured by banks — INC=1's six-port saturation and INC=8's ``r < n_c``
resonance improve sharply — but the INC=3 **barrier-situation barely
moves**, because a barrier is a property of the stream geometry, not of
capacity: "the barrier-situation is a problem of the access environment
and cannot be alleviated by architectural means".
"""

from __future__ import annotations

from repro.machine.xmp import run_triad
from repro.memory.config import MemoryConfig
from repro.viz.tables import format_table

from conftest import print_header

INCS = (1, 2, 3, 8)
BANKS = (16, 32, 64)


def _run():
    out = {}
    for m in BANKS:
        cfg = MemoryConfig(banks=m, bank_cycle=4, sections=4)
        for inc in INCS:
            out[(m, inc)] = run_triad(
                inc, other_cpu_active=True, config=cfg, n=512
            ).cycles
    return out


def test_ablation_banks(benchmark):
    cycles = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Bank scaling: contended triad clocks (n=512, n_c=4)")
    rows = []
    for inc in INCS:
        rows.append(
            (inc, *(cycles[(m, inc)] for m in BANKS))
        )
    print(format_table(
        ["INC", *(f"m={m}" for m in BANKS)], rows
    ))
    print("\nratios vs m=16:")
    for inc in INCS:
        base = cycles[(16, inc)]
        print(
            f"  INC={inc}: "
            + ", ".join(f"m={m}: {cycles[(m, inc)]/base:.2f}x" for m in BANKS)
        )

    # more banks never hurt
    for inc in INCS:
        assert cycles[(32, inc)] <= cycles[(16, inc)], inc
        assert cycles[(64, inc)] <= cycles[(32, inc)] * 1.05, inc
    # capacity pathologies are cured: INC=1 saturation and the INC=8
    # resonance (r = 2 on m=16) relax substantially
    assert cycles[(64, 1)] < 0.8 * cycles[(16, 1)]
    assert cycles[(64, 8)] < 0.5 * cycles[(16, 8)]
    # ...but the INC=3 barrier-situation is NOT an architectural problem:
    # its absolute cost barely moves with 4x the banks (paper, Sec. V).
    assert cycles[(64, 3)] > 0.9 * cycles[(16, 3)]

    benchmark.extra_info["cycles"] = {str(k): v for k, v in cycles.items()}
