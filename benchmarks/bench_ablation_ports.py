"""Ablation — port count vs bank capacity (the Section IV remark).

The paper explains the imperfect INC=1 performance of Fig. 10 with
"6·n_c = 24 > 16, i.e., 16 banks are not sufficient to support all
access requests in parallel".  This bench quantifies that remark: the
exact steady bandwidth of ``p = 1..8`` staggered unit-stride streams on
the X-MP memory, against the analytic bound ``min(p, m/n_c)``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.multistream import (
    capacity_bound,
    equal_stride_bandwidth_bound,
    max_conflict_free_streams,
)
from repro.memory.config import MemoryConfig
from repro.sim.multi import equal_stride_table
from repro.viz.tables import format_table

from conftest import print_header

CFG = MemoryConfig(banks=16, bank_cycle=4)
MAX_STREAMS = 8


def _run():
    return equal_stride_table(CFG, 1, MAX_STREAMS)


def test_ablation_ports(benchmark):
    table = benchmark(_run)

    print_header(
        "Port scaling: p unit-stride streams on m=16, n_c=4 "
        "(the '6·n_c = 24 > 16' remark)"
    )
    rows = []
    for p in range(1, MAX_STREAMS + 1):
        bound = equal_stride_bandwidth_bound(16, 4, 1, p)
        rows.append(
            (
                p,
                str(table[p]),
                str(bound),
                str(capacity_bound(16, 4, p)),
                "yes" if table[p] == bound else "NO",
            )
        )
    print(format_table(
        ["p", "simulated b_eff", "ring bound", "capacity", "tight"], rows
    ))
    print(
        f"\nmax conflict-free unit-stride streams: "
        f"{max_conflict_free_streams(16, 4, 1)} (= m/n_c = 4)"
    )

    # the bound is achieved exactly everywhere
    for p in range(1, MAX_STREAMS + 1):
        assert table[p] == equal_stride_bandwidth_bound(16, 4, 1, p)
    # and six streams saturate at 4 — the paper's observation
    assert table[6] == Fraction(4)

    benchmark.extra_info["plateau"] = float(table[MAX_STREAMS])
