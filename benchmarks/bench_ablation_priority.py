"""Ablation T-D — priority rules on linked conflicts (DESIGN.md §5.1).

Sweeps all relative starts of the Fig. 8 workload under fixed, cyclic
and LRU arbitration, reporting how many starts each rule leaves locked
in the 3/2 linked conflict.  The paper's observation — a fixed rule can
lock what a cyclic rule frees — should survive as a distribution-level
statement.
"""

from __future__ import annotations

from fractions import Fraction

from repro.memory.config import FIG8_CONFIG
from repro.sim.pairs import bandwidth_by_offset
from repro.viz.tables import format_table

from conftest import print_header

RULES = ("fixed", "cyclic", "block-cyclic:3", "lru")


def _run():
    out = {}
    for rule in RULES:
        table = bandwidth_by_offset(
            FIG8_CONFIG, 1, 1, same_cpu=True, priority=rule
        )
        out[rule] = table
    return out


def test_ablation_priority(benchmark):
    tables = benchmark(_run)

    print_header(
        "T-D: priority-rule ablation on the Fig. 8 workload "
        "(m=12, s=3, n_c=3, d1=d2=1, all starts)"
    )
    rows = []
    for rule in RULES:
        values = tables[rule]
        locked = [o for o, bw in values.items() if bw < 2]
        rows.append(
            (
                rule,
                len(locked),
                12 - len(locked),
                str(min(values.values())),
                str(locked),
            )
        )
    print(format_table(
        ["rule", "locked starts", "free starts", "worst b_eff", "locked offsets"],
        rows,
    ))

    # Paper's data point: at the Fig. 8 start (offset 1) fixed locks,
    # cyclic frees.
    assert tables["fixed"][1] == Fraction(3, 2)
    assert tables["cyclic"][1] == Fraction(2)
    # The paper's own granularity — priority held for n_c = 3 clocks —
    # frees EVERY start on this workload.
    assert all(bw == Fraction(2) for bw in tables["block-cyclic:3"].values())
    # No rule makes anything *worse* than the linked conflict here.
    for rule in RULES:
        assert min(tables[rule].values()) >= Fraction(3, 2)

    benchmark.extra_info["locked_counts"] = {
        rule: sum(1 for bw in tables[rule].values() if bw < 2)
        for rule in RULES
    }
