"""Ablation T-E — skewing schemes (the conclusion's outlook).

The paper closes by suggesting skewing schemes as a remedy for
non-uniform access streams.  This bench measures, on the X-MP memory
shape, the bandwidth of each stride 1..16 paired against one unit-stride
peer under (a) plain low-order interleaving and (b) a linear row-skewed
placement — quantifying how much of the Fig. 10 stride-sensitivity a
skew removes.
"""

from __future__ import annotations

from fractions import Fraction

from repro.memory.config import MemoryConfig
from repro.skewing.evaluate import stride_sensitivity
from repro.viz.series import multi_series_table

from conftest import print_header

CFG = MemoryConfig(banks=16, bank_cycle=4)


def _run():
    return stride_sensitivity(
        CFG, range(1, 17), peers=1, skew=1, horizon=2048, warmup=256
    )


def test_ablation_skewing(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header(
        "T-E: skewing ablation — stride d + one unit-stride peer "
        "(m=16, n_c=4; grants/clock, max 2)"
    )
    strides = [r.stride for r in rows]
    print(multi_series_table(
        strides,
        {
            "plain": [float(r.plain) for r in rows],
            "skewed": [float(r.skewed) for r in rows],
            "gain %": [100 * r.improvement for r in rows],
        },
        x_label="d",
    ))

    by_stride = {r.stride: r for r in rows}
    # Power-of-two strides collapse under plain interleaving...
    assert by_stride[16].plain <= Fraction(1, 2)
    assert by_stride[8].plain <= Fraction(3, 2)
    # ...and the skew recovers a large part of it.
    assert by_stride[16].skewed > 2 * by_stride[16].plain
    assert by_stride[8].skewed > by_stride[8].plain
    # The skew never hurts the already-good unit stride.
    assert by_stride[1].skewed == by_stride[1].plain == 2

    benchmark.extra_info["gain_stride16"] = by_stride[16].improvement
    benchmark.extra_info["gain_stride8"] = by_stride[8].improvement
