"""Context — structured vs random access (why this paper exists).

The introduction contrasts the paper's structured-stream analysis with
the random-access models of [1]-[5].  This bench puts numbers on that
contrast for the X-MP memory shape:

* Hellerman's ``B(m)`` and the binomial ``m(1-(1-1/m)^p)`` — what the
  classic theory predicts for random requests;
* measured bandwidth of p random gather streams under the machine's
  resubmission semantics;
* measured bandwidth of p staggered unit-stride streams — the
  structured access the paper optimises.
"""

from __future__ import annotations

from fractions import Fraction

from repro.memory.config import MemoryConfig
from repro.stochastic.evaluate import structured_vs_random
from repro.stochastic.models import (
    binomial_bandwidth,
    hellerman_approximation,
    hellerman_bandwidth,
)
from repro.viz.tables import format_table

from conftest import print_header

CFG = MemoryConfig(banks=16, bank_cycle=4)
PORTS = (1, 2, 4, 6)


def _run():
    return {p: structured_vs_random(CFG, p, horizon=4096, warmup=512)
            for p in PORTS}


def test_context_random_access(benchmark):
    comps = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header(
        "Structured vs random access on m=16, n_c=4 (grants/clock)"
    )
    rows = []
    for p in PORTS:
        c = comps[p]
        rows.append(
            (
                p,
                f"{float(c.structured):.3f}",
                f"{float(c.random):.3f}",
                f"{float(binomial_bandwidth(16, p)):.3f}",
                f"{c.structured_advantage:.2f}x",
            )
        )
    print(format_table(
        ["ports", "structured", "random (resubmit)", "binomial model",
         "advantage"],
        rows,
    ))
    print(
        f"\nHellerman B(16) = {hellerman_bandwidth(16):.3f} "
        f"(approx sqrt(pi*16/2) = {hellerman_approximation(16):.3f})"
    )

    for p in PORTS:
        c = comps[p]
        # structured streams achieve the exact capacity bound...
        assert c.structured == min(Fraction(p), Fraction(4))
        # ...random gathers always lose
        assert c.random < c.structured
    # the binomial model (n_c=1, drop) upper-bounds our resubmission
    # measurement scaled by the bank hold time: sanity, not equality.
    assert float(comps[6].random) < float(binomial_bandwidth(16, 6))

    benchmark.extra_info["advantage_p4"] = comps[4].structured_advantage
