"""Extension — dueling triads: the companion study's direction.

Both CPUs run the triad with independent increments (the paper ran the
asymmetric case: one triad vs a fixed d=1 competitor).  The contention
matrix shows the barrier physics from both sides at once: whoever runs
the larger-stride member of a barrier pair pays, symmetric strides
share fairly.
"""

from __future__ import annotations

from repro.machine.experiments import contention_matrix
from repro.viz.tables import format_table

from conftest import print_header

INCS = (1, 2, 3, 8)


def _run():
    return contention_matrix(INCS, INCS, n=256)


def test_dueling_triads(benchmark):
    grid = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header(
        "Dueling triads: CPU-0 clocks for every (INC0, INC1), n=256"
    )
    rows = []
    for i0 in INCS:
        rows.append(
            (i0, *(grid[(i0, i1)].cycles_cpu0 for i1 in INCS))
        )
    print(format_table(
        ["INC0 \\ INC1", *(str(i) for i in INCS)], rows
    ))
    print("\nimbalance (slower/faster CPU):")
    rows = []
    for i0 in INCS:
        rows.append(
            (i0, *(f"{grid[(i0, i1)].imbalance:.2f}" for i1 in INCS))
        )
    print(format_table(
        ["INC0 \\ INC1", *(str(i) for i in INCS)], rows
    ))

    # symmetric pairs roughly balance (INC=8's r=2 resonance is quite
    # sensitive to the two COMMON blocks' relative bank placement, so
    # allow a wider band there)...
    for inc in INCS:
        assert grid[(inc, inc)].imbalance < 1.25, inc
    # ...asymmetric barrier pairs penalise the larger stride, both ways
    assert grid[(1, 3)].cycles_cpu1 > 1.2 * grid[(1, 3)].cycles_cpu0
    assert grid[(3, 1)].cycles_cpu0 > 1.2 * grid[(3, 1)].cycles_cpu1
    # the matrix is approximately symmetric under role swap; it cannot
    # be exact because the two COMMON blocks necessarily occupy
    # different bank offsets (storage cannot overlap), which shifts the
    # self-conflict-heavy INC=8 rows the most.
    for i0 in INCS:
        for i1 in INCS:
            a = grid[(i0, i1)].cycles_cpu0
            b = grid[(i1, i0)].cycles_cpu1
            assert abs(a - b) <= 0.25 * max(a, b), (i0, i1)

    benchmark.extra_info["diag_cycles"] = {
        i: grid[(i, i)].cycles_cpu0 for i in INCS
    }
