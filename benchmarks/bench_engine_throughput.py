"""Performance — raw simulator throughput (clocks simulated per second).

Not a paper experiment: this tracks the speed of the reproduction's own
engines so regressions in the arbitration loop are caught.  Three
workload shapes spanning the arbitration paths: one port (bank checks
only), two CPUs (simultaneous conflicts), six ports on a sectioned
memory (full three-phase arbitration) — each run on both backends, so
the benchmark table shows the reference/fast gap directly (the standing
claim is fast >= 3x reference; ``tools/bench_compare.py`` checks the
same workloads headlessly).
"""

from __future__ import annotations

import pytest

from repro.core.stream import AccessStream
from repro.memory.config import MemoryConfig
from repro.runner import SimJob, run
from repro.sim.engine import Engine
from repro.sim.port import Port

CLOCKS = 2000

WORKLOADS = [(1, False), (2, False), (6, True)]
WORKLOAD_IDS = ["1port", "2ports", "6ports-sectioned"]


def _config(sectioned: bool) -> MemoryConfig:
    return MemoryConfig(banks=16, bank_cycle=4, sections=4 if sectioned else None)


def _specs(n_ports: int) -> list[tuple[int, int]]:
    return [((3 * i) % 16, 1 + (i % 3)) for i in range(n_ports)]


def _build(n_ports: int, sectioned: bool):
    cfg = _config(sectioned)
    ports = [Port(index=i, cpu=i % 2) for i in range(n_ports)]
    engine = Engine(cfg, ports, priority="cyclic")
    for p, (b, d) in zip(ports, _specs(n_ports)):
        p.assign(AccessStream(start_bank=b, stride=d))
    return engine


@pytest.mark.parametrize("n_ports,sectioned", WORKLOADS, ids=WORKLOAD_IDS)
def test_engine_throughput(benchmark, n_ports, sectioned):
    def run_engine():
        engine = _build(n_ports, sectioned)
        engine.run(CLOCKS)
        return engine.stats.total_grants

    grants = benchmark(run_engine)
    assert grants > 0
    benchmark.extra_info["clocks"] = CLOCKS
    benchmark.extra_info["grants"] = grants
    benchmark.extra_info["backend"] = "reference"


@pytest.mark.parametrize("n_ports,sectioned", WORKLOADS, ids=WORKLOAD_IDS)
@pytest.mark.parametrize("backend", ["reference", "fast"])
def test_runner_throughput(benchmark, backend, n_ports, sectioned):
    """Same workloads through the runner layer, on each backend."""
    job = SimJob.from_specs(
        _config(sectioned),
        _specs(n_ports),
        cpus=[i % 2 for i in range(n_ports)],
        priority="cyclic",
        steady=False,
        cycles=CLOCKS,
    )

    def run_job():
        return run(job, backend=backend)

    out = benchmark(run_job)
    assert sum(out.grants) > 0
    benchmark.extra_info["clocks"] = CLOCKS
    benchmark.extra_info["grants"] = sum(out.grants)
    benchmark.extra_info["backend"] = backend
