"""Performance — raw simulator throughput (clocks simulated per second).

Not a paper experiment: this tracks the speed of the reproduction's own
engine so regressions in the arbitration loop are caught.  Three
workload shapes spanning the arbitration paths: one port (bank checks
only), two CPUs (simultaneous conflicts), six ports on a sectioned
memory (full three-phase arbitration).
"""

from __future__ import annotations

import pytest

from repro.core.stream import AccessStream
from repro.memory.config import MemoryConfig
from repro.sim.engine import Engine
from repro.sim.port import Port

CLOCKS = 2000


def _build(n_ports: int, sectioned: bool):
    cfg = MemoryConfig(
        banks=16, bank_cycle=4, sections=4 if sectioned else None
    )
    ports = [Port(index=i, cpu=i % 2) for i in range(n_ports)]
    engine = Engine(cfg, ports, priority="cyclic")
    for i, p in enumerate(ports):
        p.assign(AccessStream(start_bank=(3 * i) % 16, stride=1 + (i % 3)))
    return engine


@pytest.mark.parametrize(
    "n_ports,sectioned",
    [(1, False), (2, False), (6, True)],
    ids=["1port", "2ports", "6ports-sectioned"],
)
def test_engine_throughput(benchmark, n_ports, sectioned):
    def run():
        engine = _build(n_ports, sectioned)
        engine.run(CLOCKS)
        return engine.stats.total_grants

    grants = benchmark(run)
    assert grants > 0
    benchmark.extra_info["clocks"] = CLOCKS
    benchmark.extra_info["grants"] = grants
