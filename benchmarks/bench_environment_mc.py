"""Extension — expected bandwidth of random access environments.

The conclusion's warning — barrier-situations "may easily be
encountered" in multi-processor systems because relative placements are
unpredictable — as a distribution statement: Monte-Carlo sampling of
start banks for three-stream environments on the X-MP memory, reporting
mean/worst/best steady bandwidth per stride mix.
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.montecarlo import sample_environments
from repro.memory.config import MemoryConfig
from repro.viz.tables import format_table

from conftest import print_header

CFG = MemoryConfig(banks=16, bank_cycle=4)
MIXES = [
    ("uniform d=1", [1, 1, 1]),
    ("odd strides", [1, 3, 5]),
    ("mixed 1,2,3", [1, 2, 3]),
    ("with a d=8", [1, 1, 8]),
    ("all d=2", [2, 2, 2]),
]
SAMPLES = 60


def _run(executor):
    return {
        name: sample_environments(
            CFG, strides, samples=SAMPLES, seed=7, executor=executor
        )
        for name, strides in MIXES
    }


def test_environment_mc(benchmark, executor):
    stats = benchmark.pedantic(
        _run, args=(executor,), rounds=1, iterations=1
    )

    print_header(
        f"Random environments on m=16, n_c=4 "
        f"({SAMPLES} placements each, 3 streams)"
    )
    rows = []
    for name, strides in MIXES:
        s = stats[name]
        rows.append(
            (
                name,
                str(strides),
                f"{s.mean:.3f}",
                str(s.worst),
                str(s.best),
                f"{100 * s.best_share:.0f}%",
            )
        )
    print(format_table(
        ["mix", "strides", "mean", "worst", "best", "P(best)"], rows
    ))

    # uniform unit strides synchronize from anywhere: zero spread at 3.
    assert stats["uniform d=1"].worst == 3
    assert stats["uniform d=1"].spread == 0.0
    # a self-conflicting member drags the whole environment down and
    # makes it placement-sensitive.
    assert stats["with a d=8"].mean < 2.5
    assert stats["with a d=8"].spread > 0
    # all-equal d=2 is strongly placement-dependent: starts that split
    # the streams across the even/odd bank rings (Theorem 2's disjoint
    # access sets) reach 3, while same-ring placements are capped by the
    # ring bound r/n_c = 2.
    assert stats["all d=2"].best == Fraction(3)
    assert stats["all d=2"].worst == Fraction(2)

    benchmark.extra_info["means"] = {
        name: stats[name].mean for name, _ in MIXES
    }
