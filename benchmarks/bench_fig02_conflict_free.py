"""Fig. 2 — conflict-free access.

12-way interleaved memory, ``n_c = 3``, streams ``d1 = 1`` and ``d2 = 7``
(start offset ``n_c·d1 = 3``): no conflicts, ``b_eff = 2``.  The bench
regenerates the trace diagram and verifies the steady bandwidth from
every relative start (the synchronization property of Theorem 3).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core import conflict_free_possible
from repro.core.stream import AccessStream
from repro.memory.config import FIG2_CONFIG
from repro.sim.engine import simulate_streams
from repro.sim.pairs import bandwidth_by_offset, simulate_pair
from repro.viz.ascii_trace import render_result

from conftest import print_header


def _run():
    pr = simulate_pair(FIG2_CONFIG, 1, 7, b2=3)
    table = bandwidth_by_offset(FIG2_CONFIG, 1, 7)
    return pr, table


def test_fig02_conflict_free(benchmark):
    pr, table = benchmark(_run)

    print_header("Fig. 2: conflict-free access (m=12, n_c=3, d1=1, d2=7)")
    res = simulate_streams(
        FIG2_CONFIG,
        [AccessStream(0, 1, label="1"), AccessStream(3, 7, label="2")],
        cpus=[0, 1],
        cycles=40,
        trace=True,
    )
    print(render_result(res, stop=36))
    print(f"\nsteady b_eff = {pr.bandwidth}  (paper: 2)")
    print(f"b_eff by relative start offset: {sorted(set(table.values()))}")

    # Shape assertions (paper's claims)
    assert conflict_free_possible(12, 3, 1, 7)
    assert pr.bandwidth == Fraction(2)
    assert set(table.values()) == {Fraction(2)}  # synchronization

    benchmark.extra_info["b_eff"] = float(pr.bandwidth)
    benchmark.extra_info["paper_b_eff"] = 2.0
