"""Fig. 3 — barrier-situation.

13-way interleaved memory, ``n_c = 6``, ``d1 = 1`` barriers ``d2 = 6``:
stream 2 is delayed five clocks per service, ``b_eff = 1 + 1/6 = 7/6``
(eq. 29).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core import barrier_bandwidth, barrier_possible
from repro.core.stream import AccessStream
from repro.memory.config import FIG3_CONFIG
from repro.sim.engine import simulate_streams
from repro.sim.pairs import ObservedRegime, simulate_pair
from repro.viz.ascii_trace import render_result

from conftest import print_header


def _run():
    return simulate_pair(FIG3_CONFIG, 1, 6, b2=0)


def test_fig03_barrier(benchmark):
    pr = benchmark(_run)

    print_header("Fig. 3: barrier-situation (m=13, n_c=6, d1=1, d2=6)")
    res = simulate_streams(
        FIG3_CONFIG,
        [AccessStream(0, 1, label="1"), AccessStream(0, 6, label="2")],
        cpus=[0, 1],
        cycles=40,
        trace=True,
    )
    print(render_result(res, stop=36))
    print(f"\nsteady b_eff = {pr.bandwidth}  (paper eq. 29: 7/6)")
    print(f"regime: {pr.regime.value}; grants per period: {pr.grants}")

    assert barrier_possible(13, 6, 1, 6)
    assert barrier_bandwidth(1, 6) == Fraction(7, 6)
    assert pr.bandwidth == Fraction(7, 6)
    assert pr.regime is ObservedRegime.BARRIER_ON_2

    benchmark.extra_info["b_eff"] = float(pr.bandwidth)
    benchmark.extra_info["paper_b_eff"] = float(Fraction(7, 6))
