"""Fig. 4 — double conflict: the barrier-situation is not reached.

Same memory as Fig. 3 (m=13, n_c=6, d=(1,6)) but start bank ``b2 = 1``:
the streams fall into a cyclic state with *mutual* delays.  Theorem 5's
guard ``(n_c-1)(d2+d1) < m`` fails (35 ≥ 13), which is exactly why this
start can escape the barrier.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core import double_conflict_impossible
from repro.core.stream import AccessStream
from repro.memory.config import FIG3_CONFIG
from repro.sim.engine import simulate_streams
from repro.sim.pairs import ObservedRegime, simulate_pair
from repro.viz.ascii_trace import render_result

from conftest import print_header


def _run():
    return simulate_pair(FIG3_CONFIG, 1, 6, b2=1)


def test_fig04_double_conflict(benchmark):
    pr = benchmark(_run)

    print_header("Fig. 4: double conflict (m=13, n_c=6, d1=1, d2=6, b2=1)")
    res = simulate_streams(
        FIG3_CONFIG,
        [AccessStream(0, 1, label="1"), AccessStream(1, 6, label="2")],
        cpus=[0, 1],
        cycles=40,
        trace=True,
    )
    print(render_result(res, stop=36))
    print(f"\nsteady b_eff = {pr.bandwidth}; regime: {pr.regime.value}")
    print(f"grants per period {pr.period}: {pr.grants} (both streams delayed)")

    # Theorem 5 does NOT protect this pair...
    assert not double_conflict_impossible(13, 6, 1, 6)
    # ...and the simulation indeed shows mutual delays:
    assert pr.regime is ObservedRegime.MUTUAL
    assert pr.grants[0] < pr.period and pr.grants[1] < pr.period
    assert pr.bandwidth < Fraction(7, 6)  # worse than the barrier

    benchmark.extra_info["b_eff"] = float(pr.bandwidth)
