"""Fig. 5 — barrier-situation satisfying Theorems 4 AND 5.

m=13, n_c=4, d=(1,3), b=(0,7): stream 2 barriered, ``b_eff = 4/3``, and
no start can produce a double conflict (Theorem 5: 3·4 = 12 < 13).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core import barrier_bandwidth, barrier_possible, double_conflict_impossible
from repro.core.stream import AccessStream
from repro.memory.config import FIG5_CONFIG
from repro.sim.engine import simulate_streams
from repro.sim.pairs import ObservedRegime, bandwidth_by_offset, simulate_pair
from repro.viz.ascii_trace import render_result

from conftest import print_header


def _run():
    pr = simulate_pair(FIG5_CONFIG, 1, 3, b2=7)
    sweep = bandwidth_by_offset(FIG5_CONFIG, 1, 3)
    return pr, sweep


def test_fig05_barrier(benchmark):
    pr, sweep = benchmark(_run)

    print_header("Fig. 5: barrier-situation (m=13, n_c=4, d1=1, d2=3, b2=7)")
    res = simulate_streams(
        FIG5_CONFIG,
        [AccessStream(0, 1, label="1"), AccessStream(7, 3, label="2")],
        cpus=[0, 1],
        cycles=40,
        trace=True,
    )
    print(render_result(res, stop=36))
    print(f"\nsteady b_eff = {pr.bandwidth}  (paper eq. 29: 4/3)")
    print("b_eff over all starts:", dict(sorted(sweep.items())))

    assert barrier_possible(13, 4, 1, 3)
    assert double_conflict_impossible(13, 4, 1, 3)
    assert barrier_bandwidth(1, 3) == Fraction(4, 3)
    assert pr.bandwidth == Fraction(4, 3)
    assert pr.regime is ObservedRegime.BARRIER_ON_2
    # Theorem 5 consequence: NO start shows mutual delays.
    for b2 in range(13):
        got = simulate_pair(FIG5_CONFIG, 1, 3, b2=b2)
        assert got.regime is not ObservedRegime.MUTUAL

    benchmark.extra_info["b_eff"] = float(pr.bandwidth)
    benchmark.extra_info["paper_b_eff"] = float(Fraction(4, 3))
