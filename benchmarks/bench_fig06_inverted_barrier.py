"""Fig. 6 — inverted barrier-situation.

The same pair as Fig. 5 with start bank ``b2 = 1``: now stream 2 delays
stream 1 (``>`` in the paper's notation).  This start-dependence is why
Theorem 6/7's uniqueness conditions fail for m = 13 — and the reason the
paper cares about "unique" barriers at all: relative starting positions
generally cannot be predicted.
"""

from __future__ import annotations

from repro.core import theorems
from repro.core.stream import AccessStream
from repro.memory.config import FIG5_CONFIG
from repro.sim.engine import simulate_streams
from repro.sim.pairs import ObservedRegime, simulate_pair
from repro.viz.ascii_trace import render_result

from conftest import print_header


def _run():
    return simulate_pair(FIG5_CONFIG, 1, 3, b2=1)


def test_fig06_inverted_barrier(benchmark):
    pr = benchmark(_run)

    print_header("Fig. 6: inverted barrier (m=13, n_c=4, d1=1, d2=3, b2=1)")
    res = simulate_streams(
        FIG5_CONFIG,
        [AccessStream(0, 1, label="1"), AccessStream(1, 3, label="2")],
        cpus=[0, 1],
        cycles=40,
        trace=True,
    )
    print(render_result(res, stop=36))
    print(f"\nsteady b_eff = {pr.bandwidth}; regime: {pr.regime.value}")
    print("(stream 2 now delays stream 1 — the barrier inverted)")

    # The theory's uniqueness tests correctly refuse this pair:
    assert not theorems.unique_barrier_by_modulus(13, 4, 1, 3)
    assert not theorems.unique_barrier_small_m(13, 4, 1, 3)
    # And indeed the orientation flipped relative to Fig. 5:
    assert pr.regime is ObservedRegime.BARRIER_ON_1
    assert pr.grants[1] == pr.period          # stream 2 full rate
    assert pr.grants[0] < pr.period           # stream 1 delayed

    benchmark.extra_info["b_eff"] = float(pr.bandwidth)
