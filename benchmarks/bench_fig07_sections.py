"""Fig. 7 — conflict-free access to a sectioned memory.

m=12, s=2 sections, n_c=2, equal strides d1=d2=1 from ONE CPU.  The
natural offset ``n_c·d1 = 2`` collides on the section paths (Theorem 9's
condition fails since 2 | n_c·d1), but eq. (32) grants conflict-freeness
with one extra clock of slack: offset ``(n_c+1)·d1 = 3`` gives
``b_eff = 2``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core import sections as sec
from repro.core.stream import AccessStream
from repro.memory.config import FIG7_CONFIG
from repro.sim.engine import simulate_streams
from repro.sim.pairs import ObservedRegime, simulate_pair
from repro.viz.ascii_trace import render_result

from conftest import print_header


def _run():
    good = simulate_pair(FIG7_CONFIG, 1, 1, b2=3, same_cpu=True)
    bad = simulate_pair(FIG7_CONFIG, 1, 1, b2=2, same_cpu=True)
    return good, bad


def test_fig07_sections(benchmark):
    good, bad = benchmark(_run)

    print_header(
        "Fig. 7: conflict-free with sections (m=12, s=2, n_c=2, d1=d2=1)"
    )
    res = simulate_streams(
        FIG7_CONFIG,
        [AccessStream(0, 1, label="1"), AccessStream(3, 1, label="2")],
        cpus=[0, 0],
        cycles=40,
        trace=True,
    )
    print(render_result(res, stop=36, show_sections=True))
    print(f"\noffset 3 ((n_c+1)·d1): b_eff = {good.bandwidth}  (paper: 2)")
    print(f"offset 2 (n_c·d1):     b_eff = {bad.bandwidth}  (< 2: path clash)")

    assert not sec.path_conflict_free(12, 2, 2, 1, 1)        # T9 direct fails
    assert sec.sections_conflict_free_start_offset(12, 2, 2, 1, 1) == 3
    assert good.bandwidth == Fraction(2)
    assert good.regime is ObservedRegime.CONFLICT_FREE
    assert bad.bandwidth < 2

    benchmark.extra_info["b_eff_offset3"] = float(good.bandwidth)
    benchmark.extra_info["b_eff_offset2"] = float(bad.bandwidth)
