"""Fig. 8 — the linked conflict and its resolution by cyclic priority.

m=12, s=3, n_c=3, d1=d2=1 from one CPU, start banks (0, 1).

* Fig. 8(a): a FIXED priority rule locks the streams into an alternating
  bank-conflict/section-conflict cycle — ``b_eff = 3/2``.
* Fig. 8(b): a CYCLIC priority rule breaks the phase lock — the pair
  synchronizes into a conflict-free cycle, ``b_eff = 2``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.stream import AccessStream
from repro.memory.config import FIG8_CONFIG
from repro.sim.engine import simulate_streams
from repro.sim.pairs import ObservedRegime, simulate_pair
from repro.sim.stats import ConflictKind
from repro.viz.ascii_trace import render_result

from conftest import print_header


def _run():
    locked = simulate_pair(
        FIG8_CONFIG, 1, 1, b2=1, same_cpu=True, priority="fixed"
    )
    resolved = simulate_pair(
        FIG8_CONFIG, 1, 1, b2=1, same_cpu=True, priority="cyclic"
    )
    return locked, resolved


def test_fig08_linked_conflict(benchmark):
    locked, resolved = benchmark(_run)

    print_header(
        "Fig. 8: linked conflict (m=12, s=3, n_c=3, d1=d2=1, b=(0,1))"
    )
    for name, prio in (("(a) fixed priority", "fixed"), ("(b) cyclic priority", "cyclic")):
        res = simulate_streams(
            FIG8_CONFIG,
            [AccessStream(0, 1, label="1"), AccessStream(1, 1, label="2")],
            cpus=[0, 0],
            cycles=40,
            trace=True,
            priority=prio,
        )
        print(f"\n--- {name} ---")
        print(render_result(res, stop=34, show_sections=True))
    print(f"\nfixed priority:  b_eff = {locked.bandwidth}  (paper: 3/2)")
    print(f"cyclic priority: b_eff = {resolved.bandwidth}  (paper: 2)")

    assert locked.bandwidth == Fraction(3, 2)
    assert resolved.bandwidth == Fraction(2)
    assert resolved.regime is ObservedRegime.CONFLICT_FREE
    # the lock really is a LINKED conflict: both kinds of stalls occur
    stats = locked.result.stats
    assert stats.stall_cycles(ConflictKind.BANK) > 0
    assert stats.stall_cycles(ConflictKind.SECTION) > 0

    benchmark.extra_info["b_eff_fixed"] = float(locked.bandwidth)
    benchmark.extra_info["b_eff_cyclic"] = float(resolved.bandwidth)
