"""Fig. 9 — linked conflict prevented by consecutive-bank sections.

Cheung & Smith's alternative bank-to-section map groups ``m/s``
*consecutive* banks per section.  Under the exact Fig. 8(a) workload
(fixed priority, the rule that locked the cyclic striping at 3/2) the
consecutive map yields ``b_eff = 2``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.stream import AccessStream
from repro.memory.config import FIG8_CONFIG
from repro.sim.engine import simulate_streams
from repro.sim.pairs import ObservedRegime, simulate_pair
from repro.viz.ascii_trace import render_result

from conftest import print_header

CONSECUTIVE = FIG8_CONFIG.with_sections(3, "consecutive")


def _run():
    striped = simulate_pair(
        FIG8_CONFIG, 1, 1, b2=1, same_cpu=True, priority="fixed"
    )
    grouped = simulate_pair(
        CONSECUTIVE, 1, 1, b2=1, same_cpu=True, priority="fixed"
    )
    return striped, grouped


def test_fig09_consecutive_sections(benchmark):
    striped, grouped = benchmark(_run)

    print_header(
        "Fig. 9: consecutive-bank sections (m=12, s=3, n_c=3, d1=d2=1, fixed priority)"
    )
    res = simulate_streams(
        CONSECUTIVE,
        [AccessStream(0, 1, label="1"), AccessStream(1, 1, label="2")],
        cpus=[0, 0],
        cycles=40,
        trace=True,
        priority="fixed",
    )
    print(render_result(res, stop=34, show_sections=True))
    print(f"\ncyclic striping (Fig. 8a): b_eff = {striped.bandwidth}")
    print(f"consecutive grouping:      b_eff = {grouped.bandwidth}  (paper: 2)")

    assert striped.bandwidth == Fraction(3, 2)
    assert grouped.bandwidth == Fraction(2)
    assert grouped.regime is ObservedRegime.CONFLICT_FREE

    benchmark.extra_info["b_eff_cyclic_map"] = float(striped.bandwidth)
    benchmark.extra_info["b_eff_consecutive_map"] = float(grouped.bandwidth)
