"""Fig. 10 — the Cray X-MP triad experiment (all five panels).

``A(I) = B(I) + C(I)*D(I)`` with n = 1024 elements for INC = 1..16 on the
modelled 2-CPU, 16-bank, ``n_c = 4`` X-MP:

* (a) execution time with the other CPU streaming distance 1 on all
  three of its ports;
* (b) execution time with the other CPU shut off;
* (c)/(d)/(e) bank / section / simultaneous conflicts encountered by the
  triad (simulator counters).

Shape claims asserted (the paper's measured observations):
best increments {1, 6, 11}; INC=2 ≈ +50 % and INC=3 ≈ +100 % vs optimum
(barrier against the other CPU); INC=8/16 dominated by self-conflicts in
both environments; INC=9 worse than INC=1 despite Theorem 3.
"""

from __future__ import annotations

from repro.analysis.report import triad_report
from repro.machine.xmp import triad_sweep
from repro.viz.series import bar_chart, multi_series_table

from conftest import print_header


def _run():
    contended = triad_sweep(range(1, 17), other_cpu_active=True)
    dedicated = triad_sweep(range(1, 17), other_cpu_active=False)
    return contended, dedicated


def test_fig10_triad(benchmark):
    contended, dedicated = benchmark.pedantic(_run, rounds=1, iterations=1)
    by_inc = {r.inc: r for r in contended}
    ded = {r.inc: r for r in dedicated}

    print_header("Fig. 10(a): triad execution time, other CPU active (d=1)")
    incs = list(range(1, 17))
    print(bar_chart(incs, [by_inc[i].cycles for i in incs],
                    x_label="INC", y_label="clocks"))

    print_header("Fig. 10(b): triad execution time, other CPU off")
    print(bar_chart(incs, [ded[i].cycles for i in incs],
                    x_label="INC", y_label="clocks"))

    print_header("Fig. 10(c)-(e): conflicts encountered by the triad")
    print(multi_series_table(
        incs,
        {
            "bank": [by_inc[i].bank_conflicts for i in incs],
            "section": [by_inc[i].section_conflicts for i in incs],
            "simultaneous": [by_inc[i].simultaneous_conflicts for i in incs],
        },
        x_label="INC",
    ))
    print()
    print(triad_report(contended, title="Summary (other CPU active)"))

    # ---- shape assertions --------------------------------------------
    ranked = sorted(incs, key=lambda i: by_inc[i].cycles)
    assert {1, 6, 11} <= set(ranked[:5]), ranked
    assert 1.3 <= by_inc[2].cycles / by_inc[1].cycles <= 2.1
    assert 1.7 <= by_inc[3].cycles / by_inc[1].cycles <= 2.6
    assert by_inc[16].cycles == max(r.cycles for r in contended)
    assert by_inc[9].cycles > by_inc[1].cycles
    assert ded[2].cycles <= 1.2 * ded[1].cycles       # barrier vanished
    assert ded[16].cycles > 3 * ded[1].cycles         # self-conflict stayed
    assert all(r.simultaneous_conflicts == 0 for r in dedicated)

    benchmark.extra_info["contended_cycles"] = {
        i: by_inc[i].cycles for i in incs
    }
    benchmark.extra_info["dedicated_cycles"] = {i: ded[i].cycles for i in incs}
