"""Extension — a kernel suite on the X-MP model (Section V, executable).

Runs copy, sum, daxpy, triad and the three matrix sweeps on the machine
model, in the dedicated environment, and reports clocks per element —
the executable version of the paper's closing advice about rows,
diagonals and safe dimensioning.
"""

from __future__ import annotations

from repro.core.fortran import ArraySpec
from repro.machine.kernels import (
    copy_program,
    daxpy_program,
    matrix_sweep_program,
    sum_program,
)
from repro.machine.workloads import triad_program
from repro.machine.xmp import run_program
from repro.memory.layout import CommonBlock
from repro.viz.tables import format_table

from conftest import print_header

N = 512
COMMON = CommonBlock.build(
    [("A", (40000,)), ("B", (40000,)), ("C", (40000,)), ("D", (40000,))]
)
RESONANT = ArraySpec("M16", (16, 512))
SAFE = ArraySpec("M17", (17, 512))


def _run():
    results = {}
    results["sum (1 load)"] = run_program(
        sum_program(1, n=N, common=COMMON, src="A"), other_cpu_active=False
    )
    results["copy (1L+1S)"] = run_program(
        copy_program(1, n=N, common=COMMON), other_cpu_active=False
    )
    results["daxpy (2L+1S)"] = run_program(
        daxpy_program(1, n=N, common=COMMON), other_cpu_active=False
    )
    results["triad (3L+1S)"] = run_program(
        triad_program(1, n=N, common=COMMON), other_cpu_active=False
    )
    results["row sweep J1=16"] = run_program(
        matrix_sweep_program(RESONANT, "row"), other_cpu_active=False
    )
    results["row sweep J1=17"] = run_program(
        matrix_sweep_program(SAFE, "row"), other_cpu_active=False
    )
    results["diag sweep J1=16"] = run_program(
        matrix_sweep_program(RESONANT, "diagonal"), other_cpu_active=False
    )
    return results


def test_kernels_xmp(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Kernel suite on the X-MP model (dedicated, n_c=4, m=16)")
    rows = []
    for name, r in results.items():
        elems = r.triad_grants  # total transfers
        rows.append(
            (
                name,
                r.cycles,
                r.triad_grants,
                f"{r.cycles / max(1, elems):.2f}",
                r.bank_conflicts,
            )
        )
    print(format_table(
        ["kernel", "clocks", "transfers", "clk/transfer", "bank conflicts"],
        rows,
    ))

    # memory-port pressure ordering: sum <= copy <= daxpy <= triad
    assert results["sum (1 load)"].cycles <= results["copy (1L+1S)"].cycles
    assert results["copy (1L+1S)"].cycles <= results["daxpy (2L+1S)"].cycles
    assert results["daxpy (2L+1S)"].cycles <= results["triad (3L+1S)"].cycles
    # Section V: the resonant row sweep is catastrophic, the coprime
    # leading dimension fixes it.
    slow = results["row sweep J1=16"].cycles
    fast = results["row sweep J1=17"].cycles
    assert slow > 2.5 * fast
    # diagonal of J1=16 has stride 17 ≡ 1: fine.
    assert results["diag sweep J1=16"].cycles < slow / 2

    benchmark.extra_info["clocks"] = {k: r.cycles for k, r in results.items()}
