"""Extension — X-MP vs a VP-200-flavoured machine on the triad sweep.

The introduction names both architectures as the motivating systems.
Running the same triad on both (each strip-mined at its own vector
length) shows how the VP-like design trades its single CPU for a wider
interleave: the power-of-two stride cliffs move, and self-conflict
resonances relocate to the strides that divide *its* bank count.
"""

from __future__ import annotations

from repro.machine.builder import VP200_SPEC, XMP_SPEC, run_on
from repro.machine.workloads import triad_program
from repro.memory.layout import CommonBlock
from repro.viz.series import multi_series_table

from conftest import print_header

INCS = list(range(1, 17))
N = 512


def _sweep(spec):
    out = {}
    for inc in INCS:
        common = CommonBlock.build([(c, (40000,)) for c in "ABCD"])
        prog = triad_program(
            inc, n=N, common=common, vector_length=spec.vector_length
        )
        out[inc] = run_on(spec, prog).cycles
    return out


def _run():
    return {spec.name: _sweep(spec) for spec in (XMP_SPEC, VP200_SPEC)}


def test_machine_comparison(benchmark):
    sweeps = benchmark.pedantic(_run, rounds=1, iterations=1)
    xmp = sweeps[XMP_SPEC.name]
    vp = sweeps[VP200_SPEC.name]

    print_header(f"Triad (n={N}, dedicated) on two machine models")
    print(multi_series_table(
        INCS,
        {"X-MP clocks": [xmp[i] for i in INCS],
         "VP-like clocks": [vp[i] for i in INCS]},
        x_label="INC",
    ))

    # stride 8: r = 2 < n_c on the X-MP's 16 banks, r = 4 = n_c on 32.
    assert vp[8] < xmp[8]
    # stride 16: r = 1 on 16 banks, r = 2 < n_c on 32 — both hurt, the
    # VP less catastrophically.
    assert vp[16] < xmp[16]
    # both machines run clean strides at full port-limited speed: the
    # X-MP's 2-read/1-write split needs two port passes for 3 loads, the
    # VP-like pipes the same — times within 2x of each other.
    assert 0.5 < vp[1] / xmp[1] < 2.0
    # the VP's resonance sits at strides ≡ 0 mod 32, so INC=16 is its
    # worst surveyed point too but by a smaller factor.
    vp_pen = vp[16] / vp[1]
    xmp_pen = xmp[16] / xmp[1]
    assert vp_pen < xmp_pen

    benchmark.extra_info["xmp"] = xmp
    benchmark.extra_info["vp"] = vp
