"""Extension — parallel efficiency of the sweep schedulers.

Times the same census-shaped population through ``SweepExecutor`` at
1/2/4/8 workers (``$REPRO_BENCH_WORKERS`` overrides the ladder) on the
scheduler named by ``$REPRO_BENCH_SCHEDULER`` (``pool``, the default,
or ``shard``), asserting every run bit-identical to the single-worker
reference.  Per-run wall clocks land in the bench JSON artifact via
``$REPRO_BENCH_TIMINGS`` (see ``conftest.py``); the summary test prints
the speedup/efficiency table.

CI gates the result: with ``$REPRO_BENCH_PARALLEL_GATE`` set to
``"WORKERS:RATIO"`` (e.g. ``4:1.6``) the summary asserts at least that
speedup at that worker count — skipped automatically on machines with
fewer than WORKERS cores, where the target is physically unreachable.
"""

from __future__ import annotations

import os
import time
from fractions import Fraction

import pytest

from repro.memory.config import MemoryConfig
from repro.runner import SimJob, SweepExecutor

from conftest import print_header

#: The benchmark population: every cyclic-priority stride pair on the
#: X-MP shape at two start phases — enough unique jobs that every
#: worker count in the ladder gets multiple chunks of `fast` work.
POPULATION_SHAPE = (16, 4)
POPULATION_PHASES = 2


def _worker_ladder() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_WORKERS", "1,2,4,8")
    ladder = sorted({int(tok) for tok in raw.split(",") if tok.strip()})
    if 1 not in ladder:
        ladder.insert(0, 1)  # the reference point is not optional
    return ladder


SCHEDULER = os.environ.get("REPRO_BENCH_SCHEDULER", "pool")
WORKERS = _worker_ladder()

#: worker count -> sweep wall-clock seconds, filled by the timing runs.
ELAPSED: dict[int, float] = {}

#: The single-worker reference fingerprint (payload list), set lazily.
_REFERENCE: list[dict] = []


def _population() -> list[SimJob]:
    m, n_c = POPULATION_SHAPE
    cfg = MemoryConfig(banks=m, bank_cycle=n_c)
    return [
        SimJob.from_specs(
            cfg, [(0, d1), (phase, d2)], cpus=[0, 1],
            priority="cyclic", steady=True,
        )
        for d1 in range(1, m + 1)
        for d2 in range(1, m + 1)
        for phase in range(POPULATION_PHASES)
    ]


def _placement(workers: int) -> dict:
    if SCHEDULER == "shard":
        return {"shards": workers} if workers > 1 else {}
    return {"workers": workers}


@pytest.mark.parametrize("workers", WORKERS)
def test_parallel_census(benchmark, workers):
    population = _population()

    def _sweep():
        ex = SweepExecutor(backend="fast", **_placement(workers))
        start = time.perf_counter()
        outs = ex.run_many(population)
        ELAPSED[workers] = time.perf_counter() - start
        return ex, outs

    ex, outs = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    payloads = [o.to_payload() for o in outs]
    if workers == 1:
        _REFERENCE[:] = payloads
    else:
        # Bit-identical to the single-worker reference, always.
        assert _REFERENCE, "worker ladder must start at 1"
        assert payloads == _REFERENCE

    total = sum((o.bandwidth for o in outs), Fraction(0))
    print_header(
        f"Parallel census: {len(population)} jobs "
        f"({ex.stats.executed} unique) on scheduler={SCHEDULER!r} "
        f"workers={workers}: {ELAPSED[workers]:.3f}s"
    )
    print(f"sum(b_eff) = {total}")
    benchmark.extra_info["scheduler"] = SCHEDULER
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["unique_jobs"] = ex.stats.executed


def test_parallel_efficiency_summary():
    assert set(ELAPSED) == set(WORKERS), "timing runs must precede summary"
    base = ELAPSED[1]
    print_header(
        f"Parallel efficiency (scheduler={SCHEDULER!r}, "
        f"{os.cpu_count()} cores)"
    )
    print(f"{'workers':>8} {'seconds':>9} {'speedup':>8} {'efficiency':>11}")
    for workers in WORKERS:
        speedup = base / ELAPSED[workers]
        print(
            f"{workers:>8} {ELAPSED[workers]:>9.3f} {speedup:>7.2f}x "
            f"{100.0 * speedup / workers:>10.1f}%"
        )

    gate = os.environ.get("REPRO_BENCH_PARALLEL_GATE")
    if not gate:
        return
    gate_workers, min_speedup = gate.split(":")
    target = int(gate_workers)
    cores = os.cpu_count() or 1
    if cores < target:
        pytest.skip(
            f"gate needs {target} cores, machine has {cores}: "
            "the speedup target is physically unreachable"
        )
    if target not in ELAPSED:
        pytest.skip(f"worker count {target} not in ladder {WORKERS}")
    speedup = base / ELAPSED[target]
    assert speedup >= float(min_speedup), (
        f"parallel census managed only {speedup:.2f}x at {target} "
        f"workers (gate: {min_speedup}x)"
    )
