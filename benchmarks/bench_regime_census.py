"""Extension — regime census: how much stride space each theorem governs.

Classifies every stride pair on a family of memory shapes and prints
the regime distribution — the "how worried should a programmer be"
table.  The counts regression-lock the classifier.

``test_census_population`` is the lockstep-core gate workload: the full
cyclic-priority pair census on the doubled X-MP shape (m=32), every
stride pair at four start phases, pushed through one ``run_batch`` call
on the backend named by ``$REPRO_BENCH_BACKEND`` (default ``batch``).
An exact ``Fraction`` checksum locks the results bit-for-bit, so the
committed ``BENCH_before.json`` (``fast``) / ``BENCH_after.json``
(``batch``) pair times two backends computing *provably identical*
numbers.
"""

from __future__ import annotations

import os
from fractions import Fraction

from repro.analysis.census import regime_census
from repro.core.classify import PairRegime
from repro.memory.config import MemoryConfig
from repro.runner import SimJob, get_backend
from repro.viz.tables import format_table

from conftest import print_header

SHAPES = [(16, 4), (12, 3), (13, 4), (32, 4), (64, 4)]

#: The lockstep-gate population shape: every cyclic-priority stride
#: pair on (m=32, n_c=4), four start phases — 4096 steady jobs.
POPULATION_SHAPE = (32, 4)
POPULATION_PHASES = 4

#: Exact checksums of that population, identical on every backend
#: (verified fast vs. batch; the property suite carries the general
#: bit-identity claim).
CENSUS_POPULATION_BANDWIDTH_SUM = Fraction(9937168993, 1616615)
CENSUS_POPULATION_PERIOD_SUM = 221280
CENSUS_POPULATION_TRANSIENT_SUM = 31966


def _census_population() -> list[SimJob]:
    m, n_c = POPULATION_SHAPE
    cfg = MemoryConfig(banks=m, bank_cycle=n_c)
    return [
        SimJob.from_specs(
            cfg, [(0, d1), (phase, d2)], cpus=[0, 1],
            priority="cyclic", steady=True,
        )
        for d1 in range(1, m + 1)
        for d2 in range(1, m + 1)
        for phase in range(POPULATION_PHASES)
    ]


def test_census_population(benchmark):
    backend = get_backend(os.environ.get("REPRO_BENCH_BACKEND") or "batch")
    population = _census_population()
    outs = benchmark.pedantic(
        lambda: backend.run_batch(population), rounds=1, iterations=1
    )

    print_header(
        f"Census population: {len(population)} cyclic-priority pair jobs "
        f"on m={POPULATION_SHAPE[0]} via the {backend.name!r} backend"
    )
    total = sum((o.bandwidth for o in outs), Fraction(0))
    periods = sum(o.period for o in outs)
    transients = sum(o.steady_start for o in outs)
    print(f"sum(b_eff) = {total}  sum(period) = {periods}  "
          f"sum(transient) = {transients}")

    # Bit-exact checksums: every backend must produce these same
    # Fractions/integers or the 5x gate is comparing different work.
    assert len(outs) == 4096
    assert total == CENSUS_POPULATION_BANDWIDTH_SUM
    assert periods == CENSUS_POPULATION_PERIOD_SUM
    assert transients == CENSUS_POPULATION_TRANSIENT_SUM

    benchmark.extra_info["backend"] = backend.name
    benchmark.extra_info["jobs"] = len(population)


def _run():
    return {(m, n_c): regime_census(m, n_c) for m, n_c in SHAPES}


def test_regime_census(benchmark):
    censuses = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Regime census over all stride pairs 1 <= d1 <= d2 < m")
    for (m, n_c), census in censuses.items():
        print(f"\nm={m}, n_c={n_c} ({census.total} pairs, "
              f"{census.determined} with exact analytic b_eff):")
        print(format_table(["regime", "pairs", "share"], census.rows()))

    xmp = censuses[(16, 4)]
    # locked distribution for the X-MP shape
    assert xmp.counts[PairRegime.CONFLICT_FREE] == 16
    assert xmp.counts[PairRegime.UNIQUE_BARRIER] == 16
    assert xmp.determined == 32
    # prime bank counts remove disjoint/self-conflict regimes entirely
    prime = censuses[(13, 4)]
    assert PairRegime.DISJOINT_POSSIBLE not in prime.counts
    assert PairRegime.SELF_CONFLICT not in prime.counts
    # doubling the banks (same n_c) shrinks the share of strides that
    # self-conflict (r < n_c needs gcd(m, d) > m/n_c — rarer on 32)...
    assert censuses[(32, 4)].share(PairRegime.SELF_CONFLICT) < xmp.share(
        PairRegime.SELF_CONFLICT
    )
    # ...and multiplies the absolute number of conflict-free pairs.
    assert (
        censuses[(32, 4)].counts[PairRegime.CONFLICT_FREE]
        > 2 * xmp.counts[PairRegime.CONFLICT_FREE]
    )

    benchmark.extra_info["xmp_counts"] = {
        k.value: v for k, v in xmp.counts.items()
    }
