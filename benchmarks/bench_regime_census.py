"""Extension — regime census: how much stride space each theorem governs.

Classifies every stride pair on a family of memory shapes and prints
the regime distribution — the "how worried should a programmer be"
table.  The counts regression-lock the classifier.
"""

from __future__ import annotations

from repro.analysis.census import regime_census
from repro.core.classify import PairRegime
from repro.viz.tables import format_table

from conftest import print_header

SHAPES = [(16, 4), (12, 3), (13, 4), (32, 4), (64, 4)]


def _run():
    return {(m, n_c): regime_census(m, n_c) for m, n_c in SHAPES}


def test_regime_census(benchmark):
    censuses = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Regime census over all stride pairs 1 <= d1 <= d2 < m")
    for (m, n_c), census in censuses.items():
        print(f"\nm={m}, n_c={n_c} ({census.total} pairs, "
              f"{census.determined} with exact analytic b_eff):")
        print(format_table(["regime", "pairs", "share"], census.rows()))

    xmp = censuses[(16, 4)]
    # locked distribution for the X-MP shape
    assert xmp.counts[PairRegime.CONFLICT_FREE] == 16
    assert xmp.counts[PairRegime.UNIQUE_BARRIER] == 16
    assert xmp.determined == 32
    # prime bank counts remove disjoint/self-conflict regimes entirely
    prime = censuses[(13, 4)]
    assert PairRegime.DISJOINT_POSSIBLE not in prime.counts
    assert PairRegime.SELF_CONFLICT not in prime.counts
    # doubling the banks (same n_c) shrinks the share of strides that
    # self-conflict (r < n_c needs gcd(m, d) > m/n_c — rarer on 32)...
    assert censuses[(32, 4)].share(PairRegime.SELF_CONFLICT) < xmp.share(
        PairRegime.SELF_CONFLICT
    )
    # ...and multiplies the absolute number of conflict-free pairs.
    assert (
        censuses[(32, 4)].counts[PairRegime.CONFLICT_FREE]
        > 2 * xmp.counts[PairRegime.CONFLICT_FREE]
    )

    benchmark.extra_info["xmp_counts"] = {
        k.value: v for k, v in xmp.counts.items()
    }
