"""Regulation sweep — a throttled aggressor restores a victim's b_eff.

Not a paper figure: this sweeps the PR's token-bucket regulators over
two aggressor/victim scenarios on an m=8, n_c=4 memory, victim a
unit-stride stream (solo ``b_eff = 1``) on the low-priority port.

* **Bank hammer** — the aggressor strides 8, so every request returns
  to bank 0 (return number r=1).  Under fixed priority it wins every
  arbitration, parks bank 0 busy forever, and the victim that starts
  there gets **zero** bandwidth while the aggressor itself only manages
  1/4 (its own self-conflict).  Throttling the aggressor to its honest
  share (``stream:0=1/8``) hands the bank back: the victim recovers
  full rate and *aggregate* throughput rises 9/8 / (1/4) = 4.5x.
* **Barrier pair** — stride 6 against stride 1 at offset 3 is a mutual
  conflict: both streams run degraded (3/5, 2/5).  Tightening the
  aggressor's budget trades its bandwidth for the victim's — and the
  victim's gain exceeds the aggressor's loss, so total throughput
  climbs from 1 to 7/6.

The curves are exact Fractions from the steady detector; the regulated
jobs exercise token-bucket state inside Brent's loop on every backend.
"""

from __future__ import annotations

from fractions import Fraction

from repro.memory.config import MemoryConfig
from repro.runner import SimJob

from conftest import print_header

CFG = MemoryConfig(banks=8, bank_cycle=4)

#: (label, aggressor (start, stride), victim (start, stride))
SCENARIOS = (
    ("bank hammer d=(8,1)", (0, 8), (0, 1)),
    ("barrier pair d=(6,1)+3", (0, 6), (3, 1)),
)

#: Aggressor budgets, loosest to tightest; None = unregulated.
BUDGETS = (None, "stream:0=1/2", "stream:0=1/4", "stream:0=1/8")


def _jobs() -> list[SimJob]:
    return [
        SimJob.from_specs(
            CFG, [aggr, vict], cpus=(0, 1),
            regulate=() if budget is None else (budget,),
        )
        for _, aggr, vict in SCENARIOS
        for budget in BUDGETS
    ]


def _sweep(executor) -> dict[str, list[tuple[str, Fraction, Fraction]]]:
    outs = executor.run_many(_jobs())
    rows: dict[str, list[tuple[str, Fraction, Fraction]]] = {}
    it = iter(outs)
    for label, _, _ in SCENARIOS:
        series = []
        for budget in BUDGETS:
            out = next(it)
            aggr, vict = (Fraction(g, out.period) for g in out.grants)
            series.append((budget or "unregulated", aggr, vict))
        rows[label] = series
    return rows


def test_regulation_restores_victim_bandwidth(benchmark, executor):
    rows = benchmark(_sweep, executor)

    print_header(
        "Regulation sweep (m=8, n_c=4, victim d=1 on the "
        "low-priority port)"
    )
    for label, series in rows.items():
        print(f"\n--- {label} ---")
        print(f"{'aggressor budget':>18} {'aggr':>6} {'victim':>6} {'total':>6}")
        for budget, aggr, vict in series:
            print(f"{budget:>18} {str(aggr):>6} {str(vict):>6} "
                  f"{str(aggr + vict):>6}")

    hammer = {b: (a, v) for b, a, v in rows["bank hammer d=(8,1)"]}
    # Unregulated: the aggressor starves the victim outright ...
    assert hammer["unregulated"] == (Fraction(1, 4), Fraction(0))
    # ... throttling it to its self-conflict share frees the victim
    # completely, and aggregate throughput rises from 1/4 to 9/8.
    assert hammer["stream:0=1/8"] == (Fraction(1, 8), Fraction(1))

    barrier = {b: (a, v) for b, a, v in rows["barrier pair d=(6,1)+3"]}
    a0, v0 = barrier["unregulated"]
    a4, v4 = barrier["stream:0=1/4"]
    assert (a0, v0) == (Fraction(3, 5), Fraction(2, 5))
    # The victim's recovery exceeds the aggressor's sacrifice: total
    # throughput climbs under throttling.
    assert v4 == 1 and a4 + v4 > a0 + v0
