"""Extension — service latency tiers and request coalescing.

Two claims from docs/SERVICE.md, measured end to end over a real
socket:

* **lookup tier** — an analytically-decided query served over HTTP
  (socket + JSON + closed form) beats *cold simulation* of the same
  job by at least ``$REPRO_BENCH_SERVE_GATE``× (default 100×) at the
  p50.  The jobs are large single-stream points (``m = 65536``) where
  the fast engine must walk the whole ``r = m`` period while Theorem 1
  answers in microseconds.
* **coalescing** — 64 identical concurrent requests for an undecided
  (simulation-only) job collapse onto exactly one backend execution.

Per-test wall clocks land in the bench JSON artifact via
``$REPRO_BENCH_TIMINGS`` (see ``conftest.py``); the summary prints the
latency table.
"""

from __future__ import annotations

import asyncio
import json
import os
import statistics
import time

from repro.memory.config import MemoryConfig
from repro.runner.api import run
from repro.runner.executor import SweepExecutor
from repro.runner.job import SimJob
from repro.serve.app import BandwidthService

from conftest import print_header

#: Large enough that cold simulation pays a full m-clock period walk.
BANKS = 65536
BANK_CYCLE = 8
STRIDES = (1, 3, 5)
#: HTTP samples per stride for the p50.
SAMPLES = 12

GATE = float(os.environ.get("REPRO_BENCH_SERVE_GATE", "100"))

#: Analytically undecided pair (same start, equal strides): the
#: coalescing benchmark must reach the simulation drain.
UNDECIDED = {"banks": 8, "bank_cycle": 4, "streams": [[0, 4], [0, 4]]}


def _payload(stride: int) -> bytes:
    return json.dumps(
        {"banks": BANKS, "bank_cycle": BANK_CYCLE, "streams": [[0, stride]]}
    ).encode()


async def _http_post(host: str, port: int, body: bytes) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    head = (
        "POST /v1/beff HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    ).encode()
    writer.write(head + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    status = raw.split(b"\r\n", 1)[0]
    assert b"200" in status, status
    return json.loads(raw.partition(b"\r\n\r\n")[2])


def test_lookup_tier_beats_cold_simulation():
    """HTTP-served analytic points vs cold fast-engine runs, p50 vs p50."""
    cfg = MemoryConfig(banks=BANKS, bank_cycle=BANK_CYCLE)
    jobs = [SimJob.from_specs(cfg, [(0, d)]) for d in STRIDES]

    # Cold simulation reference: no cache anywhere, one run per job.
    sim_secs = []
    expected = {}
    for job in jobs:
        t0 = time.perf_counter()
        out = run(job, backend="fast")
        sim_secs.append(time.perf_counter() - t0)
        expected[job.cache_key()] = out.to_payload()["bandwidth"]

    async def serve_and_measure() -> list[float]:
        service = BandwidthService(executor=SweepExecutor(backend="auto"))
        await service.start("127.0.0.1", 0)
        port = service.port
        # one warm-up round trip keeps interpreter start-up effects out
        await _http_post("127.0.0.1", port, _payload(STRIDES[0]))
        laps: list[float] = []
        for job, stride in zip(jobs, STRIDES):
            body = _payload(stride)
            for _ in range(SAMPLES):
                t0 = time.perf_counter()
                data = await _http_post("127.0.0.1", port, body)
                laps.append(time.perf_counter() - t0)
                assert data["tier"] == "analytic"
                # the service answer is the simulator's answer, exactly
                assert data["bandwidth"] == expected[job.cache_key()]
        assert service.executor.stats.executed == 0  # lookup tier only
        await service.aclose()
        return laps

    http_secs = asyncio.run(serve_and_measure())

    sim_p50 = statistics.median(sim_secs)
    http_p50 = statistics.median(http_secs)
    speedup = sim_p50 / http_p50

    print_header(
        f"service lookup tier vs cold simulation "
        f"(m={BANKS}, n_c={BANK_CYCLE})"
    )
    print(f"{'path':>24} {'p50':>12}")
    print(f"{'cold fast simulation':>24} {sim_p50 * 1e3:10.2f} ms")
    print(f"{'HTTP lookup (analytic)':>24} {http_p50 * 1e6:10.1f} us")
    print(f"{'speedup':>24} {speedup:10.0f} x   (gate {GATE:.0f}x)")

    assert speedup >= GATE, (
        f"lookup tier only {speedup:.1f}x faster than cold simulation "
        f"(gate {GATE:.0f}x)"
    )


def test_coalescing_collapses_identical_burst():
    """64 identical concurrent requests -> exactly 1 execution."""
    service = BandwidthService(executor=SweepExecutor(backend="auto"))
    body = json.dumps(UNDECIDED).encode()

    async def burst() -> tuple[list[dict], float]:
        await service.start("127.0.0.1", 0)
        port = service.port
        t0 = time.perf_counter()
        results = await asyncio.gather(
            *(_http_post("127.0.0.1", port, body) for _ in range(64))
        )
        elapsed = time.perf_counter() - t0
        await service.aclose()
        return list(results), elapsed

    results, elapsed = asyncio.run(burst())

    values = {r["bandwidth"] for r in results}
    executed = service.executor.stats.executed

    print_header("coalescing: 64 identical concurrent requests")
    print(f"{'requests':>16} {len(results):6d}")
    print(f"{'executions':>16} {executed:6d}")
    print(f"{'burst wall':>16} {elapsed * 1e3:8.1f} ms")
    print(f"{'answers':>16} {sorted(values)}")

    assert len(results) == 64
    assert values == {"1/2"}
    assert executed == 1, (
        f"burst of 64 identical requests cost {executed} executions"
    )
