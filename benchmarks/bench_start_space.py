"""Extension — exhaustive start-space profiles of the paper's pairs.

"In general the relative starting positions cannot be predicted": this
bench computes, for each trace-figure pair, the *distribution* of steady
bandwidths over every relative start — turning Figs. 3-6's single
trajectories into the full picture a designer needs.
"""

from __future__ import annotations

from fractions import Fraction

from repro.memory.config import FIG2_CONFIG, FIG3_CONFIG, FIG5_CONFIG
from repro.sim.statespace import start_space_profile
from repro.viz.profile import render_histogram

from conftest import print_header

PAIRS = [
    ("Fig 2 pair (1,7) on m=12,n_c=3", FIG2_CONFIG, 1, 7),
    ("Fig 3/4 pair (1,6) on m=13,n_c=6", FIG3_CONFIG, 1, 6),
    ("Fig 5/6 pair (1,3) on m=13,n_c=4", FIG5_CONFIG, 1, 3),
]


def _run(executor):
    return {
        name: start_space_profile(cfg, d1, d2, executor=executor)
        for name, cfg, d1, d2 in PAIRS
    }


def test_start_space(benchmark, executor):
    profiles = benchmark.pedantic(
        _run, args=(executor,), rounds=1, iterations=1
    )

    print_header("Start-space distributions of the paper's stream pairs")
    for name, *_ in PAIRS:
        prof = profiles[name]
        print(f"\n{name}  (max transient {prof.max_transient} clocks)")
        print(render_histogram(prof))

    fig2 = profiles[PAIRS[0][0]]
    fig3 = profiles[PAIRS[1][0]]
    fig5 = profiles[PAIRS[2][0]]

    # Fig 2 synchronizes: a single spike at 2.
    assert fig2.bandwidth_histogram() == {Fraction(2): 12}
    # Fig 3/4: the barrier 7/6 coexists with strictly worse mutual cycles.
    h3 = fig3.bandwidth_histogram()
    assert Fraction(7, 6) in h3
    assert min(h3) < Fraction(7, 6)
    # Fig 5/6: exactly two regimes, 4/3 (barrier) and 7/5 (inverted).
    h5 = fig5.bandwidth_histogram()
    assert set(h5) == {Fraction(4, 3), Fraction(7, 5)}
    assert h5[Fraction(4, 3)] == 11 and h5[Fraction(7, 5)] == 2

    benchmark.extra_info["fig5_histogram"] = {
        str(k): v for k, v in h5.items()
    }
