"""Extension — storage-scheme shoot-out (the skewing literature's table).

Can a storage scheme serve matrix columns, rows AND diagonals conflict
free?  The classical answers, regenerated under this repository's
conflict model for a 16-bank, n_c=4 memory and a 16x16 matrix:

* plain interleave — rows collapse (the Section V trap);
* linear skew      — all three sweeps clean (Budnik-Kuck style);
* XOR skew         — rows clean, diagonals collapse;
* safe dimension   — plain interleave with J1 = 17 also cleans rows
  at the cost of one padding column (Section V's software fix).
"""

from __future__ import annotations

from fractions import Fraction

from repro.memory.mapping import (
    InterleavedMapping,
    LinearSkewMapping,
    XorSkewMapping,
)
from repro.skewing.sweeps import sweep_report
from repro.viz.tables import format_table

from conftest import print_header

N_C = 4
SCHEMES = [
    ("plain, J1=16", InterleavedMapping(16), (16, 16)),
    ("plain, J1=17 (safe dim)", InterleavedMapping(16), (17, 16)),
    ("linear skew", LinearSkewMapping(16, 1), (16, 16)),
    ("XOR skew", XorSkewMapping(16), (16, 16)),
]


def _run():
    return {
        name: sweep_report(mapping, dims, N_C)
        for name, mapping, dims in SCHEMES
    }


def test_storage_schemes(benchmark):
    reports = benchmark(_run)

    print_header(
        "Storage schemes vs matrix sweeps (m=16, n_c=4, solo bandwidth)"
    )
    rows = []
    for name, *_ in SCHEMES:
        verdicts = {v.sweep: v for v in reports[name]}
        rows.append(
            (
                name,
                *(
                    str(verdicts[s].bandwidth_bound)
                    for s in ("column", "row", "diagonal")
                ),
            )
        )
    print(format_table(["scheme", "column", "row", "diagonal"], rows))

    by = {name: {v.sweep: v for v in reports[name]} for name, *_ in SCHEMES}
    # the Section V trap and both of its fixes
    assert by["plain, J1=16"]["row"].bandwidth_bound == Fraction(1, 4)
    assert by["plain, J1=17 (safe dim)"]["row"].conflict_free
    assert all(v.conflict_free for v in reports["linear skew"])
    # the XOR skew's known weakness
    assert not by["XOR skew"]["diagonal"].conflict_free
    assert by["XOR skew"]["row"].conflict_free

    benchmark.extra_info["linear_skew_clean"] = True
