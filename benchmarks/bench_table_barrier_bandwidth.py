"""Table T-C (extension) — eq. (29) barrier bandwidth vs simulation.

For every unique-barrier pair (Theorem 6's domain) on a grid of shapes,
checks that the simulated steady bandwidth equals ``1 + d1/d2`` from
every overlapping start; Theorem 7 (small-m) pairs are checked to be
start-independent barriers with bandwidth in ``[1 + d1/d2, 2)``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.sweep import canonical_pairs
from repro.analysis.validate import validate_unique_barrier
from repro.core import theorems
from repro.core.single import predict_single
from repro.viz.tables import format_table

from conftest import print_header

SHAPES = [(13, 4), (16, 2), (24, 3), (26, 4)]


def _collect(executor):
    issues = []
    rows = []
    for m, n_c in SHAPES:
        pairs = [(d1, d2) for d1, d2 in canonical_pairs(m) if d1 < d2]
        issues += validate_unique_barrier(m, n_c, pairs, executor=executor)
        for d1, d2 in pairs:
            r1 = predict_single(m, d1, n_c)
            r2 = predict_single(m, d2, n_c)
            if not (r1.return_number >= 2 * n_c and r2.return_number > n_c):
                continue
            if theorems.unique_barrier(m, n_c, d1, d2, stream1_priority=True):
                exact = theorems.unique_barrier_by_modulus(m, n_c, d1, d2)
                rows.append(
                    (
                        m, n_c, d1, d2,
                        str(theorems.barrier_bandwidth(d1, d2)),
                        "T6 (exact)" if exact else "T7 (lower bound)",
                    )
                )
    return issues, rows


def test_table_barrier_bandwidth(benchmark, executor):
    issues, rows = benchmark.pedantic(
        _collect, args=(executor,), rounds=1, iterations=1
    )

    print_header("T-C: unique-barrier bandwidth (eq. 29) vs simulation")
    print(format_table(
        ["m", "n_c", "d1", "d2", "eq29 = 1+d1/d2", "via"], rows
    ))
    print(f"\ndiscrepancies across {SHAPES}: {len(issues)}")

    assert issues == []
    assert rows, "sweep found no unique barriers — domain bug"
    assert any("T6" in r[5] for r in rows)

    benchmark.extra_info["unique_barrier_pairs"] = len(rows)
    benchmark.extra_info["discrepancies"] = len(issues)
