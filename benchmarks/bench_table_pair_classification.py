"""Table T-B (extension) — pair regimes: classification vs simulation.

For every canonical stride pair on m = 12, n_c = 3 the bench prints the
analytic classification next to the simulated best/worst steady
bandwidth over all relative starts, asserting that the analytic bounds
always bracket the simulation (Theorems 2-7 combined).
"""

from __future__ import annotations

from repro.analysis.report import pair_sweep_report
from repro.analysis.sweep import pair_sweep
from repro.analysis.validate import validate_conflict_free, validate_disjoint

from conftest import print_header


def _run(executor):
    rows = pair_sweep(12, 3, executor=executor)
    all_pairs = [(a, b) for a in range(1, 12) for b in range(a, 12)]
    issues = validate_conflict_free(12, 3, all_pairs, executor=executor)
    issues += validate_disjoint(12, 3, all_pairs, executor=executor)
    return rows, issues


def test_table_pair_classification(benchmark, executor):
    rows, issues = benchmark.pedantic(
        _run, args=(executor,), rounds=1, iterations=1
    )

    print_header("T-B: stride-pair classification vs simulation (m=12, n_c=3)")
    print(pair_sweep_report(rows))
    print(f"\nTheorem 2/3 validation discrepancies: {len(issues)}")

    assert issues == []
    assert all(r.within_bounds for r in rows)
    # the sweep must exercise several distinct regimes
    regimes = {r.regime for r in rows}
    assert len(regimes) >= 3, regimes

    benchmark.extra_info["pairs"] = len(rows)
    benchmark.extra_info["regimes"] = sorted(regimes)
