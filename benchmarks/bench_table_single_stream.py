"""Table T-A (extension) — single-stream bandwidth: theory vs simulator.

Sweeps every stride on a grid of memory shapes and checks the Section
III-A closed form ``b_eff = min(1, r/n_c)`` against exact steady-state
simulation.  The printed table is the X-MP shape (m=16, n_c=4).
"""

from __future__ import annotations

from repro.analysis.report import single_sweep_report
from repro.analysis.sweep import single_stream_sweep
from repro.analysis.validate import validate_single_stream

from conftest import print_header

SHAPES = [(8, 2), (12, 3), (13, 6), (16, 4), (32, 4)]


def _run(executor):
    issues = []
    for m, n_c in SHAPES:
        issues += validate_single_stream(m, n_c, executor=executor)
    rows = single_stream_sweep(16, 4, executor=executor)
    return issues, rows


def test_table_single_stream(benchmark, executor):
    issues, rows = benchmark(_run, executor)

    print_header("T-A: single-stream b_eff, theory vs simulation (m=16, n_c=4)")
    print(single_sweep_report(rows))
    print(f"\nshapes validated: {SHAPES}; discrepancies: {len(issues)}")

    assert issues == []
    assert all(r.agrees for r in rows)

    benchmark.extra_info["shapes"] = len(SHAPES)
    benchmark.extra_info["discrepancies"] = len(issues)
