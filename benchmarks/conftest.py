"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or one of the
DESIGN.md validation tables, printing the rows/series it reproduces and
asserting the shape claims.  Run with::

    pytest benchmarks/ --benchmark-only [-s to see the tables]
"""

from __future__ import annotations

import pytest


def print_header(title: str) -> None:
    bar = "=" * len(title)
    print(f"\n{bar}\n{title}\n{bar}")
