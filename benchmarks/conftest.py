"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or one of the
DESIGN.md validation tables, printing the rows/series it reproduces and
asserting the shape claims.  Run with::

    pytest benchmarks/ --benchmark-only [-s to see the tables]

Two pieces of shared infrastructure live here:

* the session-scoped ``executor`` fixture — one memoizing
  :class:`repro.runner.SweepExecutor` for the whole benchmark run, so
  table/figure benches that sweep overlapping domains simulate each
  canonical job once;
* a wall-clock recorder that writes per-benchmark timings to a JSON
  artifact (``benchmarks/.timings.json``, or the path in
  ``$REPRO_BENCH_TIMINGS``) for machine consumption by CI trend tooling.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

#: Where the wall-clock artifact goes; empty value disables it.
TIMINGS_ENV_VAR = "REPRO_BENCH_TIMINGS"
_DEFAULT_TIMINGS = Path(__file__).parent / ".timings.json"

_wall_clock: dict[str, float] = {}


def print_header(title: str) -> None:
    bar = "=" * len(title)
    print(f"\n{bar}\n{title}\n{bar}")


@pytest.fixture(scope="session")
def executor():
    """One memoizing SweepExecutor shared across the benchmark session.

    Runs the tiered ``auto`` backend — closed form where a theorem
    decides the job, fast simulation otherwise — i.e. the production
    sweep configuration.
    """
    from repro.runner import SweepExecutor

    with SweepExecutor(backend="auto") as ex:
        yield ex


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    start = time.perf_counter()
    yield
    _wall_clock[item.nodeid] = time.perf_counter() - start


def _timings_path() -> Path | None:
    raw = os.environ.get(TIMINGS_ENV_VAR)
    if raw is None:
        return _DEFAULT_TIMINGS
    return Path(raw) if raw else None


def pytest_sessionfinish(session, exitstatus):
    path = _timings_path()
    if path is None or not _wall_clock:
        return
    payload = {
        "schema": 1,
        "unit": "seconds",
        "benchmarks": {
            nodeid: round(elapsed, 6)
            for nodeid, elapsed in sorted(_wall_clock.items())
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
