#!/usr/bin/env python
"""Capacity planning: how many streams can this memory actually feed?

A systems-design walk through the library's k-stream and stochastic
tooling: start from the paper's "6·n_c = 24 > 16" remark, compute the
capacity bound for candidate memory shapes, verify it by exact
simulation, and then ask what random (gather) traffic — the classical
models' world — does to the same hardware.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.core.multistream import (
    capacity_bound,
    equal_stride_bandwidth_bound,
    max_conflict_free_streams,
)
from repro.memory import MemoryConfig
from repro.sim import equal_stride_table
from repro.stochastic import (
    binomial_bandwidth,
    hellerman_bandwidth,
    structured_vs_random,
)
from repro.viz import format_table, multi_series_table


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The capacity wall, per memory shape.
    # ------------------------------------------------------------------
    print("== how many unit-stride streams fit? ==\n")
    rows = []
    for m, n_c in [(16, 4), (32, 4), (64, 4), (16, 2)]:
        cfg = MemoryConfig(banks=m, bank_cycle=n_c)
        fits = max_conflict_free_streams(m, n_c, 1)
        rows.append(
            (
                f"m={m}, n_c={n_c}",
                fits,
                str(capacity_bound(m, n_c, 8)),
            )
        )
    print(format_table(
        ["memory", "conflict-free d=1 streams", "cap for 8 ports"], rows
    ))
    print(
        "\nThe X-MP row explains Fig. 10's INC=1 imperfection: six active "
        "ports\nagainst a 4-stream capacity (6*n_c = 24 > 16 banks)."
    )

    # ------------------------------------------------------------------
    # 2. Verified: the simulator hits the bound exactly.
    # ------------------------------------------------------------------
    print("\n== exact steady bandwidth vs stream count (m=16, n_c=4) ==\n")
    cfg = MemoryConfig(banks=16, bank_cycle=4)
    table = equal_stride_table(cfg, 1, 8)
    print(multi_series_table(
        list(table),
        {
            "simulated": [float(v) for v in table.values()],
            "bound": [
                float(equal_stride_bandwidth_bound(16, 4, 1, p))
                for p in table
            ],
        },
        x_label="p",
    ))

    # ------------------------------------------------------------------
    # 3. And if the traffic were random?  (The [1]-[5] world.)
    # ------------------------------------------------------------------
    print("\n== structured vs random traffic, same hardware ==\n")
    rows = []
    for p in (1, 2, 4, 6):
        cmp = structured_vs_random(cfg, p, horizon=2048, warmup=256)
        rows.append(
            (
                p,
                f"{float(cmp.structured):.2f}",
                f"{float(cmp.random):.2f}",
                f"{float(binomial_bandwidth(16, p)):.2f}",
            )
        )
    print(format_table(
        ["ports", "structured", "random gathers", "binomial model"], rows
    ))
    print(
        f"\nHellerman's single-queue bound B(16) = "
        f"{hellerman_bandwidth(16):.2f} accesses/cycle — the sub-sqrt(m)\n"
        "scaling that made structured vector access worth analysing in "
        "the first place."
    )


if __name__ == "__main__":
    main()
