#!/usr/bin/env python
"""Kernel advisor: automated Section V analysis of a loop nest.

Feed the advisor the array references of an inner loop; it computes
every stream's bank distance (eq. 33), flags self-conflicting strides,
classifies all stream pairs (Theorems 2-9), and proposes the paper's
fix — a leading dimension relatively prime to the bank count.  The
verdicts are then *checked on the machine model* by actually running the
kernel.

Run:  python examples/kernel_advisor.py
"""

from __future__ import annotations

from repro.analysis import ArrayRef, analyze_kernel
from repro.core.fortran import ArraySpec
from repro.machine import matrix_sweep_program, run_program
from repro.memory import CRAY_XMP_16
from repro.viz import format_table


def advise(title: str, refs: list[ArrayRef]) -> None:
    report = analyze_kernel(CRAY_XMP_16, refs)
    print(f"\n== {title} ==")
    print(format_table(
        ["array", "kind", "d", "r", "solo b_eff", "suggested J1"],
        report.summary_rows(),
    ))
    if report.self_conflicting_refs:
        names = [r.ref.name for r in report.self_conflicting_refs]
        print(f"  !! self-conflicting streams: {', '.join(names)}")
    worst = report.worst_pair
    if worst is not None:
        (i, j), cls = worst
        print(
            f"  worst pair: {refs[i].name} vs {refs[j].name} -> "
            f"{cls.regime.value}"
        )
    print(f"  verdict: {'CLEAN' if report.clean else 'NEEDS ATTENTION'}")


def main() -> None:
    print("Kernel advisor for a 16-bank, n_c=4, 4-section machine")

    # 1. A healthy unit-stride kernel: Y = Y + a*X
    advise(
        "DAXPY: Y(I) = Y(I) + a*X(I), INC=1",
        [
            ArrayRef("X", (10000,), inc=1),
            ArrayRef("Y", (10000,), inc=1),
            ArrayRef("Y", (10000,), inc=1, kind="store"),
        ],
    )

    # 2. The classic trap: row sweep of a REAL M(16, 512) matrix.
    advise(
        "row sweep of M(16, 512)  [d = 16 mod 16 = 0 !]",
        [ArrayRef("M", (16, 512), axis=1, inc=1)],
    )

    # 3. The advisor's fix, applied.
    advise(
        "row sweep of M(17, 512)  [leading dimension made coprime]",
        [ArrayRef("M", (17, 512), axis=1, inc=1)],
    )

    # ------------------------------------------------------------------
    # Check the advice on the machine model.
    # ------------------------------------------------------------------
    print("\n== machine check: row sweeps, dedicated machine ==")
    slow = run_program(
        matrix_sweep_program(ArraySpec("M", (16, 512)), "row"),
        other_cpu_active=False,
    )
    fast = run_program(
        matrix_sweep_program(ArraySpec("M", (17, 512)), "row"),
        other_cpu_active=False,
    )
    print(f"  M(16, 512): {slow.cycles} clocks for 512 loads "
          f"({slow.cycles / 512:.2f} clk/elem)")
    print(f"  M(17, 512): {fast.cycles} clocks for 512 loads "
          f"({fast.cycles / 512:.2f} clk/elem)")
    print(f"  speedup from one extra row of storage: "
          f"{slow.cycles / fast.cycles:.1f}x")


if __name__ == "__main__":
    main()
