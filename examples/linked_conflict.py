#!/usr/bin/env python
"""Architect's scenario: should my memory use cyclic priority or
consecutive-bank sections?

Replays the paper's Fig. 8/9 investigation as a design-space study on a
12-bank, 3-section, n_c=3 memory: two unit-stride streams from one CPU,
all 12 relative starts, under each combination of priority rule and
bank-to-section mapping.

Run:  python examples/linked_conflict.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import FIG8_CONFIG, AccessStream, simulate_streams
from repro.sim import bandwidth_by_offset
from repro.viz import format_table, render_result

CONSECUTIVE = FIG8_CONFIG.with_sections(3, "consecutive")


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Exhibit the linked conflict (Fig. 8a).
    # ------------------------------------------------------------------
    print("== the linked conflict, traced (fixed priority, b=(0,1)) ==\n")
    res = simulate_streams(
        FIG8_CONFIG,
        [AccessStream(0, 1, label="1"), AccessStream(1, 1, label="2")],
        cpus=[0, 0],
        cycles=40,
        trace=True,
        priority="fixed",
    )
    print(render_result(res, stop=34, show_sections=True))
    print("\n('*' = section conflict, '<' = stream 2 delayed: the lock",
          "alternates between the two kinds — a linked conflict.)")

    # ------------------------------------------------------------------
    # 2. Design-space sweep: mapping x priority x all starts.
    # ------------------------------------------------------------------
    print("\n== design space: locked starts out of 12 ==\n")
    rows = []
    for cfg, map_name in ((FIG8_CONFIG, "cyclic"), (CONSECUTIVE, "consecutive")):
        for rule in ("fixed", "cyclic", "lru"):
            table = bandwidth_by_offset(
                cfg, 1, 1, same_cpu=True, priority=rule
            )
            locked = sorted(o for o, bw in table.items() if bw < 2)
            rows.append(
                (
                    map_name,
                    rule,
                    len(locked),
                    str(min(table.values())),
                    ",".join(map(str, locked)) or "-",
                )
            )
    print(format_table(
        ["bank->section map", "priority", "locked", "worst b_eff", "offsets"],
        rows,
    ))

    print(
        "\nConclusions (matching the paper): a fixed rule can hold the\n"
        "linked conflict forever; cyclic priority dissolves it at the\n"
        "paper's start; Cheung & Smith's consecutive grouping removes\n"
        "it structurally, independent of the priority rule."
    )


if __name__ == "__main__":
    main()
