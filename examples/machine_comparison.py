#!/usr/bin/env python
"""Architectural study: X-MP vs a VP-200-flavoured machine, plus padding.

Two investigations a performance engineer of 1985 would run with this
library:

1. the same triad on the two machine families the paper names (Cray
   X-MP and Fujitsu VP-200) — where do the stride cliffs sit on each?
2. automatic COMMON-padding search (the paper hand-picked
   ``IDIM = 16*1024 + 1``): how much does placement matter, per stride?

Run:  python examples/machine_comparison.py
"""

from __future__ import annotations

from repro.analysis.padding import optimize_padding
from repro.machine.builder import VP200_SPEC, XMP_SPEC, run_on
from repro.machine.workloads import triad_program
from repro.memory.layout import CommonBlock
from repro.viz import format_table, multi_series_table


def sweep(spec, incs, n=256):
    out = {}
    for inc in incs:
        common = CommonBlock.build([(c, (20000,)) for c in "ABCD"])
        prog = triad_program(
            inc, n=n, common=common, vector_length=spec.vector_length
        )
        out[inc] = run_on(spec, prog).cycles
    return out


def main() -> None:
    incs = [1, 2, 3, 4, 8, 16]

    # ------------------------------------------------------------------
    # 1. Machine family comparison.
    # ------------------------------------------------------------------
    print("== triad on two machine families (dedicated, n=256) ==\n")
    xmp = sweep(XMP_SPEC, incs)
    vp = sweep(VP200_SPEC, incs)
    print(multi_series_table(
        incs,
        {"X-MP (16 banks)": [xmp[i] for i in incs],
         "VP-like (32 banks)": [vp[i] for i in incs]},
        x_label="INC",
    ))
    print(
        "\nThe VP-like 32-bank interleave halves the INC=8 and INC=16 "
        "resonances\n(r doubles); clean strides pay a small price for "
        "the single CPU's pipes."
    )

    # ------------------------------------------------------------------
    # 2. Padding search (the IDIM trick, automated).
    # ------------------------------------------------------------------
    print("\n== COMMON padding search, contended triad (INC=1, n=256) ==\n")
    ranked = optimize_padding(1, n=256)
    rows = [
        (r.pad, r.idim % 16, r.cycles,
         " ".join(f"{k}:{v}" for k, v in r.start_banks.items()))
        for r in ranked[:5] + ranked[-2:]
    ]
    print(format_table(
        ["pad", "IDIM mod 16", "clocks", "start banks"], rows,
        title="best five and worst two paddings",
    ))
    best, worst = ranked[0], ranked[-1]
    print(
        f"\nplacement alone is worth "
        f"{(worst.cycles - best.cycles) / worst.cycles:.1%} on this kernel "
        f"(pad {best.pad}: {best.cycles} vs pad {worst.pad}: {worst.cycles})"
    )
    print("the paper's choice (pad 1, one bank apart) ranks "
          f"#{[r.pad for r in ranked].index(1) + 1} of 16.")


if __name__ == "__main__":
    main()
