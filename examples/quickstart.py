#!/usr/bin/env python
"""Quickstart: analyse and simulate a pair of vector access streams.

Walks the library's three layers on the paper's Fig. 2/Fig. 3 setups:

1. closed-form analysis (``repro.core``) — return numbers, conflict
   classification, predicted bandwidth;
2. exact simulation (``repro.sim``) — steady-state bandwidth by cycle
   detection;
3. visualisation (``repro.viz``) — the paper's bank/clock trace diagrams.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FIG2_CONFIG,
    FIG3_CONFIG,
    AccessStream,
    classify_pair,
    predict_single,
    return_number,
    simulate_pair,
    simulate_streams,
)
from repro.viz import render_result


def main() -> None:
    # ------------------------------------------------------------------
    # 1. One stream: Theorem 1 and the Section III-A bandwidth formula.
    # ------------------------------------------------------------------
    m, n_c = 16, 4  # a Cray X-MP-shaped memory
    print("== single streams on a 16-bank, n_c=4 memory ==")
    for d in (1, 3, 8, 16):
        p = predict_single(m, d, n_c)
        print(
            f"  stride {d:2d}: return number r = {p.return_number:2d}, "
            f"b_eff = {p.bandwidth} "
            f"({'conflict free' if p.conflict_free else 'self-conflicting'})"
        )
    assert return_number(16, 8) == 2  # the classic power-of-two trap

    # ------------------------------------------------------------------
    # 2. Two streams: classify, then verify by exact simulation.
    # ------------------------------------------------------------------
    print("\n== two streams, m=12, n_c=3 ==")
    for d1, d2 in [(1, 7), (1, 2)]:
        cls = classify_pair(12, 3, d1, d2)
        pr = simulate_pair(FIG2_CONFIG, d1, d2, b2=0)
        print(
            f"  d=({d1},{d2}): regime {cls.regime.value:>24}, "
            f"predicted {cls.predicted_bandwidth}, simulated {pr.bandwidth}"
        )

    # ------------------------------------------------------------------
    # 3. The paper's barrier-situation, drawn like Fig. 3.
    # ------------------------------------------------------------------
    print("\n== Fig. 3 barrier-situation (m=13, n_c=6, d1=1, d2=6) ==")
    res = simulate_streams(
        FIG3_CONFIG,
        [AccessStream(0, 1, label="1"), AccessStream(0, 6, label="2")],
        cpus=[0, 1],
        cycles=40,
        trace=True,
    )
    print(render_result(res, stop=36))
    pr = simulate_pair(FIG3_CONFIG, 1, 6, b2=0)
    print(
        f"\nsteady b_eff = {pr.bandwidth} (eq. 29 predicts 1 + 1/6 = 7/6); "
        f"stream 2 gets {pr.grants[1]} of every {pr.period} clocks"
    )


if __name__ == "__main__":
    main()
