#!/usr/bin/env python
"""Following the paper's outlook: do skewing schemes help?

The conclusion suggests "the application of skewing schemes" to build
uniform access environments.  This study pits plain low-order
interleaving against a linear row-skew on the X-MP memory shape, for
the workload class the paper worries about: one strided stream next to
a unit-stride stream.

Run:  python examples/skewing_study.py
"""

from __future__ import annotations

from repro.memory import LinearSkewMapping, MemoryConfig
from repro.skewing import MappedStream, stride_sensitivity
from repro.viz import multi_series_table

CFG = MemoryConfig(banks=16, bank_cycle=4)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. What a skew does to a bank walk.
    # ------------------------------------------------------------------
    skew = LinearSkewMapping(16, skew=1)
    column = MappedStream(skew, base=0, stride=16)
    print("== bank walk of a stride-16 (column) stream ==")
    print("plain interleave: bank 0, 0, 0, ... (r = 1, b_eff = 1/4)")
    print(f"row-skewed      : banks {column.banks(16, 8)} ... (all 16 banks)")

    # ------------------------------------------------------------------
    # 2. Quantified: stride d + one unit-stride peer, both mappings.
    # ------------------------------------------------------------------
    rows = stride_sensitivity(
        CFG, range(1, 17), peers=1, skew=1, horizon=2048, warmup=256
    )
    print("\n== grants/clock (max 2): plain vs skewed ==\n")
    print(multi_series_table(
        [r.stride for r in rows],
        {
            "plain": [float(r.plain) for r in rows],
            "skewed": [float(r.skewed) for r in rows],
            "gain %": [100 * r.improvement for r in rows],
        },
        x_label="d",
    ))

    worst_plain = min(rows, key=lambda r: r.plain)
    print(
        f"\nworst plain stride: d={worst_plain.stride} at "
        f"{float(worst_plain.plain):.3f} grants/clock; the same workload "
        f"under the skew reaches {float(worst_plain.skewed):.3f}."
    )
    print(
        "The skew flattens the power-of-two cliffs of Fig. 10 at the\n"
        "price of a slightly less regular bank sequence for every other\n"
        "stride — consistent with the skewing literature the paper cites."
    )


if __name__ == "__main__":
    main()
