#!/usr/bin/env python
"""Stride planning for the Fortran programmer (Section V's advice).

Scenario: you are writing Fortran for a 16-bank vector machine and need
to sweep columns, rows and the diagonal of a 2-D array.  The paper's
closing advice: *know your distances* (eq. 33) and *dimension arrays
relatively prime to the number of banks*.  This example quantifies that
advice with the analytic atlas and the simulator.

Run:  python examples/stride_planning.py
"""

from __future__ import annotations

from repro import CRAY_XMP_16, classify_pair, loop_distance, predict_single
from repro.analysis import loop_advice, stride_atlas
from repro.core.fortran import (
    diagonal_distance,
    row_distance,
    safe_leading_dimension,
)
from repro.viz import format_table


def sweep_report(title: str, dims: tuple[int, int]) -> list[tuple]:
    """Distances and solo bandwidths for the three classic sweeps."""
    m, n_c = CRAY_XMP_16.banks, CRAY_XMP_16.bank_cycle
    rows = []
    for sweep, d in (
        ("column", loop_distance(m, 1, dims, axis=0)),
        ("row", row_distance(m, dims)),
        ("diagonal", diagonal_distance(m, dims)),
    ):
        p = predict_single(m, d, n_c)
        rows.append(
            (title, sweep, d, p.return_number, str(p.bandwidth))
        )
    return rows


def main() -> None:
    m = CRAY_XMP_16.banks

    # ------------------------------------------------------------------
    # 1. The trap: a power-of-two leading dimension.
    # ------------------------------------------------------------------
    naive = (64, 64)
    safe_j = safe_leading_dimension(m, 64)  # 65
    safe = (safe_j, 64)
    print("== REAL A(J1, 64) on a 16-bank, n_c=4 machine ==\n")
    rows = sweep_report(f"J1=64", naive) + sweep_report(f"J1={safe_j}", safe)
    print(format_table(
        ["dimension", "sweep", "distance d", "r = m/gcd(m,d)", "solo b_eff"],
        rows,
    ))
    print(
        f"\nSection V's rule: choose J1 relatively prime to m={m} "
        f"-> safe_leading_dimension({m}, 64) = {safe_j}"
    )

    # ------------------------------------------------------------------
    # 2. How each stride fares against a unit-stride neighbour.
    # ------------------------------------------------------------------
    print("\n== stride atlas vs a d=1 stream from the other CPU ==\n")
    atlas = stride_atlas(CRAY_XMP_16, range(1, 17))
    print(format_table(
        ["INC", "d", "r", "solo", "regime vs d=1", "predicted pair b_eff"],
        [
            (
                a.stride,
                a.distance,
                a.return_number,
                str(a.solo_bandwidth),
                a.vs_unit_stride_regime,
                "-" if a.vs_unit_stride_bandwidth is None
                else str(a.vs_unit_stride_bandwidth),
            )
            for a in atlas
        ],
    ))

    # ------------------------------------------------------------------
    # 3. A concrete loop check (eq. 33 end to end).
    # ------------------------------------------------------------------
    print("\n== checking one loop: DO I = 1, N  ...  A(3, I) ==")
    # sweeping the 2nd dimension of A(65, N): d = 65 mod 16 = 1
    adv = loop_advice(CRAY_XMP_16, inc=1, dims=(65, 1024), axis=1)
    print(
        f"distance {adv.distance}, r={adv.return_number}, "
        f"solo b_eff {adv.solo_bandwidth}, "
        f"safe={'yes' if adv.safe else 'no'}"
    )
    cls = classify_pair(16, 4, 1, adv.distance)
    print(f"against a unit-stride peer: {cls.regime.value}")


if __name__ == "__main__":
    main()
