#!/usr/bin/env python
"""The Section IV experiment: a vector triad on the modelled Cray X-MP.

Reproduces Fig. 10 at example scale (n = 256 for speed; pass --full for
the paper's n = 1024):

    DO 1 I = 1, N*INC, INC
  1 A(I) = B(I) + C(I)*D(I)

CPU 0 runs the triad for INC = 1..16; CPU 1 either streams distance 1 on
all three of its ports (the paper's hostile environment) or sits idle.

Run:  python examples/triad_xmp.py [--full]
"""

from __future__ import annotations

import sys

from repro.analysis import triad_report
from repro.machine import run_triad, triad_sweep
from repro.viz import bar_chart


def main(full: bool = False) -> None:
    n = 1024 if full else 256
    incs = range(1, 17)

    print(f"== triad A(I)=B(I)+C(I)*D(I), n={n}, 2-CPU 16-bank X-MP ==\n")

    contended = triad_sweep(incs, other_cpu_active=True, n=n)
    dedicated = triad_sweep(incs, other_cpu_active=False, n=n)

    print("Fig. 10(a): other CPU streaming d=1 on all three ports")
    print(bar_chart(
        list(incs), [r.cycles for r in contended],
        x_label="INC", y_label="clocks",
    ))
    print("\nFig. 10(b): other CPU off")
    print(bar_chart(
        list(incs), [r.cycles for r in dedicated],
        x_label="INC", y_label="clocks",
    ))

    print("\nConflicts encountered by the triad (Fig. 10(c)-(e)):")
    print(triad_report(contended))

    base = contended[0].cycles
    print("\nObservations (paper's Section IV):")
    print(f"  INC=2 : {contended[1].cycles / base:.2f}x INC=1 "
          "(paper: ~1.5x — triad barriered by the d=1 competitor)")
    print(f"  INC=3 : {contended[2].cycles / base:.2f}x INC=1 (paper: ~2x)")
    print(f"  INC=16: {contended[15].cycles / base:.2f}x INC=1 "
          "(r=1 self-conflict: every access hits one bank)")

    # A single data point in detail: where INC=2 loses its time.
    r = run_triad(2, other_cpu_active=True, n=n)
    stalls = (
        r.bank_stall_cycles
        + r.section_stall_cycles
        + r.simultaneous_stall_cycles
    )
    print(
        f"\nINC=2 detail: {r.cycles} clocks, {r.triad_grants} transfers, "
        f"{stalls} port-stall clocks "
        f"({r.bank_stall_cycles} bank / {r.section_stall_cycles} section / "
        f"{r.simultaneous_stall_cycles} simultaneous)"
    )

    # ... and how the ports schedule it (first segments, dedicated run).
    from repro.machine import build_xmp, port_utilisation, render_timeline
    from repro.machine.workloads import triad_program
    from repro.memory.layout import triad_common_block

    machine = build_xmp()
    cpu0 = machine.cpus[0]
    cpu0.load_program(triad_program(2, n=192, common=triad_common_block()))
    machine.run_until_programs_finish()
    print("\nPort schedule, INC=2 dedicated (B/C/D share 2 read ports,")
    print("stores chain behind; stretched bars are stalled streams):")
    print(render_timeline(cpu0, width=56, max_rows=12))
    util = port_utilisation(cpu0)
    print("port utilisation:",
          ", ".join(f"P{p}: {u:.0%}" for p, u in util.items()))


if __name__ == "__main__":
    main(full="--full" in sys.argv[1:])
