"""repro — Oed & Lange (1985), interleaved memories in vector processors.

A faithful, fully-executable reproduction of

    W. Oed and O. Lange, "On the Effective Bandwidth of Interleaved
    Memories in Vector Processor Systems", IEEE Trans. Computers,
    C-34(10):949-957, October 1985.

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the analytical model: Theorem 1 (return numbers),
  single-stream bandwidth, Theorems 2-9 on two-stream conflict-freeness,
  barrier-situations and sections, the eq. (29) barrier bandwidth, the
  Appendix isomorphism and eq. (33) Fortran strides.
* :mod:`repro.memory` — the hardware substrate: banks, bank cycle time,
  sections/paths, address mappings, COMMON-block layout.
* :mod:`repro.sim` — a cycle-accurate simulator with dynamic conflict
  resolution, three conflict types, pluggable priority rules and exact
  steady-state (cyclic state) bandwidth detection.
* :mod:`repro.runner` — the unified execution layer: hashable
  :class:`~repro.runner.SimJob` descriptions canonicalized via the
  Appendix isomorphism, pluggable backends (object-graph reference
  engine vs. flat-array fast engine) and the memoizing, deduplicating
  :class:`~repro.runner.SweepExecutor` every sweep fans out through.
* :mod:`repro.machine` — a Cray X-MP model (2 CPUs x 3 ports, 16 banks,
  ``n_c = 4``) running strip-mined, chained vector loops: the Section IV
  triad experiment.
* :mod:`repro.viz` — ASCII renderings of the paper's bank/clock trace
  figures and result series.
* :mod:`repro.analysis` — sweeps and sim-vs-theory validation harness.
* :mod:`repro.skewing` — skewing schemes (the conclusion's outlook),
  evaluated under the same conflict model.

Quick start::

    >>> from repro import classify_pair, simulate_pair, FIG2_CONFIG
    >>> classify_pair(12, 3, 1, 7).regime
    <PairRegime.CONFLICT_FREE: 'conflict-free'>
    >>> simulate_pair(FIG2_CONFIG, 1, 7).bandwidth
    Fraction(2, 1)
"""

from .core import (
    INFINITE,
    AccessStream,
    PairClassification,
    PairRegime,
    SingleStreamPrediction,
    barrier_bandwidth,
    barrier_possible,
    canonical_pair,
    classify_pair,
    conflict_free_possible,
    disjoint_sets_possible,
    loop_distance,
    predict_single,
    return_number,
    single_stream_bandwidth,
    unique_barrier,
)
from .memory import (
    CRAY_XMP_16,
    FIG2_CONFIG,
    FIG3_CONFIG,
    FIG5_CONFIG,
    FIG7_CONFIG,
    FIG8_CONFIG,
    MemoryConfig,
    triad_common_block,
)
from .runner import (
    SimJob,
    SimOutcome,
    SweepExecutor,
    default_executor,
    run,
)
from .sim import (
    ConflictKind,
    Engine,
    ObservedRegime,
    SimulationResult,
    simulate_pair,
    simulate_streams,
)

__version__ = "1.0.0"

__all__ = [
    "AccessStream",
    "CRAY_XMP_16",
    "ConflictKind",
    "Engine",
    "FIG2_CONFIG",
    "FIG3_CONFIG",
    "FIG5_CONFIG",
    "FIG7_CONFIG",
    "FIG8_CONFIG",
    "INFINITE",
    "MemoryConfig",
    "ObservedRegime",
    "PairClassification",
    "PairRegime",
    "SimJob",
    "SimOutcome",
    "SimulationResult",
    "SingleStreamPrediction",
    "SweepExecutor",
    "barrier_bandwidth",
    "barrier_possible",
    "canonical_pair",
    "classify_pair",
    "conflict_free_possible",
    "default_executor",
    "disjoint_sets_possible",
    "loop_distance",
    "predict_single",
    "return_number",
    "run",
    "simulate_pair",
    "simulate_streams",
    "single_stream_bandwidth",
    "triad_common_block",
    "unique_barrier",
    "__version__",
]
