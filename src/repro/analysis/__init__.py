"""Evaluation harness: sweeps, validation, programmer-facing atlas.

``sweep``
    Parameter sweeps over strides and stride pairs (theory + sim).
``validate``
    Sim-vs-theory discrepancy hunts for every theorem.
``atlas``
    Section V style stride guidance for a concrete machine.
``report``
    Table formatting for the above.
"""

from .atlas import StrideAdvice, loop_advice, pair_atlas_row, stride_atlas
from .census import RegimeCensus, observed_regime_census, regime_census
from .loopnest import ArrayRef, KernelReport, RefAnalysis, analyze_kernel
from .montecarlo import EnvironmentSample, expected_bandwidth, sample_environments
from .padding import PaddingResult, evaluate_padding, optimize_padding
from .report import (
    fraction_str,
    pair_sweep_report,
    single_sweep_report,
    triad_report,
)
from .sweep import (
    PairSweepRow,
    SingleSweepRow,
    canonical_pairs,
    pair_sweep,
    single_stream_sweep,
)
from .validate import (
    Discrepancy,
    validate_conflict_free,
    validate_disjoint,
    validate_sections,
    validate_single_stream,
    validate_unique_barrier,
)

__all__ = [
    "ArrayRef",
    "Discrepancy",
    "EnvironmentSample",
    "KernelReport",
    "PaddingResult",
    "PairSweepRow",
    "RefAnalysis",
    "RegimeCensus",
    "SingleSweepRow",
    "StrideAdvice",
    "analyze_kernel",
    "evaluate_padding",
    "expected_bandwidth",
    "optimize_padding",
    "canonical_pairs",
    "fraction_str",
    "loop_advice",
    "pair_atlas_row",
    "pair_sweep",
    "pair_sweep_report",
    "observed_regime_census",
    "regime_census",
    "sample_environments",
    "single_stream_sweep",
    "single_sweep_report",
    "stride_atlas",
    "triad_report",
    "validate_conflict_free",
    "validate_disjoint",
    "validate_sections",
    "validate_single_stream",
    "validate_unique_barrier",
]
