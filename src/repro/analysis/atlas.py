"""Conflict atlas: programmer-facing stride guidance (Section V).

The paper closes with advice to the programmer: know your distances,
beware rows and diagonals of Fortran arrays, dimension arrays relatively
prime to the bank count.  The atlas condenses the analysis into exactly
that form — for a given machine, a table over strides (or stride pairs)
of what to expect.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.classify import PairRegime, classify_pair
from ..core.fortran import loop_distance
from ..core.single import predict_single
from ..memory.config import MemoryConfig
from ..sim.pairs import bandwidth_by_offset

__all__ = ["StrideAdvice", "stride_atlas", "loop_advice", "pair_atlas_row"]


@dataclass(frozen=True)
class StrideAdvice:
    """Verdict for one stride on one machine."""

    stride: int
    distance: int
    return_number: int
    solo_bandwidth: Fraction
    self_conflicting: bool
    vs_unit_stride_regime: str
    vs_unit_stride_bandwidth: Fraction | None

    @property
    def safe(self) -> bool:
        """Full rate alone and conflict-free against a unit-stride peer."""
        return (
            not self.self_conflicting
            and self.vs_unit_stride_regime
            in (PairRegime.CONFLICT_FREE.value, PairRegime.DISJOINT_POSSIBLE.value)
        )


def stride_atlas(
    config: MemoryConfig, strides: range | list[int] = range(1, 17)
) -> list[StrideAdvice]:
    """Advice rows for a sweep of strides.

    ``vs_unit_stride`` columns answer the question the Fig. 10
    environment poses: how does this stride fare against a distance-1
    stream from the other CPU?
    """
    m, n_c = config.banks, config.bank_cycle
    rows: list[StrideAdvice] = []
    for stride in strides:
        d = stride % m
        solo = predict_single(m, d, n_c)
        cls = classify_pair(m, n_c, 1, d)
        rows.append(
            StrideAdvice(
                stride=stride,
                distance=d,
                return_number=solo.return_number,
                solo_bandwidth=solo.bandwidth,
                self_conflicting=not solo.conflict_free,
                vs_unit_stride_regime=cls.regime.value,
                vs_unit_stride_bandwidth=cls.predicted_bandwidth,
            )
        )
    return rows


def loop_advice(
    config: MemoryConfig,
    inc: int,
    dims: tuple[int, ...] = (),
    axis: int = 0,
) -> StrideAdvice:
    """Advice for a concrete Fortran loop (eq. 33 distance)."""
    d = loop_distance(config.banks, inc, dims, axis)
    return stride_atlas(config, [d])[0]


def pair_atlas_row(
    config: MemoryConfig, d1: int, d2: int, *, simulate: bool = False
) -> dict[str, object]:
    """One exhaustive row for a stride pair (classification + extremes)."""
    m, n_c = config.banks, config.bank_cycle
    cls = classify_pair(m, n_c, d1, d2)
    row: dict[str, object] = {
        "d1": d1 % m,
        "d2": d2 % m,
        "regime": cls.regime.value,
        "predicted": cls.predicted_bandwidth,
        "lower": cls.bandwidth_lower,
        "upper": cls.bandwidth_upper,
    }
    if simulate:
        table = bandwidth_by_offset(config, d1, d2)
        row["sim_best"] = max(table.values())
        row["sim_worst"] = min(table.values())
    return row
