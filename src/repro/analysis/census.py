"""Regime census: how much of the stride space each theorem governs.

For a memory shape, classify *every* stride pair and count the regimes —
a coverage map of the paper's theory.  The census answers the practical
question "how likely is a random pair of streams to be conflict-free /
barriered / unpredictable on this machine?" and regression-locks the
classifier (any change to a theorem predicate shifts the counts).

:func:`observed_regime_census` is the simulation-side counterpart: it
runs every canonical pair over every relative start through the
:class:`repro.runner.SweepExecutor` and tallies what the memory
*actually does* — the observational ground truth the analytic census is
checked against.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.arithmetic import units_tuple
from ..core.classify import PairRegime, classify_pair
from ..memory.config import MemoryConfig
from ..runner import SweepExecutor, default_executor, jobs_for_offsets
from ..runner.regime import observe_pair_regime

__all__ = ["RegimeCensus", "regime_census", "observed_regime_census"]


@dataclass(frozen=True)
class RegimeCensus:
    """Counts of classified regimes over a stride-pair domain."""

    m: int
    n_c: int
    s: int | None
    counts: dict[PairRegime, int]
    total: int

    def share(self, regime: PairRegime) -> Fraction:
        """Fraction of the domain in one regime."""
        if self.total == 0:
            raise ValueError("empty census")
        return Fraction(self.counts.get(regime, 0), self.total)

    @property
    def determined(self) -> int:
        """Pairs whose exact bandwidth the theory pins down."""
        return self.counts.get(PairRegime.CONFLICT_FREE, 0) + self.counts.get(
            PairRegime.UNIQUE_BARRIER, 0
        )

    def rows(self) -> list[tuple[str, int, str]]:
        """(regime, count, share%) rows for report tables."""
        out = []
        for regime in PairRegime:
            n = self.counts.get(regime, 0)
            if n == 0:
                continue
            out.append(
                # Table-only percentage; share() carries the exact value.
                (regime.value, n, f"{100 * n / self.total:.1f}%")  # reprolint: disable=EXACT001
            )
        return out


def regime_census(
    m: int,
    n_c: int,
    *,
    s: int | None = None,
    include_self_conflicting: bool = True,
    stream1_priority: bool = False,
) -> RegimeCensus:
    """Classify all unordered stride pairs ``1 <= d1 <= d2 < m``.

    Stride 0 is excluded (a degenerate single-bank stream);
    ``include_self_conflicting=False`` restricts the domain to the
    paper's standing assumption ``r1, r2 >= n_c``.
    """
    counts: dict[PairRegime, int] = {}
    total = 0
    if not stream1_priority and (s is None or s == m):
        regimes = _orbit_regimes(m, n_c, s)
        for regime in regimes.values():
            if (
                not include_self_conflicting
                and regime is PairRegime.SELF_CONFLICT
            ):
                continue
            counts[regime] = counts.get(regime, 0) + 1
            total += 1
        return RegimeCensus(m=m, n_c=n_c, s=s, counts=counts, total=total)
    for d1 in range(1, m):
        for d2 in range(d1, m):
            c = classify_pair(
                m, n_c, d1, d2, s=s, stream1_priority=stream1_priority
            )
            if (
                not include_self_conflicting
                and c.regime is PairRegime.SELF_CONFLICT
            ):
                continue
            counts[c.regime] = counts.get(c.regime, 0) + 1
            total += 1
    return RegimeCensus(m=m, n_c=n_c, s=s, counts=counts, total=total)


def _orbit_regimes(
    m: int, n_c: int, s: int | None
) -> dict[tuple[int, int], PairRegime]:
    """Regime of every unordered stride pair, one classification per orbit.

    The Appendix isomorphism ``(d1, d2) -> (k·d1, k·d2)`` (unit ``k``)
    preserves every quantity the classifier consults — return numbers,
    ``f = gcd(m, d1, d2)``, the Theorem-3 drift, and the canonical
    barrier form — so one :func:`classify_pair` call per orbit paints the
    whole class.  Swapping the streams is likewise regime-neutral when no
    stream holds a priority edge (the classifier probes both
    orientations), which is why the caller gates this fast path on
    ``stream1_priority=False``.
    """
    regimes: dict[tuple[int, int], PairRegime] = {}
    ks = units_tuple(m)
    for d1 in range(1, m):
        for d2 in range(d1, m):
            if (d1, d2) in regimes:
                continue
            regime = classify_pair(m, n_c, d1, d2, s=s).regime
            for k in ks:
                a = (k * d1) % m
                b = (k * d2) % m
                if a > b:
                    a, b = b, a
                regimes[(a, b)] = regime
    return regimes


def observed_regime_census(
    m: int,
    n_c: int,
    *,
    pairs: list[tuple[int, int]] | None = None,
    priority: str = "fixed",
    executor: SweepExecutor | None = None,
) -> dict[str, int]:
    """Simulated regime counts over canonical pairs, all relative starts.

    For each pair every relative start runs to its exact steady state
    (one batched executor sweep — isomorphic jobs deduplicate); the pair
    is labelled by what the whole start space shows:

    * ``"conflict-free"`` — every start reaches full rate on both streams;
    * ``"unique-barrier"`` — every start delays exactly stream 2;
    * ``"start-dependent"`` — different starts land in different regimes;
    * otherwise the uniform observed regime's own label.
    """
    from .sweep import canonical_pairs

    config = MemoryConfig(banks=m, bank_cycle=n_c)
    if pairs is None:
        pairs = canonical_pairs(m)
    ex = executor if executor is not None else default_executor()
    counts: dict[str, int] = {}
    for d1, d2 in pairs:
        jobs = jobs_for_offsets(config, d1, d2, range(m), priority=priority)
        outcomes = ex.run_many(jobs)
        regimes = {
            observe_pair_regime(o.period, o.grants)
            for o in outcomes
            if o.period is not None
        }
        if len(regimes) > 1:
            label = "start-dependent"
        else:
            label = next(iter(regimes)).value
        counts[label] = counts.get(label, 0) + 1
    return counts
