"""Loop-nest analysis: Section V's programmer guidance, automated.

Given the array references of a Fortran-style inner loop, compute each
reference's bank distance (eq. 33), the solo bandwidth of every stream,
the pairwise conflict classification of all streams, and — when a
reference is dangerous — the Section V fix (a leading dimension
relatively prime to the bank count).

This is the "what the paper tells the programmer to do by hand" turned
into a function.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.classify import PairClassification, PairRegime, classify_pair
from ..core.fortran import loop_distance, safe_leading_dimension
from ..core.single import SingleStreamPrediction, predict_single
from ..memory.config import MemoryConfig

__all__ = ["ArrayRef", "RefAnalysis", "KernelReport", "analyze_kernel"]


@dataclass(frozen=True)
class ArrayRef:
    """One array reference inside the inner loop.

    ``dims`` are the declared dimension sizes; ``axis`` is the dimension
    the inner loop sweeps (0-based); ``inc`` the loop increment along
    that axis.  ``kind`` ("load"/"store") is carried through to reports.
    """

    name: str
    dims: tuple[int, ...]
    axis: int = 0
    inc: int = 1
    kind: str = "load"

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError("array needs at least one dimension")
        if self.kind not in ("load", "store"):
            raise ValueError("kind must be 'load' or 'store'")

    def distance(self, m: int) -> int:
        """Equation (33) for this reference."""
        return loop_distance(m, self.inc, self.dims, self.axis)


@dataclass(frozen=True)
class RefAnalysis:
    """Per-reference verdict."""

    ref: ArrayRef
    distance: int
    solo: SingleStreamPrediction
    #: Section V's fix when the solo stream self-conflicts by way of a
    #: resonant leading dimension; ``None`` when nothing to fix or the
    #: distance does not come from a higher axis.
    suggested_leading_dimension: int | None


@dataclass(frozen=True)
class KernelReport:
    """Whole-kernel analysis."""

    config: MemoryConfig
    refs: tuple[RefAnalysis, ...]
    #: classification for every unordered pair (i, j), i < j
    pairs: dict[tuple[int, int], PairClassification]

    @property
    def self_conflicting_refs(self) -> list[RefAnalysis]:
        return [r for r in self.refs if not r.solo.conflict_free]

    @property
    def worst_pair(self) -> tuple[tuple[int, int], PairClassification] | None:
        """The pair with the lowest guaranteed bandwidth."""
        if not self.pairs:
            return None
        key = min(
            self.pairs, key=lambda k: self.pairs[k].bandwidth_lower
        )
        return key, self.pairs[key]

    @property
    def clean(self) -> bool:
        """No self-conflicts and every pair certainly conflict free."""
        if self.self_conflicting_refs:
            return False
        return all(
            c.regime in (PairRegime.CONFLICT_FREE, PairRegime.DISJOINT_POSSIBLE)
            for c in self.pairs.values()
        )

    def summary_rows(self) -> list[tuple]:
        """Rows for a report table: name, kind, d, r, solo b_eff, fix."""
        out = []
        for r in self.refs:
            out.append(
                (
                    r.ref.name,
                    r.ref.kind,
                    r.distance,
                    r.solo.return_number,
                    str(r.solo.bandwidth),
                    r.suggested_leading_dimension or "-",
                )
            )
        return out


def analyze_kernel(
    config: MemoryConfig, refs: list[ArrayRef]
) -> KernelReport:
    """Analyse the access streams of one inner loop.

    Pairwise classification uses the unsectioned model when the streams
    come from different ports of one CPU of an ``s = m`` machine; for a
    sectioned machine pass its :class:`MemoryConfig` — the classifier
    applies Theorems 8/9 automatically.
    """
    if not refs:
        raise ValueError("kernel needs at least one array reference")
    m, n_c = config.banks, config.bank_cycle
    s = config.effective_sections if config.sectioned else None

    analyses: list[RefAnalysis] = []
    for ref in refs:
        d = ref.distance(m)
        solo = predict_single(m, d, n_c)
        suggestion: int | None = None
        if not solo.conflict_free and ref.axis > 0:
            # the distance came from a leading-dimension product: suggest
            # the smallest resize making it coprime to m.
            j1 = ref.dims[0]
            fixed = safe_leading_dimension(m, j1)
            if fixed != j1:
                suggestion = fixed
        analyses.append(
            RefAnalysis(
                ref=ref,
                distance=d,
                solo=solo,
                suggested_leading_dimension=suggestion,
            )
        )

    pairs: dict[tuple[int, int], PairClassification] = {}
    for i in range(len(refs)):
        for j in range(i + 1, len(refs)):
            pairs[(i, j)] = classify_pair(
                m, n_c, analyses[i].distance, analyses[j].distance, s=s
            )
    return KernelReport(config=config, refs=tuple(analyses), pairs=pairs)
