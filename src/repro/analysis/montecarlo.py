"""Monte-Carlo environment analysis: expected bandwidth, random starts.

"In general the relative starting positions cannot be predicted" — so a
system designer cares about the *expectation and tail* of the bandwidth
over random placements, not just the best case.  For two streams the
start space is small enough to enumerate exactly
(:mod:`repro.sim.statespace`); for three or more streams it grows as
``m^(k-1)`` and sampling takes over.  This module samples k-stream
environments with a seeded RNG and reports distribution summaries.

Samples run as one batch through a :class:`repro.runner.SweepExecutor`:
repeated and isomorphic placements collapse onto single simulations (the
executor's canonical-job memoization subsumes the explicit de-dup this
module used to carry), and a multi-worker executor fans the batch out
over processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..memory.config import MemoryConfig
from ..runner import SimJob, SweepExecutor, default_executor

__all__ = ["EnvironmentSample", "sample_environments", "expected_bandwidth"]


@dataclass(frozen=True)
class EnvironmentSample:
    """Distribution summary of steady bandwidths over random starts."""

    m: int
    n_c: int
    strides: tuple[int, ...]
    samples: int
    mean: float
    worst: Fraction
    best: Fraction
    #: empirical P(b_eff == best) — how lucky a random placement must be
    best_share: float

    @property
    def spread(self) -> float:
        """best - worst, as floats (0 for placement-insensitive pairs)."""
        # Presentation boundary: worst/best stay exact Fractions above.
        return float(self.best) - float(self.worst)  # reprolint: disable=EXACT001


def sample_environments(
    config: MemoryConfig,
    strides: list[int],
    *,
    samples: int = 50,
    seed: int = 0,
    same_cpu: bool = False,
    priority: str = "fixed",
    executor: SweepExecutor | None = None,
) -> EnvironmentSample:
    """Sample random start banks for ``strides`` and summarise b_eff.

    Stream 0 is pinned at bank 0 (only relative placement matters); the
    rest draw uniform starts.  Exact rational bandwidths per sample come
    from the steady-state detector, so ``worst``/``best`` are exact
    values actually attained.
    """
    if not strides:
        raise ValueError("need at least one stride")
    if samples <= 0:
        raise ValueError("sample count must be positive")
    m = config.banks
    rng = np.random.default_rng(seed)
    cpus = [0] * len(strides) if same_cpu else list(range(len(strides)))
    ex = executor if executor is not None else default_executor()
    jobs = []
    for _ in range(samples):
        starts = (0, *(int(x) for x in rng.integers(0, m, len(strides) - 1)))
        specs = [(b, d % m) for b, d in zip(starts, strides)]
        jobs.append(
            SimJob.from_specs(
                config, specs, cpus=cpus, priority=priority,
                max_cycles=2_000_000,
            )
        )
    values = [out.bandwidth for out in ex.run_many(jobs)]
    best = max(values)
    return EnvironmentSample(
        m=m,
        n_c=config.bank_cycle,
        strides=tuple(d % m for d in strides),
        samples=samples,
        # mean/best_share are declared float summaries of an exact sample
        # set; worst/best keep the attained Fractions.
        mean=float(sum(values, Fraction(0)) / len(values)),  # reprolint: disable=EXACT001
        worst=min(values),
        best=best,
        best_share=sum(1 for v in values if v == best) / len(values),  # reprolint: disable=EXACT001
    )


def expected_bandwidth(
    config: MemoryConfig,
    strides: list[int],
    **kwargs,
) -> float:
    """Shorthand for the sampled mean of :func:`sample_environments`."""
    return sample_environments(config, strides, **kwargs).mean
