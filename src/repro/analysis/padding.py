"""Array-padding optimisation (automating the paper's IDIM trick).

Section IV controls its experiment by dimensioning the COMMON block with
``IDIM = 16*1024 + 1`` — one pad word per array — "in order to fix the
relative position of the arrays in memory".  In real codes that padding
is a *tuning knob*: the relative start banks decide which streams meet
which (Theorems 2-7 are all about relative positions).

:func:`optimize_padding` searches the pad space for a kernel and memory
shape, scoring each candidate with the actual machine model, and returns
the ranking — the tool a Cray programmer of 1985 would have wanted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..machine.workloads import triad_program
from ..machine.xmp import XMP_CONFIG, run_program
from ..memory.config import MemoryConfig
from ..memory.layout import CommonBlock

__all__ = ["PaddingResult", "evaluate_padding", "optimize_padding"]


@dataclass(frozen=True)
class PaddingResult:
    """One padding candidate's measured cost."""

    pad: int
    idim: int
    cycles: int
    start_banks: dict[str, int]


def _padded_common(base_words: int, pad: int) -> CommonBlock:
    """A, B, C, D of ``base_words + pad`` words each."""
    idim = base_words + pad
    return CommonBlock.build(
        [("A", (idim,)), ("B", (idim,)), ("C", (idim,)), ("D", (idim,))]
    )


def evaluate_padding(
    inc: int,
    pad: int,
    *,
    n: int = 512,
    base_words: int | None = None,
    config: MemoryConfig = XMP_CONFIG,
    other_cpu_active: bool = True,
    priority: str = "cyclic",
) -> PaddingResult:
    """Measure the triad under one padding choice.

    ``base_words`` defaults to the smallest multiple of the bank count
    able to hold the sweep (so ``pad`` directly controls the relative
    start banks: array ``k`` starts at bank ``k·pad mod m``).
    """
    if pad < 0:
        raise ValueError("padding must be non-negative")
    m = config.banks
    needed = 1 + (n - 1) * inc
    if base_words is None:
        base_words = ((needed + m - 1) // m) * m
    if base_words % m != 0:
        raise ValueError("base_words must be a multiple of the bank count")
    if base_words < needed:
        raise ValueError("base_words too small for the sweep")
    common = _padded_common(base_words, pad)
    res = run_program(
        triad_program(inc, n=n, common=common),
        other_cpu_active=other_cpu_active,
        config=config,
        priority=priority,
        label_inc=inc,
    )
    return PaddingResult(
        pad=pad,
        idim=base_words + pad,
        cycles=res.cycles,
        start_banks=common.start_banks(m),
    )


def optimize_padding(
    inc: int,
    *,
    pads: Sequence[int] | None = None,
    n: int = 512,
    config: MemoryConfig = XMP_CONFIG,
    other_cpu_active: bool = True,
    priority: str = "cyclic",
) -> list[PaddingResult]:
    """Rank padding candidates for the triad (best first).

    Default candidates: ``0 .. m-1`` pad words — one full period of
    relative start banks.  Ties keep the smaller pad (less memory).
    """
    if pads is None:
        pads = range(config.banks)
    results = [
        evaluate_padding(
            inc,
            pad,
            n=n,
            config=config,
            other_cpu_active=other_cpu_active,
            priority=priority,
        )
        for pad in pads
    ]
    return sorted(results, key=lambda r: (r.cycles, r.pad))
