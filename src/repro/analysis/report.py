"""Report formatting: turn sweep records into the printed tables.

Keeps all number formatting in one place so benchmarks and examples
print identical layouts.  Bandwidths are shown as exact fractions with a
float echo, matching how the paper quotes ``b_eff = 3/2`` etc.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..machine.xmp import TriadResult
from ..viz.tables import format_table
from .sweep import PairSweepRow, SingleSweepRow

__all__ = [
    "fraction_str",
    "single_sweep_report",
    "pair_sweep_report",
    "triad_report",
]


def fraction_str(x: Fraction | None) -> str:
    """``7/6 (1.167)`` style rendering; ``-`` for undetermined."""
    if x is None:
        return "-"
    if x.denominator == 1:
        return str(x.numerator)
    # The float here is a display echo beside the exact fraction.
    return f"{x.numerator}/{x.denominator} ({float(x):.3f})"  # reprolint: disable=EXACT001


def single_sweep_report(rows: Sequence[SingleSweepRow], *, title: str = "") -> str:
    """Theory-vs-simulation table for single streams (bench T-A)."""
    return format_table(
        ["d", "r", "predicted b_eff", "simulated b_eff", "agree"],
        [
            (
                r.d,
                r.return_number,
                fraction_str(r.predicted),
                fraction_str(r.simulated),
                "yes" if r.agrees else "NO",
            )
            for r in rows
        ],
        title=title,
    )


def pair_sweep_report(rows: Sequence[PairSweepRow], *, title: str = "") -> str:
    """Classification-vs-simulation table for stride pairs (bench T-B)."""
    return format_table(
        ["d1", "d2", "regime", "predicted", "sim best", "sim worst", "in bounds"],
        [
            (
                r.d1,
                r.d2,
                r.regime,
                fraction_str(r.classification.predicted_bandwidth),
                fraction_str(r.best),
                fraction_str(r.worst),
                "yes" if r.within_bounds else "NO",
            )
            for r in rows
        ],
        title=title,
    )


def triad_report(rows: Sequence[TriadResult], *, title: str = "") -> str:
    """The Fig. 10 panel as one table (execution time + conflict mix)."""
    return format_table(
        [
            "INC",
            "clocks",
            "clocks/elem",
            "bank",
            "section",
            "simultaneous",
        ],
        [
            (
                r.inc,
                r.cycles,
                f"{r.clocks_per_element:.2f}",
                r.bank_conflicts,
                r.section_conflicts,
                r.simultaneous_conflicts,
            )
            for r in rows
        ],
        title=title,
    )
