"""Parameter sweeps over memory shapes and stride pairs.

Produces plain records (lists of dataclasses) that reports, tests and
benchmarks consume.  Sweeps respect the Appendix isomorphism: the first
stride only ranges over divisors of ``m`` because every other pair is
equivalent to one of those.

All simulation fans out through a :class:`repro.runner.SweepExecutor`
(the process-wide default when none is passed), so isomorphic jobs
deduplicate and repeated sweeps are memoized.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.arithmetic import divisors
from ..core.classify import PairClassification, classify_pair
from ..core.single import predict_single
from ..memory.config import MemoryConfig
from ..runner import SimJob, SweepExecutor, default_executor
from ..sim.pairs import bandwidth_by_offset

__all__ = [
    "SingleSweepRow",
    "PairSweepRow",
    "single_stream_sweep",
    "pair_sweep",
    "canonical_pairs",
]


@dataclass(frozen=True)
class SingleSweepRow:
    """Theory vs simulation for one single-stream stride."""

    m: int
    n_c: int
    d: int
    return_number: int
    predicted: Fraction
    simulated: Fraction

    @property
    def agrees(self) -> bool:
        return self.predicted == self.simulated


@dataclass(frozen=True)
class PairSweepRow:
    """Classification vs simulated start-offset extremes for one pair."""

    m: int
    n_c: int
    d1: int
    d2: int
    classification: PairClassification
    best: Fraction
    worst: Fraction

    @property
    def regime(self) -> str:
        return self.classification.regime.value

    @property
    def within_bounds(self) -> bool:
        c = self.classification
        return (
            c.bandwidth_lower <= self.worst
            and self.best <= c.bandwidth_upper
        )


def canonical_pairs(m: int, *, include_equal: bool = True) -> list[tuple[int, int]]:
    """All pairs ``(d1, d2)`` with ``d1 | m``, ``0 < d1``, ``d1 <= d2 < m``.

    The canonical domain of Theorems 4-7 (plus the equal-stride diagonal
    when ``include_equal``).
    """
    pairs: list[tuple[int, int]] = []
    for d1 in divisors(m):
        if d1 == m:
            continue  # stride ≡ 0 — degenerate single-bank stream
        lo = d1 if include_equal else d1 + 1
        for d2 in range(lo, m):
            pairs.append((d1, d2))
    return pairs


def single_stream_sweep(
    m: int,
    n_c: int,
    *,
    simulate: bool = True,
    executor: SweepExecutor | None = None,
) -> list[SingleSweepRow]:
    """Theory/simulation rows for every stride against one memory."""
    config = MemoryConfig(banks=m, bank_cycle=n_c)
    rows: list[SingleSweepRow] = []
    if simulate:
        ex = executor if executor is not None else default_executor()
        jobs = [
            SimJob.from_specs(config, [(0, d)], cpus=[0]) for d in range(m)
        ]
        outcomes = ex.run_many(jobs)
    else:
        outcomes = [None] * m
    for d, out in zip(range(m), outcomes):
        p = predict_single(m, d, n_c)
        sim = out.bandwidth if out is not None else p.bandwidth
        rows.append(
            SingleSweepRow(
                m=m, n_c=n_c, d=d,
                return_number=p.return_number,
                predicted=p.bandwidth,
                simulated=sim,
            )
        )
    return rows


def pair_sweep(
    m: int,
    n_c: int,
    pairs: list[tuple[int, int]] | None = None,
    *,
    priority: str = "fixed",
    executor: SweepExecutor | None = None,
) -> list[PairSweepRow]:
    """Classify and simulate a set of stride pairs.

    For each pair the simulator sweeps all relative starts and records
    the best and worst steady bandwidths; rows carry the analytical
    classification alongside for comparison.
    """
    config = MemoryConfig(banks=m, bank_cycle=n_c)
    if pairs is None:
        pairs = canonical_pairs(m)
    ex = executor if executor is not None else default_executor()
    rows: list[PairSweepRow] = []
    for d1, d2 in pairs:
        cls = classify_pair(m, n_c, d1, d2, stream1_priority=(priority == "fixed"))
        table = bandwidth_by_offset(config, d1, d2, priority=priority, executor=ex)
        values = list(table.values())
        rows.append(
            PairSweepRow(
                m=m, n_c=n_c, d1=d1, d2=d2,
                classification=cls,
                best=max(values),
                worst=min(values),
            )
        )
    return rows
