"""Simulation-vs-theory cross-validation.

The reproduction's correctness argument: every closed-form claim in the
paper must agree with the cycle-accurate simulator on its domain.  The
functions here sweep that domain and return discrepancy reports (empty
reports == validated); the test-suite and the T-A/T-B/T-C benchmark
tables are thin wrappers around them.

Every sweep batches its jobs through a
:class:`repro.runner.SweepExecutor` (``executor`` argument, defaulting
to the process-wide memoizing executor), so overlapping validation
domains — and reruns from tests, benchmarks and reports — only ever pay
for each canonical job once.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core import theorems
from ..core.arithmetic import access_set
from ..core.single import predict_single
from ..memory.config import MemoryConfig
from ..runner import SimJob, SweepExecutor, jobs_for_offsets
from ..runner.regime import ObservedRegime, observe_pair_regime
from ..sim.pairs import bandwidth_by_offset

__all__ = [
    "Discrepancy",
    "validate_single_stream",
    "validate_conflict_free",
    "validate_unique_barrier",
    "validate_disjoint",
    "validate_sections",
]


@dataclass(frozen=True)
class Discrepancy:
    """One disagreement between prediction and simulation."""

    where: str
    predicted: object
    simulated: object

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.where}: predicted {self.predicted}, simulated {self.simulated}"


_VALIDATION_EXECUTOR: SweepExecutor | None = None


def _executor(executor: SweepExecutor | None) -> SweepExecutor:
    # Validation pits theory against *simulation*, and the process-wide
    # default executor now routes through the theory-backed ``auto``
    # backend — using it here would be circular.  Keep a dedicated
    # executor pinned to the pure fast simulator instead.
    global _VALIDATION_EXECUTOR
    if executor is not None:
        return executor
    if _VALIDATION_EXECUTOR is None:
        _VALIDATION_EXECUTOR = SweepExecutor(backend="fast")
    return _VALIDATION_EXECUTOR


def validate_single_stream(
    m: int,
    n_c: int,
    strides: list[int] | None = None,
    *,
    executor: SweepExecutor | None = None,
) -> list[Discrepancy]:
    """Check ``b_eff = min(1, r/n_c)`` against the simulator.

    Sweeps every stride (default ``0..m-1``) for one memory shape.
    """
    config = MemoryConfig(banks=m, bank_cycle=n_c)
    if strides is None:
        strides = list(range(m))
    ex = _executor(executor)
    jobs = [
        SimJob.from_specs(config, [(0, d)], cpus=[0]) for d in strides
    ]
    issues: list[Discrepancy] = []
    for d, out in zip(strides, ex.run_many(jobs)):
        predicted = predict_single(m, d, n_c).bandwidth
        if out.bandwidth != predicted:
            issues.append(
                Discrepancy(
                    where=f"single m={m} n_c={n_c} d={d}",
                    predicted=predicted,
                    simulated=out.bandwidth,
                )
            )
    return issues


def validate_conflict_free(
    m: int,
    n_c: int,
    pairs: list[tuple[int, int]],
    *,
    executor: SweepExecutor | None = None,
) -> list[Discrepancy]:
    """Check Theorem 3 both ways.

    * When the theorem predicts conflict-freeness, *every* relative start
      must synchronize to ``b_eff = 2`` (the paper's synchronization
      claim).
    * When it predicts the contrary (and access sets cannot be disjoint),
      no start may reach 2.
    """
    config = MemoryConfig(banks=m, bank_cycle=n_c)
    ex = _executor(executor)
    issues: list[Discrepancy] = []
    for d1, d2 in pairs:
        one = predict_single(m, d1, n_c)
        two = predict_single(m, d2, n_c)
        if not (one.conflict_free and two.conflict_free):
            continue  # outside the theorem's hypotheses
        predicted_cf = theorems.conflict_free_possible(m, n_c, d1, d2)
        table = bandwidth_by_offset(config, d1, d2, executor=ex)
        if predicted_cf:
            bad = {o: bw for o, bw in table.items() if bw != 2}
            if bad:
                issues.append(
                    Discrepancy(
                        where=f"T3 m={m} n_c={n_c} d=({d1},{d2})",
                        predicted="b_eff=2 from every start (synchronization)",
                        simulated=f"offsets below 2: {bad}",
                    )
                )
        else:
            disjoint_ok = theorems.disjoint_sets_possible(m, d1, d2)
            if disjoint_ok:
                continue  # starts with b_eff = 2 legitimately exist
            good = [o for o, bw in table.items() if bw == 2]
            if good:
                issues.append(
                    Discrepancy(
                        where=f"T3-converse m={m} n_c={n_c} d=({d1},{d2})",
                        predicted="no conflict-free start exists",
                        simulated=f"offsets reaching 2: {good}",
                    )
                )
    return issues


def validate_unique_barrier(
    m: int,
    n_c: int,
    pairs: list[tuple[int, int]],
    *,
    executor: SweepExecutor | None = None,
) -> list[Discrepancy]:
    """Check Theorems 4+6/7 with eq. (29).

    For pairs the theory declares a *unique* barrier (canonical form:
    ``d1 | m``, ``d2 > d1``), every relative start must reach
    ``b_eff = 1 + d1/d2`` with stream 2 the delayed one.
    """
    config = MemoryConfig(banks=m, bank_cycle=n_c)
    ex = _executor(executor)
    issues: list[Discrepancy] = []
    for d1, d2 in pairs:
        if not (0 < d1 < d2 and m % d1 == 0):
            raise ValueError(f"pair ({d1},{d2}) not in canonical form")
        r1 = predict_single(m, d1, n_c)
        r2 = predict_single(m, d2, n_c)
        if not (r1.return_number >= 2 * n_c and r2.return_number > n_c):
            continue
        if not theorems.unique_barrier(m, n_c, d1, d2, stream1_priority=True):
            continue
        floor = theorems.barrier_bandwidth(d1, d2)
        # eq. (29) is exact on Theorem 6's domain; Theorem 7 cases are
        # start-independent barriers whose bandwidth sits in [floor, 2).
        exact = theorems.unique_barrier_by_modulus(m, n_c, d1, d2)
        z1 = access_set(m, d1, 0)
        # Theorems 6/7 assume overlapping access sets; starts with
        # disjoint sets legitimately reach b_eff = 2 (Theorem 2).
        starts = [
            b2 for b2 in range(m) if z1 & access_set(m, d2, b2)
        ]
        outcomes = ex.run_many(
            jobs_for_offsets(config, d1, d2, starts, priority="fixed")
        )
        for b2, out in zip(starts, outcomes):
            assert out.period is not None
            regime = observe_pair_regime(out.period, out.grants)
            ok_value = (
                out.bandwidth == floor
                if exact
                else floor <= out.bandwidth < 2
            )
            if not ok_value or regime is not ObservedRegime.BARRIER_ON_2:
                expect = (
                    f"barrier-on-2 at {floor}"
                    if exact
                    else f"barrier-on-2 in [{floor}, 2)"
                )
                issues.append(
                    Discrepancy(
                        where=f"T6/7 m={m} n_c={n_c} d=({d1},{d2}) b2={b2}",
                        predicted=expect,
                        simulated=f"{regime.value} at {out.bandwidth}",
                    )
                )
    return issues


def validate_disjoint(
    m: int,
    n_c: int,
    pairs: list[tuple[int, int]],
    *,
    executor: SweepExecutor | None = None,
) -> list[Discrepancy]:
    """Check Theorem 2: the offsets it produces give ``b_eff = 2``."""
    config = MemoryConfig(banks=m, bank_cycle=n_c)
    ex = _executor(executor)
    issues: list[Discrepancy] = []
    for d1, d2 in pairs:
        one = predict_single(m, d1, n_c)
        two = predict_single(m, d2, n_c)
        if not (one.conflict_free and two.conflict_free):
            continue
        if not theorems.disjoint_sets_possible(m, d1, d2):
            continue
        offsets = list(theorems.disjoint_start_offsets(m, d1, d2))
        outcomes = ex.run_many(jobs_for_offsets(config, d1, d2, offsets))
        for off, out in zip(offsets, outcomes):
            if out.bandwidth != 2:
                issues.append(
                    Discrepancy(
                        where=f"T2 m={m} n_c={n_c} d=({d1},{d2}) off={off}",
                        predicted=Fraction(2),
                        simulated=out.bandwidth,
                    )
                )
    return issues


def validate_sections(
    m: int,
    n_c: int,
    s: int,
    pairs: list[tuple[int, int]],
    *,
    executor: SweepExecutor | None = None,
) -> list[Discrepancy]:
    """Check Theorem 9 / eq. (32) sufficiency on a sectioned memory.

    Whenever the analysis promises a conflict-free start offset for two
    same-CPU streams, simulating that exact offset must give
    ``b_eff = 2``.  (The theorems are sufficient conditions, so nothing
    is asserted when they decline.)
    """
    from ..core.sections import sections_conflict_free_start_offset

    config = MemoryConfig(banks=m, bank_cycle=n_c, sections=s)
    ex = _executor(executor)
    checks: list[tuple[int, int, int]] = []
    for d1, d2 in pairs:
        one = predict_single(m, d1, n_c)
        two = predict_single(m, d2, n_c)
        if not (one.conflict_free and two.conflict_free):
            continue
        offset = sections_conflict_free_start_offset(m, n_c, s, d1, d2)
        if offset is None:
            continue
        checks.append((d1, d2, offset))
    jobs = [
        SimJob.from_specs(
            config, [(0, d1), (offset, d2)], cpus=(0, 0), priority="fixed"
        )
        for d1, d2, offset in checks
    ]
    issues: list[Discrepancy] = []
    for (d1, d2, offset), out in zip(checks, ex.run_many(jobs)):
        if out.bandwidth != 2:
            issues.append(
                Discrepancy(
                    where=(
                        f"T9/eq32 m={m} n_c={n_c} s={s} "
                        f"d=({d1},{d2}) offset={offset}"
                    ),
                    predicted=Fraction(2),
                    simulated=out.bandwidth,
                )
            )
    return issues
