"""Command-line interface: ``repro-mem``.

Puts the library's main entry points on the shell for quick exploration:

* ``repro-mem classify``  — analytic regime of a stride pair;
* ``repro-mem simulate``  — exact steady state of arbitrary streams,
  optionally with a Fig. 2-9 style trace;
* ``repro-mem single``    — Theorem 1 / Section III-A for one stride;
* ``repro-mem triad``     — the Fig. 10 experiment;
* ``repro-mem atlas``     — Section V stride guidance for a machine;
* ``repro-mem profile``   — start-space distribution of a stride pair;
* ``repro-mem census``    — regime counts over the whole stride space;
* ``repro-mem duel``      — both CPUs running triads against each other;
* ``repro-mem lint``      — reprolint static invariant analysis.

Examples::

    repro-mem classify -m 12 -c 3 1 7
    repro-mem simulate -m 13 -c 6 --stream 0:1 --stream 0:6 --trace
    repro-mem triad --inc 1-16 --n 256
    repro-mem atlas -m 16 -c 4
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import RetryPolicy

from .analysis.atlas import stride_atlas
from .analysis.report import fraction_str, triad_report
from .core.classify import classify_pair
from .core.single import predict_single
from .core.stream import AccessStream
from .machine.xmp import triad_sweep
from .memory.config import MemoryConfig
from .runner import available_backends
from .sim.engine import simulate_streams
from .viz.ascii_trace import render_result
from .viz.tables import format_table

__all__ = ["main", "build_parser", "serve_main"]


def _parse_range(spec: str) -> list[int]:
    """``"1-16"`` or ``"1,2,5"`` or ``"3"`` to a list of ints."""
    out: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if "-" in part:
            lo, hi = part.split("-", 1)
            out.extend(range(int(lo), int(hi) + 1))
        elif part:
            out.append(int(part))
    if not out:
        raise argparse.ArgumentTypeError(f"empty range spec {spec!r}")
    return out


def _parse_stream(spec: str) -> tuple[int, int]:
    """``"b:d"`` start-bank/stride pair."""
    try:
        b, d = spec.split(":", 1)
        return int(b), int(d)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"stream spec must be START:STRIDE, got {spec!r}"
        ) from exc


def _add_memory_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("-m", "--banks", type=int, default=16,
                   help="bank count m (default 16)")
    p.add_argument("-c", "--bank-cycle", type=int, default=4,
                   help="bank cycle time n_c in clocks (default 4)")
    p.add_argument("-s", "--sections", type=int, default=None,
                   help="section count (default: one per bank)")
    p.add_argument("--consecutive-sections", action="store_true",
                   help="use Cheung & Smith's consecutive bank grouping")


def _add_arbiter_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--arbiter", default=None, metavar="SPEC",
                   help="arbiter policy: 'priority' (default; the "
                        "--priority rule) or 'wfq:W0,W1,...' with one "
                        "integer weight per stream")
    p.add_argument("--regulate", action="append", default=[],
                   metavar="TARGET=RATE/WINDOW",
                   help="token-bucket grant regulator, repeatable; "
                        "TARGET is stream, stream:IDX, bank or bank:IDX "
                        "(e.g. --regulate stream:0=1/4)")


def _add_runner_args(
    p: argparse.ArgumentParser, *, jobs: bool = True
) -> None:
    p.add_argument("--backend", choices=list(available_backends()),
                   default=None,
                   help="simulation backend (default: $REPRO_SIM_BACKEND "
                        "or reference)")
    if jobs:
        p.add_argument("--jobs", "--workers", type=int, default=1,
                       metavar="N", dest="jobs",
                       help="worker processes for the sweep (default 1; "
                            "--workers is an alias)")
        p.add_argument("--shards", type=int, default=None, metavar="N",
                       help="hash-partition the sweep over N shard workers "
                            "exchanging results through a shared store "
                            "(docs/RUNNER.md, Scheduling)")
        p.add_argument("--store", default=None, metavar="DIR",
                       help="content-addressed shared result-store "
                            "directory: probed before execution, populated "
                            "by every scheduler, reusable across sweeps")
    p.add_argument("--retries", type=int, default=None, metavar="N",
                   help="enable fault-tolerant execution: retry each "
                        "failing chunk up to N times, then bisect to "
                        "isolate the poisoned job (docs/RUNNER.md, "
                        "Failure semantics)")
    p.add_argument("--chunk-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="declare a pool chunk lost after SECONDS and "
                        "retry it (implies --retries; pool execution "
                        "only)")
    p.add_argument("--strict-failures", action="store_true",
                   help="exit non-zero if any job still fails after "
                        "retries, instead of reporting FailedOutcome "
                        "stand-ins")


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    """Observability switches for the sweep-shaped subcommands
    (docs/OBSERVABILITY.md documents every emitted name)."""
    p.add_argument("--metrics", nargs="?", const="-", default=None,
                   metavar="PATH",
                   help="collect pipeline metrics; bare --metrics prints a "
                        "text report, PATH writes .json / .prom / text")
    p.add_argument("--trace-spans", action="store_true",
                   help="time the pipeline's phases and print the span tree")


def _retry_policy(args: argparse.Namespace) -> "RetryPolicy | None":
    """Build the executor retry policy from the CLI switches.

    Returns ``None`` (historical fail-fast semantics) unless at least
    one of ``--retries`` / ``--chunk-timeout`` / ``--strict-failures``
    was given.
    """
    retries = getattr(args, "retries", None)
    timeout = getattr(args, "chunk_timeout", None)
    strict = bool(getattr(args, "strict_failures", False))
    if retries is None and timeout is None and not strict:
        return None
    from .runner import RetryPolicy

    return RetryPolicy(
        max_retries=retries if retries is not None else 2,
        chunk_timeout=timeout,
        strict=strict,
    )


def _executor_kwargs(args: argparse.Namespace) -> dict:
    """SweepExecutor construction kwargs from the runner CLI switches
    (worker count, retry policy, shard/store placement)."""
    kwargs: dict = {
        "workers": getattr(args, "jobs", 1),
        "retry": _retry_policy(args),
    }
    shards = getattr(args, "shards", None)
    if shards is not None:
        kwargs["shards"] = shards
    store = getattr(args, "store", None)
    if store is not None:
        kwargs["store_path"] = store
    return kwargs


def _memory(args: argparse.Namespace) -> MemoryConfig:
    return MemoryConfig(
        banks=args.banks,
        bank_cycle=args.bank_cycle,
        sections=args.sections,
        section_mapping=(
            "consecutive" if args.consecutive_sections else "cyclic"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mem",
        description="Interleaved-memory bandwidth analysis "
        "(Oed & Lange 1985 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classify", help="analytic regime of a stride pair")
    _add_memory_args(p)
    p.add_argument("d1", type=int)
    p.add_argument("d2", type=int)

    p = sub.add_parser("single", help="one-stream analysis (Theorem 1)")
    _add_memory_args(p)
    p.add_argument("stride", type=int)

    p = sub.add_parser("simulate", help="exact steady state of streams")
    _add_memory_args(p)
    p.add_argument("--stream", action="append", type=_parse_stream,
                   required=True, metavar="START:STRIDE",
                   help="add a stream (repeatable)")
    p.add_argument("--cpus", type=str, default=None,
                   help="comma list of CPU ids per stream")
    p.add_argument("--priority", default="fixed",
                   help="fixed | cyclic | block-cyclic:N | lru")
    _add_arbiter_args(p)
    p.add_argument("--trace", type=int, nargs="?", const=36, default=None,
                   metavar="CLOCKS", help="render a trace of CLOCKS clocks")
    p.add_argument("--show-priority", action="store_true",
                   help="add the favoured-stream header row (Figs. 8-9)")
    _add_runner_args(p, jobs=False)
    _add_obs_args(p)

    p = sub.add_parser("triad", help="the Fig. 10 X-MP experiment")
    p.add_argument("--inc", type=_parse_range, default=list(range(1, 17)),
                   help="increments, e.g. 1-16 or 2,3,8")
    p.add_argument("--n", type=int, default=1024, help="vector length")
    p.add_argument("--dedicated", action="store_true",
                   help="shut the other CPU off (Fig. 10b)")

    p = sub.add_parser("atlas", help="stride guidance table (Section V)")
    _add_memory_args(p)
    p.add_argument("--strides", type=_parse_range,
                   default=list(range(1, 17)))

    p = sub.add_parser(
        "profile", help="steady bandwidth over every relative start"
    )
    _add_memory_args(p)
    p.add_argument("d1", type=int)
    p.add_argument("d2", type=int)
    p.add_argument("--same-cpu", action="store_true")
    p.add_argument("--priority", default="fixed",
                   help="fixed | cyclic | block-cyclic:N | lru")
    _add_arbiter_args(p)
    _add_runner_args(p)
    _add_obs_args(p)

    p = sub.add_parser(
        "census", help="regime counts over all stride pairs"
    )
    _add_memory_args(p)
    p.add_argument("--observed", action="store_true",
                   help="simulate every canonical pair over every start "
                        "instead of classifying analytically")
    _add_runner_args(p)
    _add_obs_args(p)

    p = sub.add_parser("duel", help="both CPUs run triads concurrently")
    p.add_argument("inc0", type=int)
    p.add_argument("inc1", type=int)
    p.add_argument("--n", type=int, default=512)

    p = sub.add_parser(
        "serve", help="bandwidth-oracle HTTP service (docs/SERVICE.md)"
    )
    _add_memory_args(p)
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8080,
                   help="bind port; 0 picks a free one (default 8080)")
    p.add_argument("--backend", choices=list(available_backends()),
                   default="auto",
                   help="drain-tier backend (default auto)")
    p.add_argument("--jobs", "--workers", type=int, default=1,
                   metavar="N", dest="jobs",
                   help="worker processes for the drain executor")
    p.add_argument("--cache", default=None, metavar="FILE",
                   help="executor on-disk cache file (flushed on shutdown)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="shared result-store directory: preloaded into the "
                        "lookup tier at startup, populated as the service "
                        "simulates")
    p.add_argument("--max-inflight", type=int, default=64, metavar="N",
                   help="load-shed (429 + Retry-After) past N concurrent "
                        "compute requests (default 64)")
    p.add_argument("--precompute", type=_parse_range, default=None,
                   metavar="STRIDES",
                   help="before announcing readiness, simulate every "
                        "stride pair from this range (e.g. 1-16) over "
                        "every relative start on the configured memory "
                        "and load the results into the lookup tier")

    p = sub.add_parser(
        "lint", help="static invariant analysis (reprolint)"
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(p)
    return parser


def _cmd_classify(args: argparse.Namespace) -> int:
    cfg = _memory(args)
    s = cfg.effective_sections if cfg.sectioned else None
    cls = classify_pair(cfg.banks, cfg.bank_cycle, args.d1, args.d2, s=s)
    print(f"memory: {cfg.describe()}")
    print(f"pair:   d1={args.d1}, d2={args.d2}")
    print(f"regime: {cls.regime.value}")
    print(f"predicted b_eff: {fraction_str(cls.predicted_bandwidth)}")
    print(
        f"bounds: [{fraction_str(cls.bandwidth_lower)}, "
        f"{fraction_str(cls.bandwidth_upper)}]"
    )
    if cls.conflict_free_offset is not None:
        print(f"conflict-free relative start: {cls.conflict_free_offset}")
    if cls.delayed_stream is not None:
        print(f"barrier delays stream: {cls.delayed_stream}")
    for note in cls.notes:
        print(f"note: {note}")
    return 0


def _cmd_single(args: argparse.Namespace) -> int:
    cfg = _memory(args)
    p = predict_single(cfg.banks, args.stride, cfg.bank_cycle)
    print(f"memory: {cfg.describe()}")
    print(f"stride {args.stride}: return number r = {p.return_number}")
    print(f"b_eff = {fraction_str(p.bandwidth)}")
    print("conflict free" if p.conflict_free else
          f"self-conflicting: stalls {p.stall_per_period} of every "
          f"{p.period} clocks")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    cfg = _memory(args)
    streams = [
        AccessStream(start_bank=b % cfg.banks, stride=d % cfg.banks,
                     label=str(i + 1))
        for i, (b, d) in enumerate(args.stream)
    ]
    cpus = (
        [int(x) for x in args.cpus.split(",")]
        if args.cpus
        else list(range(len(streams)))
    )
    if args.trace is not None:
        # Trace rendering needs the reference engine's event log, which
        # SimOutcome does not carry; the steady numbers below still ride
        # the runner.  # reprolint: disable-next=LAYER001
        res = simulate_streams(
            cfg, streams, cpus=cpus, priority=args.priority,
            arbiter=args.arbiter, regulate=tuple(args.regulate),
            cycles=args.trace + 8, trace=True,
        )
        print(render_result(res, stop=args.trace,
                            show_sections=cfg.sectioned,
                            show_priority=args.show_priority))
        print()
    from .runner import SimJob, SweepExecutor, run

    job = SimJob.from_specs(
        cfg,
        [(b % cfg.banks, d % cfg.banks) for b, d in args.stream],
        cpus=cpus,
        priority=args.priority,
        arbiter=args.arbiter,
        regulate=args.regulate,
    )
    policy = _retry_policy(args)
    if policy is not None:
        with SweepExecutor(backend=args.backend, retry=policy) as ex:
            out = ex.run_one(job)
        if getattr(out, "failed", False):
            print(f"error: {out.describe()}", file=sys.stderr)
            return 1
    else:
        out = run(job, backend=args.backend)
    line = f"memory: {cfg.describe()}; priority: {args.priority}"
    if args.arbiter is not None:
        line += f"; arbiter: {args.arbiter}"
    if args.regulate:
        line += f"; regulate: {', '.join(args.regulate)}"
    print(line)
    print(f"steady b_eff = {fraction_str(out.bandwidth)} "
          f"(period {out.period} clocks, grants {out.grants})")
    return 0


def _cmd_triad(args: argparse.Namespace) -> int:
    rows = triad_sweep(
        args.inc, other_cpu_active=not args.dedicated, n=args.n
    )
    env = "other CPU off" if args.dedicated else "other CPU streaming d=1"
    print(triad_report(rows, title=f"Triad, n={args.n}, {env}"))
    return 0


def _cmd_atlas(args: argparse.Namespace) -> int:
    cfg = _memory(args)
    rows = stride_atlas(cfg, args.strides)
    print(format_table(
        ["stride", "d", "r", "solo b_eff", "vs d=1", "safe"],
        [
            (
                a.stride, a.distance, a.return_number,
                fraction_str(a.solo_bandwidth),
                a.vs_unit_stride_regime,
                "yes" if a.safe else "no",
            )
            for a in rows
        ],
        title=f"Stride atlas for {cfg.describe()}",
    ))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .runner import SweepExecutor
    from .sim.statespace import start_space_profile
    from .viz.profile import render_histogram, render_profile

    cfg = _memory(args)
    with SweepExecutor(
        backend=args.backend, **_executor_kwargs(args)
    ) as ex:
        prof = start_space_profile(
            cfg, args.d1, args.d2,
            same_cpu=args.same_cpu, priority=args.priority,
            arbiter=args.arbiter, regulate=tuple(args.regulate),
            executor=ex,
        )
    print(render_profile(prof, title=f"start space on {cfg.describe()}"))
    print()
    print(render_histogram(prof))
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    from .analysis.census import regime_census

    cfg = _memory(args)
    if args.observed:
        return _census_observed(cfg, args)
    census = regime_census(
        cfg.banks, cfg.bank_cycle,
        s=cfg.effective_sections if cfg.sectioned else None,
    )
    print(format_table(
        ["regime", "pairs", "share"],
        census.rows(),
        title=(
            f"Regime census for {cfg.describe()}: {census.total} pairs, "
            f"{census.determined} analytically exact"
        ),
    ))
    return 0


def _census_observed(cfg: MemoryConfig, args: argparse.Namespace) -> int:
    """Simulated census plus an exact bandwidth summary.

    Two passes over the same job set through one executor: the census
    sweep simulates every canonical pair over every relative start, the
    summary pass recalls the identical outcomes from the memo — so the
    ``--metrics`` report always shows live cache-hit counters.
    """
    from fractions import Fraction

    from .analysis.census import observed_regime_census
    from .analysis.report import fraction_str
    from .analysis.sweep import canonical_pairs
    from .runner import SweepExecutor, jobs_for_offsets

    # The observed census runs on the plain (unsectioned) shape.
    flat = MemoryConfig(banks=cfg.banks, bank_cycle=cfg.bank_cycle)
    with SweepExecutor(
        backend=args.backend or "auto", **_executor_kwargs(args)
    ) as ex:
        counts = observed_regime_census(
            cfg.banks, cfg.bank_cycle, executor=ex
        )
        total_pairs = sum(counts.values())
        print(format_table(
            ["observed regime", "pairs", "share"],
            [
                (label, n, f"{100 * n / total_pairs:.1f}%")
                for label, n in sorted(
                    counts.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ],
            title=(
                f"Observed regime census for {flat.describe()}: "
                f"{total_pairs} canonical pairs, all relative starts"
            ),
        ))
        # Summary pass: exact bandwidth distribution over the same jobs.
        total = Fraction(0)
        lo: Fraction | None = None
        hi: Fraction | None = None
        n_jobs = 0
        for d1, d2 in canonical_pairs(cfg.banks):
            jobs = jobs_for_offsets(flat, d1, d2, range(cfg.banks))
            for out in ex.run_many(jobs):
                n_jobs += 1
                total += out.bandwidth
                if lo is None or out.bandwidth < lo:
                    lo = out.bandwidth
                if hi is None or out.bandwidth > hi:
                    hi = out.bandwidth
        assert lo is not None and hi is not None
        print()
        print(f"{n_jobs} start-resolved runs: "
              f"b_eff min {fraction_str(lo)}, "
              f"mean {fraction_str(total / n_jobs)}, "
              f"max {fraction_str(hi)}")
        st = ex.stats
        print(f"executor: {st.submitted} submitted, {st.hits} memo hits, "
              f"{st.deduped} deduped, {st.executed} executed")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run_from_namespace

    return run_from_namespace(args)


def _cmd_duel(args: argparse.Namespace) -> int:
    from .machine.experiments import dueling_triads

    r = dueling_triads(args.inc0, args.inc1, n=args.n)
    print(f"dueling triads, n={args.n}:")
    print(f"  CPU 0 (INC={r.inc0}): {r.cycles_cpu0} clocks "
          f"(bank/section/simultaneous conflicts: "
          f"{r.conflicts_cpu0['bank']}/{r.conflicts_cpu0['section']}/"
          f"{r.conflicts_cpu0['simultaneous']})")
    print(f"  CPU 1 (INC={r.inc1}): {r.cycles_cpu1} clocks "
          f"(bank/section/simultaneous conflicts: "
          f"{r.conflicts_cpu1['bank']}/{r.conflicts_cpu1['section']}/"
          f"{r.conflicts_cpu1['simultaneous']})")
    print(f"  imbalance: {r.imbalance:.2f}x")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.app import run_server

    precompute_jobs = None
    if args.precompute is not None:
        from .runner import jobs_for_offsets

        cfg = _memory(args)
        strides = sorted(set(args.precompute))
        precompute_jobs = [
            job
            for d1 in strides
            for d2 in strides
            if d1 <= d2
            for job in jobs_for_offsets(
                cfg, d1, d2, range(cfg.banks)
            )
        ]
    run_server(
        host=args.host,
        port=args.port,
        backend=args.backend,
        store_path=args.store,
        cache_path=args.cache,
        workers=args.jobs,
        max_inflight=args.max_inflight,
        precompute_jobs=precompute_jobs,
    )
    return 0


_COMMANDS = {
    "classify": _cmd_classify,
    "single": _cmd_single,
    "simulate": _cmd_simulate,
    "triad": _cmd_triad,
    "atlas": _cmd_atlas,
    "profile": _cmd_profile,
    "census": _cmd_census,
    "duel": _cmd_duel,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
}


def _emit_metrics(reg: "object", dest: str) -> None:
    """Render the captured registry to stdout or a file by suffix."""
    from pathlib import Path

    from .obs import render_json, render_prometheus, render_text

    if dest == "-":
        print()
        print(render_text(reg))  # type: ignore[arg-type]
        return
    if dest.endswith(".json"):
        text = render_json(reg)  # type: ignore[arg-type]
    elif dest.endswith(".prom"):
        text = render_prometheus(reg)  # type: ignore[arg-type]
    else:
        text = render_text(reg) + "\n"  # type: ignore[arg-type]
    Path(dest).write_text(text)
    print(f"metrics written to {dest}", file=sys.stderr)


def _run_command(args: argparse.Namespace) -> int:
    """Dispatch one subcommand, honouring the observability switches."""
    metrics_dest = getattr(args, "metrics", None)
    want_spans = bool(getattr(args, "trace_spans", False))
    if metrics_dest is None and not want_spans:
        return _COMMANDS[args.command](args)
    from contextlib import ExitStack

    from .obs import capture_metrics, capture_spans, render_spans, span
    from .obs import names as _names

    with ExitStack() as stack:
        reg = (
            stack.enter_context(capture_metrics())
            if metrics_dest is not None
            else None
        )
        rec = stack.enter_context(capture_spans()) if want_spans else None
        with span(_names.SPAN_CLI, command=args.command):
            rc = _COMMANDS[args.command](args)
    if rec is not None:
        print()
        print(render_spans(rec))
    if reg is not None:
        _emit_metrics(reg, metrics_dest)
    return rc


def serve_main(argv: list[str] | None = None) -> int:
    """``repro-serve`` entry: ``repro-mem serve`` with fewer keystrokes."""
    args = sys.argv[1:] if argv is None else argv
    return main(["serve", *args])


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    from .runner import FailedJobError, SweepFailureError

    args = build_parser().parse_args(argv)
    try:
        return _run_command(args)
    except SweepFailureError as exc:
        print(f"error: {exc}", file=sys.stderr)
        for failure in exc.failures:
            print(f"  {failure.describe()}", file=sys.stderr)
        return 1
    except FailedJobError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
