"""Analytical model of interleaved-memory access streams (the paper's core).

Sub-modules
-----------
``arithmetic``
    Modular/number-theoretic primitives (gcd, Bezout, return numbers...).
``stream``
    :class:`~repro.core.stream.AccessStream` — the constant-stride stream.
``single``
    Section III-A: one stream, ``b_eff = min(1, r/n_c)``.
``theorems``
    Theorems 2-7 and eq. (29): two streams, sections = banks.
``sections``
    Theorems 8-9 and eq. (30)-(32): fewer sections than banks.
``classify``
    Regime classification combining all of the above.
``bandwidth``
    ``b_eff`` definitions and closed-form facade.
``isomorphism``
    Appendix: distance-pair equivalence under bank renumbering.
``fortran``
    Equation (33): loop increments to bank distances; safe dimensioning.
"""

from .arithmetic import access_set, return_number
from .bandwidth import (
    effective_bandwidth,
    max_bandwidth,
    predict_pair_bandwidth,
)
from .classify import PairClassification, PairRegime, classify_pair
from .fortran import ArraySpec, loop_distance, safe_leading_dimension
from .isomorphism import are_isomorphic, canonical_pair, canonicalize
from .multistream import (
    capacity_bound,
    equal_stride_bandwidth_bound,
    equal_stride_conflict_free,
    equal_stride_offsets,
    max_conflict_free_streams,
)
from .sections import (
    disjoint_sections_conflict_free,
    path_conflict_free,
    section_of_bank,
    section_set,
    sections_conflict_free_possible,
)
from .single import SingleStreamPrediction, predict_single, single_stream_bandwidth
from .stream import INFINITE, AccessStream
from .theorems import (
    PairGeometry,
    barrier_bandwidth,
    barrier_possible,
    barrier_start_offset,
    conflict_free_possible,
    conflict_free_start_offset,
    disjoint_sets_possible,
    double_conflict_impossible,
    synchronizes,
    unique_barrier,
)

__all__ = [
    "AccessStream",
    "INFINITE",
    "PairClassification",
    "PairGeometry",
    "PairRegime",
    "SingleStreamPrediction",
    "ArraySpec",
    "access_set",
    "are_isomorphic",
    "barrier_bandwidth",
    "barrier_possible",
    "barrier_start_offset",
    "canonical_pair",
    "canonicalize",
    "capacity_bound",
    "classify_pair",
    "conflict_free_possible",
    "conflict_free_start_offset",
    "disjoint_sections_conflict_free",
    "disjoint_sets_possible",
    "double_conflict_impossible",
    "effective_bandwidth",
    "equal_stride_bandwidth_bound",
    "equal_stride_conflict_free",
    "equal_stride_offsets",
    "loop_distance",
    "max_bandwidth",
    "max_conflict_free_streams",
    "path_conflict_free",
    "predict_pair_bandwidth",
    "predict_single",
    "return_number",
    "safe_leading_dimension",
    "section_of_bank",
    "section_set",
    "sections_conflict_free_possible",
    "single_stream_bandwidth",
    "synchronizes",
    "unique_barrier",
]
