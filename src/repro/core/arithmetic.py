"""Modular arithmetic helpers underpinning the analytical model.

The analysis of Oed & Lange (1985) is carried out entirely in the ring of
integers modulo ``m`` (the number of memory banks).  Every theorem in the
paper reduces to statements about greatest common divisors, residues of
arithmetic progressions, and minimal positive solutions of linear
congruences.  This module collects those primitives with exact integer
semantics so the higher-level modules (:mod:`repro.core.theorems`,
:mod:`repro.core.classify`, ...) read like the paper.

All functions operate on plain Python ints (arbitrary precision); nothing
here allocates NumPy arrays, because the quantities involved are tiny
(``m`` is a bank count, typically 8..1024) and exactness matters more than
throughput.  Hot loops in the simulator use their own vectorized paths.
"""

from __future__ import annotations

import math
from functools import lru_cache

__all__ = [
    "gcd",
    "gcd3",
    "egcd",
    "modinv",
    "lcm",
    "divisors",
    "units",
    "units_tuple",
    "is_unit",
    "return_number",
    "access_set",
    "access_sequence",
    "progression_residues",
    "minimal_positive_residue",
    "first_common_index",
    "ceil_div",
]


def gcd(a: int, b: int) -> int:
    """Greatest common divisor of ``a`` and ``b`` (non-negative result).

    Thin wrapper over :func:`math.gcd` kept for a uniform import site; the
    paper's formulas are written ``gcd(m, d)`` and the code mirrors them.
    """
    return math.gcd(a, b)


def gcd3(a: int, b: int, c: int) -> int:
    """``gcd(a, b, c)`` as used in Theorems 2-4 (``f = gcd(m, d1, d2)``)."""
    return math.gcd(math.gcd(a, b), c)


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y == g``.
    The paper invokes "the Euclidean algorithm [9]" to produce the Bezout
    coefficients of equation (6); this is that computation.
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return old_r, old_x, old_y


def modinv(a: int, m: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``m``.

    Raises :class:`ValueError` when ``gcd(a, m) != 1``.  Used by the
    isomorphism normalisation (Appendix) to renumber bank addresses.
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def lcm(a: int, b: int) -> int:
    """Least common multiple; period of the joint state of two streams."""
    return math.lcm(a, b)


def divisors(n: int) -> list[int]:
    """All positive divisors of ``n`` in ascending order.

    The Appendix shows that for the *first* stream only strides with
    ``d | m`` need to be analysed (every other stride is isomorphic to a
    divisor); sweeps therefore iterate ``divisors(m)``.
    """
    if n <= 0:
        raise ValueError("divisors() requires a positive integer")
    small: list[int] = []
    large: list[int] = []
    i = 1
    while i * i <= n:
        if n % i == 0:
            small.append(i)
            if i != n // i:
                large.append(n // i)
        i += 1
    return small + large[::-1]


@lru_cache(maxsize=4096)
def units_tuple(m: int) -> tuple[int, ...]:
    """Cached immutable :func:`units`, for hot canonicalization paths.

    Canonicalizing a job or a distance pair scans the unit group of
    ``Z_m``; sweeps do this for thousands of jobs over a handful of
    moduli, so the group is computed once per ``m`` and shared.
    """
    if m <= 0:
        raise ValueError("units() requires a positive modulus")
    return tuple(k for k in range(1, m + 1) if math.gcd(k, m) == 1)


def units(m: int) -> list[int]:
    """The multiplicative units modulo ``m`` (``k`` with ``gcd(k,m)=1``).

    These are exactly the admissible renumberings of bank addresses in the
    Appendix isomorphism ``d1 (+) d2 = k*d1 (+) k*d2 (mod m)``.
    """
    return list(units_tuple(m))


def is_unit(k: int, m: int) -> bool:
    """True when ``k`` is invertible modulo ``m``."""
    return math.gcd(k % m if m else k, m) == 1


def return_number(m: int, d: int) -> int:
    """Theorem 1: number of accesses before a stream revisits a bank.

    ``r = m / gcd(m, d)``.  A stream with start bank ``b`` and stride ``d``
    visits banks ``(b + k*d) mod m``; the sequence first repeats after
    exactly ``r`` steps.  ``d = 0`` gives ``gcd(m, 0) = m`` hence ``r = 1``
    (the stream hammers a single bank), matching the paper's note that
    ``gcd(m, 0) = m``.
    """
    if m <= 0:
        raise ValueError("bank count m must be positive")
    if d < 0:
        raise ValueError("stride must be taken modulo m and be >= 0")
    return m // math.gcd(m, d)


def access_set(m: int, d: int, b: int = 0) -> frozenset[int]:
    """The access set ``Z`` of a stream: the banks it ever visits.

    ``Z = { (b + k*d) mod m : k >= 0 }`` has exactly ``return_number(m, d)``
    elements; it is the coset ``b + <gcd(m,d)>`` of the subgroup generated
    by ``gcd(m, d)`` in ``Z_m``.
    """
    r = return_number(m, d)
    return frozenset((b + k * d) % m for k in range(r))


def access_sequence(m: int, d: int, b: int, count: int) -> list[int]:
    """First ``count`` bank addresses of a stream (conflict-free order)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [(b + k * d) % m for k in range(count)]


def progression_residues(m: int, step: int) -> frozenset[int]:
    """Residues hit by the progression ``0, step, 2*step, ... (mod m)``.

    Equal to the multiples of ``gcd(m, step)``; the minimal positive
    element is the gcd itself ("with the Euclidean algorithm we find the
    smallest positive value for these differences to be
    ``g = gcd(m, d2 - d1)``").
    """
    g = math.gcd(m, step % m)
    if g == 0:  # step ≡ 0 (mod m): progression stays at 0
        return frozenset({0})
    return frozenset(range(0, m, g))


def minimal_positive_residue(m: int, step: int) -> int:
    """Smallest positive value of ``k*step mod m`` over ``k >= 1``.

    Returns ``m`` when ``step ≡ 0 (mod m)`` — the paper's convention
    ``gcd(m, 0) = m`` so that equal strides give the *largest* possible
    separation (they never drift relative to each other).
    """
    s = step % m
    if s == 0:
        return m
    return math.gcd(m, s)


def first_common_index(
    m: int, d1: int, b1: int, d2: int, b2: int
) -> tuple[int, int] | None:
    """Smallest ``(k1, k2)`` with ``b1 + k1*d1 ≡ b2 + k2*d2 (mod m)``.

    Solves the linear congruence ``k1*d1 - k2*d2 ≡ b2 - b1`` for the
    lexicographically-smallest non-negative pair, scanning ``k1`` in the
    first period.  Returns ``None`` when the access sets are disjoint.
    """
    z2 = access_set(m, d2, b2)
    r1 = return_number(m, d1)
    for k1 in range(r1):
        bank = (b1 + k1 * d1) % m
        if bank in z2:
            # recover the matching k2 within stream 2's first period
            r2 = return_number(m, d2)
            for k2 in range(r2):
                if (b2 + k2 * d2) % m == bank:
                    return k1, k2
    return None


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative ``a`` and positive ``b``.

    Theorem 7 uses ``⌈ m / (d1·d2) ⌉``; Python's ``-(-a // b)`` idiom is
    wrapped for readability.
    """
    if b <= 0:
        raise ValueError("denominator must be positive")
    return -(-a // b)
