"""Effective-bandwidth definitions and closed-form predictions.

Section II defines the two headline quantities:

* maximum bandwidth ``bw = p`` — one data item per port per clock;
* effective bandwidth ``b_eff <= bw`` — the *average* number of data
  items transferred per clock period, equal to ``bw`` only when all ports
  are busy and conflict free.

This module offers the measurement-side definition (grants over clocks)
plus a convenience facade over the closed forms of
:mod:`repro.core.single` and :mod:`repro.core.theorems`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from .classify import classify_pair
from .single import predict_single

__all__ = [
    "max_bandwidth",
    "effective_bandwidth",
    "predict_pair_bandwidth",
    "predicted_or_bounds",
]


def max_bandwidth(ports: int) -> int:
    """``bw = p``: the port count caps the transfer rate (Section II)."""
    if ports <= 0:
        raise ValueError("port count must be positive")
    return ports


def effective_bandwidth(grants: int, clocks: int) -> Fraction:
    """Measured ``b_eff``: total grants divided by elapsed clock periods.

    The simulator reports these two integers for a steady-state cycle so
    the division is exact.
    """
    if clocks <= 0:
        raise ValueError("clock count must be positive")
    if grants < 0:
        raise ValueError("grant count must be non-negative")
    return Fraction(grants, clocks)


def predict_pair_bandwidth(
    m: int,
    n_c: int,
    d1: int,
    d2: int,
    *,
    s: int | None = None,
    stream1_priority: bool = False,
) -> Fraction | None:
    """Closed-form ``b_eff`` for two streams, or ``None`` if start-dependent.

    Exactly the ``predicted_bandwidth`` field of
    :func:`repro.core.classify.classify_pair`; see there for regimes.
    """
    return classify_pair(
        m, n_c, d1, d2, s=s, stream1_priority=stream1_priority
    ).predicted_bandwidth


def predicted_or_bounds(
    m: int,
    n_c: int,
    d1: int,
    d2: int,
    *,
    s: int | None = None,
) -> tuple[Fraction, Fraction]:
    """``(lower, upper)`` bandwidth bracket for a pair of distances.

    Collapses to a point when the theory is exact.
    """
    c = classify_pair(m, n_c, d1, d2, s=s)
    return c.bandwidth_lower, c.bandwidth_upper


def single_stream_prediction_table(
    m: int, n_c: int, strides: Sequence[int]
) -> list[tuple[int, int, Fraction]]:
    """Rows ``(d, r, b_eff)`` for a sweep of single-stream strides.

    Convenience for report/benchmark code; exercises Theorem 1 and the
    Section III-A bandwidth formula.
    """
    rows: list[tuple[int, int, Fraction]] = []
    for d in strides:
        p = predict_single(m, d, n_c)
        rows.append((d % m, p.return_number, p.bandwidth))
    return rows
