"""Regime classification for a pair of access streams.

Pulls the per-theorem predicates together into one decision procedure: for
distances ``(d1, d2)`` against ``(m, n_c)`` (and optionally ``s``
sections), report

* the qualitative regime the pair can reach (conflict free / unique
  barrier / start-dependent barrier / conflicting cycle / self-conflict),
* the exact effective bandwidth where the theory pins it down
  (``2``, ``1 + d1/d2``, ``r/n_c``, ...) and honest ``None`` otherwise
  (the cycle-accurate simulator in :mod:`repro.sim` computes those), and
* the canonicalisation (Appendix) used, so callers can map the
  stream roles back.

The classification concerns *existence over start banks*, matching how
the paper states its theorems; concrete start banks are resolved by the
simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction

from . import sections as sections_mod
from . import theorems
from .isomorphism import CanonicalForm, canonical_pair, canonicalize
from .single import predict_single

__all__ = ["PairRegime", "PairClassification", "classify_pair"]


class PairRegime(enum.Enum):
    """Qualitative steady-state regimes of a two-stream workload."""

    #: One (or both) of the streams violates ``r >= n_c`` and stalls on
    #: its own previous accesses; pair bandwidth is capped by the
    #: self-conflicting stream's ``r/n_c``.
    SELF_CONFLICT = "self-conflict"

    #: ``gcd(m, d1, d2) > 1``: start banks exist with disjoint access
    #: sets, hence ``b_eff = 2`` (Theorem 2).
    DISJOINT_POSSIBLE = "disjoint-possible"

    #: Theorem 3 holds: the pair *synchronizes* into a conflict-free
    #: cycle from any relative start; ``b_eff = 2``.
    CONFLICT_FREE = "conflict-free"

    #: Theorems 4 + 6/7: a barrier-situation is reached from every start;
    #: ``b_eff = 1 + d1/d2`` (eq. 29), stream 2 (canonical order) delayed.
    UNIQUE_BARRIER = "unique-barrier"

    #: Theorem 4 holds but uniqueness does not: depending on relative
    #: starts the pair lands in a barrier, an inverted barrier, or a
    #: double conflict (Figs. 4-6).  Bandwidth is start-dependent.
    BARRIER_START_DEPENDENT = "barrier-start-dependent"

    #: None of the structured regimes: the pair falls into some
    #: conflicting cycle with ``b_eff < 2`` (general case).
    CONFLICTING = "conflicting"


@dataclass(frozen=True, slots=True)
class PairClassification:
    """Outcome of :func:`classify_pair`.

    ``predicted_bandwidth`` is exact when the theory determines it and
    ``None`` when only the simulator can (``BARRIER_START_DEPENDENT``
    without a fixed start, and general ``CONFLICTING`` cycles).
    ``bandwidth_upper``/``bandwidth_lower`` always bracket the truth.
    """

    m: int
    n_c: int
    d1: int
    d2: int
    regime: PairRegime
    predicted_bandwidth: Fraction | None
    bandwidth_lower: Fraction
    bandwidth_upper: Fraction
    canonical: CanonicalForm
    barrier_possible: bool
    double_conflict_impossible: bool
    unique_barrier: bool
    conflict_free_offset: int | None
    notes: tuple[str, ...] = ()

    @property
    def delayed_stream(self) -> int | None:
        """Which *original* stream (1 or 2) a unique barrier delays.

        In canonical order stream 2 is delayed; if canonicalisation
        swapped the streams the original stream 1 is the victim.
        """
        if self.regime is not PairRegime.UNIQUE_BARRIER:
            return None
        return 1 if self.canonical.swapped else 2


def classify_pair(
    m: int,
    n_c: int,
    d1: int,
    d2: int,
    *,
    s: int | None = None,
    stream1_priority: bool = False,
) -> PairClassification:
    """Classify the steady-state regime of two streams (s = m by default).

    Parameters
    ----------
    m, n_c:
        Memory shape: bank count and bank cycle time in clocks.
    d1, d2:
        Distances of the two streams (arbitrary; reduced mod m and
        canonicalised internally).
    s:
        Section count for the same-CPU configuration; ``None`` (or
        ``s == m``) selects the section-free analysis.  When given, the
        conflict-free verdict additionally requires Theorem 9 / eq. (32).
    stream1_priority:
        Whether stream 1 wins simultaneous bank conflicts (fixed priority
        rule); extends Theorem 7 by the eq. (28) equality case.
    """
    d1 %= m
    d2 %= m
    notes: list[str] = []

    one = predict_single(m, d1, n_c)
    two = predict_single(m, d2, n_c)
    if not (one.conflict_free and two.conflict_free):
        notes.append(
            "self-conflicting stream: the paper's two-stream analysis assumes "
            "r1, r2 >= n_c; each stream is capped by its solo bandwidth"
        )
        return PairClassification(
            m=m, n_c=n_c, d1=d1, d2=d2,
            regime=PairRegime.SELF_CONFLICT,
            predicted_bandwidth=None,
            bandwidth_lower=Fraction(0),
            bandwidth_upper=one.bandwidth + two.bandwidth,
            canonical=canonical_pair(m, d1, d2),
            barrier_possible=False,
            double_conflict_impossible=True,
            unique_barrier=False,
            conflict_free_offset=None,
            notes=tuple(notes),
        )

    # Both orientations must be analysed: canonicalizing (d1, d2) probes
    # a barrier that delays stream 2, canonicalizing (d2, d1) one that
    # delays stream 1.  (The group action maps e.g. (3, 1) on m=26 to
    # (1, 9) — no barrier — while the reverse orientation maps to (1, 3),
    # a unique barrier on the *first* physical stream.)
    canon = canonical_pair(m, d1, d2)

    # --- conflict-free verdicts -------------------------------------
    cf_offset = theorems.conflict_free_start_offset(m, n_c, d1, d2)
    conflict_free = cf_offset is not None
    if conflict_free and s is not None and s != m:
        conflict_free = sections_mod.sections_conflict_free_possible(
            m, n_c, s, d1, d2
        )
        cf_offset = sections_mod.sections_conflict_free_start_offset(
            m, n_c, s, d1, d2
        )
        if not conflict_free:
            notes.append(
                "bank-level conflict free (Theorem 3) but section paths "
                "collide (Theorem 9/eq.32 fail)"
            )

    disjoint = theorems.disjoint_sets_possible(m, d1, d2)
    if disjoint and s is not None and s != m:
        # Theorem 8: disjoint banks may still share paths.
        if not sections_mod.disjoint_sections_conflict_free(s, d1, d2):
            disjoint = False
            notes.append(
                "disjoint access sets exist but every start shares section "
                "paths (Theorem 8 fails)"
            )

    if conflict_free:
        return PairClassification(
            m=m, n_c=n_c, d1=d1, d2=d2,
            regime=PairRegime.CONFLICT_FREE,
            predicted_bandwidth=Fraction(2),
            bandwidth_lower=Fraction(2),
            bandwidth_upper=Fraction(2),
            canonical=canon,
            barrier_possible=False,
            double_conflict_impossible=True,
            unique_barrier=False,
            conflict_free_offset=cf_offset,
            notes=tuple(notes),
        )

    # --- barrier analysis, both orientations ------------------------
    def _orientation(
        a: int, b: int, tie_break: bool
    ) -> tuple[CanonicalForm, int, int, bool, bool, bool]:
        """Barrier facts for the orientation where the ``a``-stride
        stream is the (potential) barrier and ``b``-stride the victim."""
        c = canonicalize(m, a, b)
        cd1, cd2 = c.d1 % m, c.d2 % m
        if not (0 < cd1 < cd2 and m % cd1 == 0):
            return c, cd1, cd2, False, False, False
        possible = theorems.barrier_possible(m, n_c, cd1, cd2)
        no_dbl = theorems.double_conflict_impossible(m, n_c, cd1, cd2)
        uniq = possible and theorems.unique_barrier(
            m, n_c, cd1, cd2, stream1_priority=tie_break
        )
        return c, cd1, cd2, possible, no_dbl, uniq

    fwd = _orientation(d1, d2, stream1_priority)
    # In the reverse orientation the theorem's "stream 1" is the physical
    # stream 2, which only wins priority ties if stream 1 does not.
    rev = _orientation(d2, d1, False)
    barrier = fwd[3] or rev[3]
    no_double = fwd[4] if fwd[3] else rev[4] if rev[3] else (fwd[4] or rev[4])
    unique = fwd[5] or rev[5]

    if unique:
        c, cd1, cd2, *_ = fwd if fwd[5] else rev
        bw = theorems.barrier_bandwidth(cd1, cd2)
        used = CanonicalForm(d1=c.d1, d2=c.d2, k=c.k, swapped=not fwd[5])
        # eq. (29) is exact only on Theorem 6's domain; Theorem 7's
        # small moduli wrap before the full (d2-d1)/f delay elapses, so
        # the (still start-independent) bandwidth sits in [eq29, 2).
        by_modulus = theorems.unique_barrier_by_modulus(m, n_c, cd1, cd2)
        predicted = bw if by_modulus else None
        upper = bw if by_modulus else Fraction(2)
        if not by_modulus:
            notes.append(
                "unique barrier via Theorem 7: bandwidth is "
                "start-independent but above eq. (29)'s 1 + d1/d2 "
                "(the small modulus truncates each delay) — simulate "
                "for the exact value"
            )
        if disjoint:
            # Theorems 6/7 assume Z1 ∩ Z2 ≠ ∅; with f > 1 the starts
            # with disjoint access sets still reach b_eff = 2.
            upper = Fraction(2)
            notes.append(
                "unique barrier among overlapping starts; disjoint starts "
                "(Theorem 2) reach b_eff = 2"
            )
        return PairClassification(
            m=m, n_c=n_c, d1=d1, d2=d2,
            regime=PairRegime.UNIQUE_BARRIER,
            predicted_bandwidth=predicted,
            bandwidth_lower=bw,
            bandwidth_upper=upper,
            canonical=used,
            barrier_possible=True,
            double_conflict_impossible=no_double,
            unique_barrier=True,
            conflict_free_offset=None,
            notes=tuple(notes),
        )

    if disjoint:
        # Not synchronizing, but good starts exist: classification keeps
        # the optimistic regime, flags that it is start-dependent.
        notes.append(
            "disjoint start banks give b_eff = 2, other starts may conflict"
        )
        return PairClassification(
            m=m, n_c=n_c, d1=d1, d2=d2,
            regime=PairRegime.DISJOINT_POSSIBLE,
            predicted_bandwidth=None,
            bandwidth_lower=Fraction(0),
            bandwidth_upper=Fraction(2),
            canonical=canon,
            barrier_possible=barrier,
            double_conflict_impossible=no_double,
            unique_barrier=False,
            conflict_free_offset=None,
            notes=tuple(notes),
        )

    if barrier:
        _, cd1, cd2, *_ = fwd if fwd[3] else rev
        bw = theorems.barrier_bandwidth(cd1, cd2)
        notes.append(
            "barrier reachable but not unique: starts decide between "
            "barrier, inverted barrier and double conflict (Figs. 4-6)"
        )
        return PairClassification(
            m=m, n_c=n_c, d1=d1, d2=d2,
            regime=PairRegime.BARRIER_START_DEPENDENT,
            predicted_bandwidth=None,
            bandwidth_lower=Fraction(0),  # double conflicts can dip below 1
            bandwidth_upper=Fraction(2),
            canonical=canon,
            barrier_possible=True,
            double_conflict_impossible=no_double,
            unique_barrier=False,
            conflict_free_offset=None,
            notes=tuple(notes),
        )

    return PairClassification(
        m=m, n_c=n_c, d1=d1, d2=d2,
        regime=PairRegime.CONFLICTING,
        predicted_bandwidth=None,
        bandwidth_lower=Fraction(0),
        bandwidth_upper=Fraction(2),
        canonical=canon,
        barrier_possible=False,
        double_conflict_impossible=no_double,
        unique_barrier=False,
        conflict_free_offset=None,
        notes=tuple(notes),
    )
