"""Fortran array access distances (equation 33 and Section V guidance).

The programmer-facing half of the paper: a ``DO`` loop with increment
``INC`` sweeping the ``(k+1)``-th dimension of a column-major array with
dimension sizes ``J_1, J_2, ...`` produces a memory-access distance of

    ``d = INC · Π_{i <= k} J_i  (mod m)``            (33)

with ``J_0 = 1``.  Section V adds the safe-dimensioning rule: choose array
dimensions relatively prime to the number of banks so that rows and
diagonals stay conflict-benign.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd, prod

__all__ = [
    "loop_distance",
    "ArraySpec",
    "element_offset",
    "row_distance",
    "column_distance",
    "diagonal_distance",
    "safe_leading_dimension",
]


def loop_distance(m: int, inc: int, dims: tuple[int, ...] = (), axis: int = 0) -> int:
    """Equation (33): bank distance of a strided loop over one array axis.

    Parameters
    ----------
    m:
        Number of memory banks.
    inc:
        Fortran ``DO``-loop increment (stride in *elements along the
        axis*).  Negative increments are reduced modulo ``m``.
    dims:
        Dimension sizes ``(J_1, J_2, ...)`` of the array.  For a
        one-dimensional array this may stay empty.
    axis:
        Zero-based axis being swept; ``axis = k`` sweeps the
        ``(k+1)``-th dimension, contributing the product of the first
        ``k`` dimension sizes (``J_0 = 1``).
    """
    if m <= 0:
        raise ValueError("bank count m must be positive")
    if axis < 0 or (dims and axis >= len(dims)) or (not dims and axis > 0):
        raise ValueError(f"axis {axis} out of range for dims {dims}")
    stride_elems = prod(dims[:axis], start=1)
    return (inc * stride_elems) % m


@dataclass(frozen=True, slots=True)
class ArraySpec:
    """A Fortran array placed at a word address (column-major storage).

    ``base`` is the address of the array's first element, so the start
    bank against ``m`` banks is ``base mod m``.  Multi-dimensional arrays
    store column-major: element ``(i_1, ..., i_n)`` (one-based) lives at
    ``base + Σ (i_k - 1) · Π_{j<k} J_j``.
    """

    name: str
    dims: tuple[int, ...]
    base: int = 0

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError("array must have at least one dimension")
        if any(j <= 0 for j in self.dims):
            raise ValueError("dimension sizes must be positive")
        if self.base < 0:
            raise ValueError("base address must be non-negative")

    @property
    def size(self) -> int:
        """Total number of elements (words)."""
        return prod(self.dims)

    def start_bank(self, m: int) -> int:
        """Bank of the first element."""
        return self.base % m

    def offset(self, *indices: int) -> int:
        """Word offset of a one-based multi-index within the array."""
        if len(indices) != len(self.dims):
            raise ValueError(
                f"{self.name} has {len(self.dims)} dims, got {len(indices)} indices"
            )
        off = 0
        stride = 1
        for idx, dim in zip(indices, self.dims):
            if not 1 <= idx <= dim:
                raise IndexError(f"index {idx} outside 1..{dim} in {self.name}")
            off += (idx - 1) * stride
            stride *= dim
        return off

    def address(self, *indices: int) -> int:
        """Absolute word address of an element."""
        return self.base + self.offset(*indices)

    def bank(self, m: int, *indices: int) -> int:
        """Bank of an element against ``m`` banks."""
        return self.address(*indices) % m


def element_offset(dims: tuple[int, ...], indices: tuple[int, ...]) -> int:
    """Functional form of :meth:`ArraySpec.offset` (one-based indices)."""
    return ArraySpec("anon", dims).offset(*indices)


def row_distance(m: int, dims: tuple[int, ...]) -> int:
    """Distance when sweeping a *row* of a 2-D column-major array.

    Consecutive row elements are a full column apart: ``d = J_1 mod m``
    (eq. 33 with ``INC = 1``, ``axis = 1``) — the Section V caution about
    accessing rows in Fortran.
    """
    if len(dims) < 2:
        raise ValueError("row access needs a 2-D (or higher) array")
    return loop_distance(m, 1, dims, axis=1)


def column_distance(m: int, dims: tuple[int, ...]) -> int:
    """Distance when sweeping a column: always ``1 mod m``."""
    if not dims:
        raise ValueError("array must have at least one dimension")
    return 1 % m


def diagonal_distance(m: int, dims: tuple[int, ...]) -> int:
    """Distance when sweeping the main diagonal: ``d = (J_1 + 1) mod m``."""
    if len(dims) < 2:
        raise ValueError("diagonal access needs a 2-D (or higher) array")
    return (dims[0] + 1) % m


def safe_leading_dimension(m: int, j: int) -> int:
    """Smallest ``J >= j`` relatively prime to ``m`` (Section V's rule).

    "A safe method is to choose the dimension of arrays so that they are
    relatively prime to the number of banks": rows then have return
    number ``m`` and maximal conflict slack.
    """
    if m <= 0:
        raise ValueError("bank count m must be positive")
    if j <= 0:
        raise ValueError("requested dimension must be positive")
    jj = j
    while gcd(jj, m) != 1:
        jj += 1
    return jj
