"""Appendix: isomorphism of distance pairs under bank renumbering.

Writing ``d1 ⊕ d2`` for "a stream of distance d1 competes with a stream of
distance d2", the Appendix observes that for any ``k`` with
``gcd(k, m) = 1`` the renumbering ``j -> k·j (mod m)`` of bank addresses
turns the pair into ``k·d1 ⊕ k·d2 (mod m)`` without changing any conflict
behaviour.  Consequently only pairs with ``d1 | m`` need to be analysed:
every pair is isomorphic to one whose first distance divides ``m``.

Paper example (m = 16): ``1 ⊕ 3 ≅ 5 ⊕ 15 ≅ 11 ⊕ 1`` and
``2 ⊕ 3 ≅ 6 ⊕ 9 ≅ 6 ⊕ 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from . import arithmetic

__all__ = [
    "orbit",
    "are_isomorphic",
    "canonicalize",
    "canonical_pair",
    "stabilizer_units",
    "CanonicalForm",
]


def orbit(m: int, d1: int, d2: int) -> frozenset[tuple[int, int]]:
    """All pairs isomorphic to ``(d1, d2)``: ``{(k·d1, k·d2) mod m}`` over
    units ``k``.  Includes the pair itself (``k = 1``)."""
    if m <= 0:
        raise ValueError("bank count m must be positive")
    d1 %= m
    d2 %= m
    return frozenset(
        ((k * d1) % m, (k * d2) % m) for k in arithmetic.units_tuple(m)
    )


def are_isomorphic(
    m: int, pair_a: tuple[int, int], pair_b: tuple[int, int]
) -> bool:
    """Whether two distance pairs are related by a bank renumbering.

    Order matters: ``(d1, d2)`` and ``(d2, d1)`` describe the same physics
    only when the two streams are symmetric (same port kind/priority), so
    this predicate does *not* identify swapped pairs.
    """
    a = (pair_a[0] % m, pair_a[1] % m)
    return a in orbit(m, pair_b[0], pair_b[1])


@dataclass(frozen=True, slots=True)
class CanonicalForm:
    """Canonical representative of an isomorphism class.

    Attributes
    ----------
    d1, d2:
        The representative pair; ``d1 | m`` always holds (``d1`` equals
        ``gcd(m, original d1)``), and ``d2`` is the smallest value
        reachable under the stabiliser of ``d1``.
    k:
        A unit realising the transformation from the original pair.
    swapped:
        True when the two streams were exchanged to obtain ``d1 <= d2``
        ordering preferences.  Only set by :func:`canonical_pair`.
    """

    d1: int
    d2: int
    k: int
    swapped: bool = False


@lru_cache(maxsize=4096)
def stabilizer_units(m: int, d1: int) -> tuple[int, ...]:
    """Units ``k`` with ``k·d1 ≡ gcd(m, d1) (mod m)``, ascending.

    These are exactly the renumberings that place a stream of distance
    ``d1`` into its canonical ``gcd(m, d1) | m`` form; canonicalizing a
    pair (or a multi-stream job whose first stride is ``d1``) only needs
    to scan this coset, not the whole unit group.  Cached per
    ``(m, d1)`` — a sweep reuses one coset for every partner stride.
    """
    if m <= 0:
        raise ValueError("bank count m must be positive")
    d1 %= m
    target = math.gcd(m, d1) % m  # d1 == 0 maps to 0 (gcd = m ≡ 0)
    return tuple(
        k for k in arithmetic.units_tuple(m) if (k * d1) % m == target
    )


@lru_cache(maxsize=65536)
def _canonicalize(m: int, d1: int, d2: int) -> CanonicalForm:
    """Cached core of :func:`canonicalize` (inputs already reduced)."""
    target = math.gcd(m, d1) % m
    best: tuple[int, int] | None = None  # (d2', k)
    for k in stabilizer_units(m, d1):
        cand = (k * d2) % m
        if best is None or cand < best[0]:
            best = (cand, k)
    if best is None:  # unreachable: k exists with k*d1 ≡ gcd(m, d1)
        raise RuntimeError("no unit maps d1 to gcd(m, d1)")
    return CanonicalForm(d1=target if target else m, d2=best[0], k=best[1])


def canonicalize(m: int, d1: int, d2: int) -> CanonicalForm:
    """Normalise ``(d1, d2)`` so the first distance divides ``m``.

    Chooses, among all units ``k`` with ``k·d1 ≡ gcd(m, d1) (mod m)``,
    the one minimising ``k·d2 mod m``; this yields a deterministic class
    representative with ``d1' = gcd(m, d1) | m``, as Theorems 4-7 require.
    Stream order is preserved (no swap).
    """
    if m <= 0:
        raise ValueError("bank count m must be positive")
    return _canonicalize(m, d1 % m, d2 % m)


def canonical_pair(m: int, d1: int, d2: int) -> CanonicalForm:
    """Class representative that also orders the streams.

    Theorems 4-7 are stated for ``d1 | m`` and ``d2 > d1``; this helper
    tries both stream orders and returns the form (possibly ``swapped``)
    whose canonicalisation satisfies ``d2 >= d1``, preferring the unswapped
    one.  Callers must interpret ``swapped=True`` as "the roles of the two
    streams are exchanged" (e.g. which one barriers the other).
    """
    direct = canonicalize(m, d1, d2)
    if direct.d2 >= (direct.d1 % m):
        return direct
    flipped = canonicalize(m, d2, d1)
    return CanonicalForm(d1=flipped.d1, d2=flipped.d2, k=flipped.k, swapped=True)
