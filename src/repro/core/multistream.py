"""k-stream generalisations of the two-stream analysis (extension).

The paper analyses one and two streams in closed form, then observes in
Section IV that with all six ports of the two-CPU X-MP active "access
conflicts are bound to occur since 6·n_c = 24 > 16": the busy shadows of
``p`` concurrent streams need at least ``p·n_c`` bank-clock slots per
clock period, which ``m`` banks cannot carry when ``p·n_c > m``.

This module makes those folklore arguments precise for the tractable
case the machine actually exercises — ``p`` streams of *equal* distance
``d`` (the INC = 1 environment) — and provides the generic counting
bound for unequal distances.

Results (straightforward generalisations of Theorem 3's argument):

* **capacity bound** — ``b_eff <= min(p, m / n_c)`` for any workload of
  ``p`` full-rate streams: each grant holds a bank ``n_c`` clocks and
  only ``m`` bank-clock slots exist per clock.
* **equal distances** — ``p`` streams of distance ``d`` can be mutually
  conflict free iff ``r = m/gcd(m,d) >= p·n_c``; start offsets
  ``b_i = i·n_c·d (mod m)`` realise it (each stream trails the previous
  one by exactly the bank recovery time).
"""

from __future__ import annotations

from fractions import Fraction

from . import arithmetic

__all__ = [
    "capacity_bound",
    "max_conflict_free_streams",
    "equal_stride_conflict_free",
    "equal_stride_offsets",
    "equal_stride_bandwidth_bound",
]


def capacity_bound(m: int, n_c: int, p: int) -> Fraction:
    """Upper bound ``min(p, m/n_c)`` on the effective bandwidth.

    ``p`` is the port count (the paper's ``bw = p`` maximum); ``m/n_c``
    is the service capacity of the banks.  The Section IV remark is
    exactly this bound failing: ``p = 6``, ``m/n_c = 4`` ⇒ at most 4
    transfers per clock, so six full-rate streams must conflict.
    """
    if m <= 0 or n_c <= 0 or p <= 0:
        raise ValueError("m, n_c and p must be positive")
    return min(Fraction(p), Fraction(m, n_c))


def max_conflict_free_streams(m: int, n_c: int, d: int) -> int:
    """Largest ``p`` for which ``p`` distance-``d`` streams can all run
    conflict free: ``p = floor(r / n_c)`` with ``r = m/gcd(m, d)``.

    Each stream occupies an ``n_c``-clock shadow on the ring of ``r``
    banks the distance reaches; ``p`` disjoint shadows fit iff
    ``p·n_c <= r``.
    """
    if n_c <= 0:
        raise ValueError("bank cycle time must be positive")
    r = arithmetic.return_number(m, d % m)
    return r // n_c


def equal_stride_conflict_free(m: int, n_c: int, d: int, p: int) -> bool:
    """Whether ``p`` streams of distance ``d`` can be mutually
    conflict free (``r >= p·n_c``).

    ``p = 2`` recovers Theorem 3's equal-distance corollary
    (``gcd(m', 0) = m' = r >= 2·n_c``).
    """
    if p <= 0:
        raise ValueError("stream count must be positive")
    r = arithmetic.return_number(m, d % m)
    return r >= p * n_c


def equal_stride_offsets(m: int, n_c: int, d: int, p: int) -> list[int] | None:
    """Start banks realising the conflict-free configuration.

    Stream ``i`` starts at ``i·n_c·d (mod m)``: it reaches every bank
    exactly ``n_c`` clocks after its predecessor released it (the same
    construction as eq. (10), chained).  Returns ``None`` when
    :func:`equal_stride_conflict_free` fails.
    """
    if not equal_stride_conflict_free(m, n_c, d, p):
        return None
    d %= m
    return [(i * n_c * d) % m for i in range(p)]


def equal_stride_bandwidth_bound(m: int, n_c: int, d: int, p: int) -> Fraction:
    """Tight steady-state bound for ``p`` equal-distance streams.

    Conflict free (``r >= p·n_c``) gives ``p``; otherwise the ``r``
    banks of the shared ring serve at most ``r/n_c`` grants per clock in
    aggregate (each ring bank can serve one access per ``n_c`` clocks
    and every stream visits each ring bank once per ``r`` requests).
    """
    if p <= 0:
        raise ValueError("stream count must be positive")
    r = arithmetic.return_number(m, d % m)
    if r >= p * n_c:
        return Fraction(p)
    return Fraction(r, n_c)
