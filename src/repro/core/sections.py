"""Theorems 8-9 and equations (30)-(32): fewer sections than banks.

When the memory is divided into ``s < m`` sections (``s | m``, banks
distributed cyclically, ``k = j mod s``) each section exposes a single
access path per CPU, so two ports of one CPU can collide on a *path* even
when their banks are free — a **section conflict**.  To have any chance of
maximum bandwidth there must be at least as many sections as ports
(``2 <= s < m`` for the two-stream analysis).

The results here govern two streams issued by the *same* CPU (the only
configuration in which section conflicts arise in the Fig. 1 topology).
"""

from __future__ import annotations

import math

from . import arithmetic
from .arithmetic import gcd3
from .theorems import conflict_free_possible

__all__ = [
    "section_of_bank",
    "section_set",
    "section_sets_disjoint",
    "disjoint_sections_conflict_free",
    "path_conflict_free",
    "sections_conflict_free_possible",
    "sections_conflict_free_start_offset",
    "validate_section_count",
]


def validate_section_count(m: int, s: int) -> None:
    """Enforce the paper's structural assumptions ``s | m`` and ``s >= 1``.

    Each section then contains ``m/s`` banks.
    """
    if m <= 0:
        raise ValueError("bank count m must be positive")
    if s <= 0:
        raise ValueError("section count s must be positive")
    if s > m:
        raise ValueError(f"section count s={s} may not exceed bank count m={m}")
    if m % s != 0:
        raise ValueError(f"s must divide m (got s={s}, m={m})")


def section_of_bank(j: int, s: int) -> int:
    """Cyclic bank-to-section map ``k = j mod s`` (paper, Section II)."""
    if s <= 0:
        raise ValueError("section count s must be positive")
    return j % s


def section_set(m: int, s: int, d: int, b: int = 0) -> frozenset[int]:
    """All section addresses visited by a stream (its *section set*)."""
    validate_section_count(m, s)
    return frozenset(section_of_bank(j, s) for j in arithmetic.access_set(m, d, b))


def section_sets_disjoint(m: int, s: int, d1: int, b1: int, d2: int, b2: int) -> bool:
    """Concrete disjointness of two streams' section sets.

    Disjoint section sets extend Theorem 2's guarantee to sectioned
    memories: streams that never share a section never share a path.
    """
    return not (section_set(m, s, d1, b1) & section_set(m, s, d2, b2))


# ----------------------------------------------------------------------
# Theorem 8 — disjoint access sets, overlapping section sets
# ----------------------------------------------------------------------
def disjoint_sections_conflict_free(s: int, d1: int, d2: int) -> bool:
    """Theorem 8: with disjoint *access* sets but overlapping *section*
    sets, conflict-free streams are achievable only if
    ``gcd(s, d2 - d1) >= 2``.

    Follows from Theorem 3 with ``m -> s`` and ``n_c -> 1`` (a path is
    held for exactly one clock).
    """
    if s <= 0:
        raise ValueError("section count s must be positive")
    delta = abs(d2 - d1) % s
    return math.gcd(s, delta) >= 2


# ----------------------------------------------------------------------
# Theorem 9 and equation (32) — overlapping access sets
# ----------------------------------------------------------------------
def path_conflict_free(m: int, n_c: int, s: int, d1: int, d2: int) -> bool:
    """Theorem 9: if Theorem 3 holds (bank-level conflict-freeness), the
    sectioned memory is conflict free when ``n_c · d1 ≠ k·s`` for every
    integer ``k`` — i.e. ``s`` does not divide ``n_c · d1``.

    The relative start ``b2 = n_c·d1`` then always lands simultaneous
    requests in different sections (``n_c·d1`` and ``s`` relatively
    prime in the paper's statement; the operative requirement used in its
    proof and in Fig. 7 is ``s ∤ n_c·d1``).
    """
    validate_section_count(m, s)
    if n_c <= 0:
        raise ValueError("bank cycle time n_c must be positive")
    if not conflict_free_possible(m, n_c, d1, d2):
        return False
    return (n_c * (d1 % m)) % s != 0


def sections_conflict_free_possible(
    m: int, n_c: int, s: int, d1: int, d2: int
) -> bool:
    """Combined Theorem 9 / equation (32) test.

    If ``s | n_c·d1`` the offset ``n_c·d1`` would align simultaneous
    requests in one section; conflict-freeness survives if an extra clock
    of slack exists:

        ``gcd(m/f, (d2 - d1)/f) >= 2·(n_c + 1)``               (32)

    with relative start ``(n_c + 1)·d1`` — "an extra clock period is
    needed in order to avoid a section conflict".
    """
    validate_section_count(m, s)
    if path_conflict_free(m, n_c, s, d1, d2):
        return True
    # eq (32): retry with one clock of extra slack, offset (n_c+1)*d1.
    f = gcd3(m, d1 % m, d2 % m)
    if f == 0:
        f = m
    delta = abs((d2 % m) - (d1 % m)) // f
    if math.gcd(m // f, delta) < 2 * (n_c + 1):
        return False
    # the (n_c+1)-offset must itself miss the path collision
    return ((n_c + 1) * (d1 % m)) % s != 0


def sections_conflict_free_start_offset(
    m: int, n_c: int, s: int, d1: int, d2: int
) -> int | None:
    """Concrete conflict-free relative start for a sectioned memory.

    Returns ``n_c·d1`` when Theorem 9 applies, ``(n_c+1)·d1`` when only
    equation (32) applies (Fig. 7's construction), else ``None``.
    """
    validate_section_count(m, s)
    if path_conflict_free(m, n_c, s, d1, d2):
        return (n_c * (d1 % m)) % m
    if sections_conflict_free_possible(m, n_c, s, d1, d2):
        return ((n_c + 1) * (d1 % m)) % m
    return None
