"""Single-stream effective bandwidth (Section III-A).

With one active stream only plain bank conflicts can occur, and they always
occur at the start bank: the first ``r`` requests hit ``r`` distinct banks,
the ``(r+1)``-th returns to the start bank.

* If ``r >= n_c`` the start bank has already recovered: the stream is
  conflict free and ``b_eff = 1`` (the port's maximum).
* If ``r < n_c`` the stream stalls ``n_c - r`` clocks every period:
  ``r`` requests are serviced every ``n_c`` clocks, so ``b_eff = r / n_c``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from . import arithmetic
from .stream import AccessStream

__all__ = ["SingleStreamPrediction", "single_stream_bandwidth", "predict_single"]


@dataclass(frozen=True, slots=True)
class SingleStreamPrediction:
    """Closed-form steady state of one stream against ``m`` banks.

    Attributes
    ----------
    bandwidth:
        Exact effective bandwidth ``b_eff`` as a :class:`~fractions.Fraction`
        (``1`` or ``r/n_c``).
    return_number:
        Theorem 1's ``r``.
    conflict_free:
        ``r >= n_c``; no bank conflicts in steady state.
    stall_per_period:
        Clocks lost per period (``0`` or ``n_c - r``).
    period:
        Length of the steady-state cycle in clocks (``r`` or ``n_c``).
    """

    bandwidth: Fraction
    return_number: int
    conflict_free: bool
    stall_per_period: int
    period: int

    @property
    def bandwidth_float(self) -> float:
        """``b_eff`` as a float, for plotting/benchmark output."""
        return float(self.bandwidth)


def single_stream_bandwidth(m: int, d: int, n_c: int) -> Fraction:
    """``b_eff`` for one infinite stream of stride ``d`` (Section III-A)."""
    prediction = predict_single(m, d, n_c)
    return prediction.bandwidth


def predict_single(m: int, d: int, n_c: int) -> SingleStreamPrediction:
    """Full steady-state description for one stream.

    Parameters mirror the paper: ``m`` banks, stride ``d`` (reduced mod m),
    bank cycle time ``n_c`` clocks.
    """
    if m <= 0:
        raise ValueError("bank count m must be positive")
    if n_c <= 0:
        raise ValueError("bank cycle time n_c must be positive")
    r = arithmetic.return_number(m, d % m)
    if r >= n_c:
        return SingleStreamPrediction(
            bandwidth=Fraction(1),
            return_number=r,
            conflict_free=True,
            stall_per_period=0,
            period=r,
        )
    return SingleStreamPrediction(
        bandwidth=Fraction(r, n_c),
        return_number=r,
        conflict_free=False,
        stall_per_period=n_c - r,
        period=n_c,
    )


def predict_single_stream(stream: AccessStream, m: int, n_c: int) -> SingleStreamPrediction:
    """Overload of :func:`predict_single` taking an :class:`AccessStream`."""
    return predict_single(m, stream.stride, n_c)
