"""Vector access streams — the unit of analysis of the paper.

A vector memory instruction (load or store) activates a *port* which then
issues one access request per clock period to banks

    ``(b + k*d) mod m``,    k = 0, 1, 2, ...

The analytical model (Section III) assumes streams are infinitely long and
characterises each stream by its start bank ``b``, distance ``d``, return
number ``r = m/gcd(m, d)`` (Theorem 1) and access set ``Z``.  The simulator
(:mod:`repro.sim`) additionally supports finite lengths for modelling real
vector instructions (e.g. 64-element Cray chimes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from . import arithmetic

__all__ = ["AccessStream", "INFINITE"]

#: Sentinel length for the paper's "infinitely long" analytical streams.
INFINITE: int = -1


@dataclass(frozen=True, slots=True)
class AccessStream:
    """A constant-stride stream of bank requests.

    Parameters
    ----------
    start_bank:
        Address ``b`` of the first bank referenced, ``0 <= b < m`` once
        bound to a memory with ``m`` banks.  Stored unreduced; use
        :meth:`bound` to normalise against a concrete ``m``.
    stride:
        Distance ``d`` between consecutive requests.  The paper restricts
        ``d`` to ``{0, 1, ..., m-1}`` since only ``d mod m`` matters;
        :meth:`bound` performs that reduction.
    length:
        Number of elements transferred, or :data:`INFINITE` for the
        analytical infinite stream.
    label:
        Cosmetic tag used by the trace renderer ("1", "2", ...).
    """

    start_bank: int
    stride: int
    length: int = INFINITE
    label: str = ""

    def __post_init__(self) -> None:
        if self.start_bank < 0:
            raise ValueError("start_bank must be non-negative")
        if self.stride < 0:
            raise ValueError(
                "stride must be non-negative; reduce negative Fortran "
                "strides modulo m first (see repro.core.fortran)"
            )
        if self.length != INFINITE and self.length < 0:
            raise ValueError("length must be non-negative or INFINITE")

    # ------------------------------------------------------------------
    # Binding to a concrete memory
    # ------------------------------------------------------------------
    @classmethod
    def from_signed(
        cls,
        m: int,
        start_bank: int,
        stride: int,
        *,
        length: int = INFINITE,
        label: str = "",
    ) -> "AccessStream":
        """Build a stream from a possibly *negative* Fortran stride.

        A backwards loop (``DO I = N, 1, -INC``) walks banks with
        distance ``-INC ≡ m - (INC mod m) (mod m)``; only the residue
        matters for conflicts.  ``start_bank`` may also be negative
        (an address below the array base) and is reduced likewise.
        """
        if m <= 0:
            raise ValueError("bank count m must be positive")
        return cls(
            start_bank=start_bank % m,
            stride=stride % m,
            length=length,
            label=label,
        )

    def bound(self, m: int) -> "AccessStream":
        """Return a copy with ``start_bank`` and ``stride`` reduced mod m."""
        if m <= 0:
            raise ValueError("bank count m must be positive")
        return replace(self, start_bank=self.start_bank % m, stride=self.stride % m)

    @property
    def is_infinite(self) -> bool:
        """True for the analytical infinitely-long stream."""
        return self.length == INFINITE

    # ------------------------------------------------------------------
    # Paper quantities (Theorem 1 and Section III definitions)
    # ------------------------------------------------------------------
    def return_number(self, m: int) -> int:
        """``r = m / gcd(m, d)`` — accesses until the start bank recurs."""
        return arithmetic.return_number(m, self.stride % m)

    def access_set(self, m: int) -> frozenset[int]:
        """``Z`` — the set of banks this stream ever touches."""
        return arithmetic.access_set(m, self.stride % m, self.start_bank % m)

    def bank_at(self, k: int, m: int) -> int:
        """Bank address of the ``(k+1)``-th request: ``(b + k*d) mod m``."""
        if k < 0:
            raise ValueError("request index must be non-negative")
        if not self.is_infinite and k >= self.length:
            raise IndexError(f"request {k} beyond stream length {self.length}")
        return (self.start_bank + k * self.stride) % m

    def banks(self, m: int, count: int | None = None) -> list[int]:
        """First ``count`` bank addresses (default: one full period)."""
        if count is None:
            count = self.return_number(m)
            if not self.is_infinite:
                count = min(count, self.length)
        if not self.is_infinite and count > self.length:
            raise IndexError(
                f"requested {count} banks from a stream of length {self.length}"
            )
        return arithmetic.access_sequence(
            m, self.stride % m, self.start_bank % m, count
        )

    def self_conflict_free(self, m: int, n_c: int) -> bool:
        """Section III-A condition ``r >= n_c``.

        When it fails the stream trips over its own previous access at the
        start bank every period and cannot sustain one access per clock.
        """
        if n_c <= 0:
            raise ValueError("bank cycle time n_c must be positive")
        return self.return_number(m) >= n_c

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def with_label(self, label: str) -> "AccessStream":
        """Copy with a new trace label."""
        return replace(self, label=label)

    def shifted(self, delta: int, m: int) -> "AccessStream":
        """Copy with the start bank displaced by ``delta`` (mod m).

        Theorem 3's *synchronization* argument reasons about relative
        start positions; this helper generates them.
        """
        return replace(self, start_bank=(self.start_bank + delta) % m)
