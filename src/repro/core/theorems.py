"""Theorems 2-7: two concurrent access streams, one section per bank.

This module states, as executable predicates, the paper's analytical
results for two streams when access paths are *not* a bottleneck
(``s = m``, so no section conflicts; Section III-B, "Equal Number of
Sections and Banks").  Streams are characterised by their distances
``d1, d2`` and (where relevant) start banks ``b1, b2`` against ``m`` banks
with bank cycle time ``n_c``.

Conventions shared with the paper:

* ``f = gcd(m, d1, d2)`` merely "pushes the relevant banks apart"; all
  conditions are stated on the ``f``-reduced values.
* Theorems 4-7 assume ``d1 | m`` and ``d2 > d1`` — by the Appendix
  isomorphism this loses no generality (see
  :mod:`repro.core.isomorphism`).
* ``gcd(m, 0) = m``: equal distances are the extreme conflict-free case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache

from . import arithmetic
from .arithmetic import ceil_div, gcd3

__all__ = [
    "PairGeometry",
    "disjoint_sets_possible",
    "disjoint_start_offsets",
    "conflict_free_possible",
    "conflict_free_start_offset",
    "synchronizes",
    "barrier_possible",
    "barrier_start_offset",
    "double_conflict_impossible",
    "unique_barrier_by_modulus",
    "unique_barrier_small_m",
    "unique_barrier",
    "barrier_bandwidth",
    "barrier_cycle",
]


# ----------------------------------------------------------------------
# Shared geometry of a stream pair
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class PairGeometry:
    """Derived quantities the theorems keep re-using.

    ``f``-reduced values carry a prime in the paper (``m'``, ``d1'``...);
    here they are ``m_red``, ``d1_red``, ``d2_red``.
    """

    m: int
    n_c: int
    d1: int
    d2: int
    f: int
    m_red: int
    d1_red: int
    d2_red: int
    r1: int
    r2: int

    @classmethod
    def of(cls, m: int, n_c: int, d1: int, d2: int) -> "PairGeometry":
        if m <= 0:
            raise ValueError("bank count m must be positive")
        if n_c <= 0:
            raise ValueError("bank cycle time n_c must be positive")
        return _pair_geometry(m, n_c, d1 % m, d2 % m)

    @property
    def no_self_conflicts(self) -> bool:
        """Section III-B's standing assumption ``r1, r2 >= n_c``."""
        return self.r1 >= self.n_c and self.r2 >= self.n_c

    def require_canonical(self) -> None:
        """Theorems 4-7 preconditions: ``d1 | m`` and ``d2 > d1``.

        Other pairs must first be normalised with
        :func:`repro.core.isomorphism.canonicalize`.
        """
        if self.d1 == 0 or self.m % self.d1 != 0:
            raise ValueError(
                f"theorem requires d1 | m (got d1={self.d1}, m={self.m}); "
                "canonicalize the pair first (repro.core.isomorphism)"
            )
        if self.d2 <= self.d1:
            raise ValueError(
                f"theorem requires d2 > d1 (got d1={self.d1}, d2={self.d2}); "
                "swap or canonicalize the pair first"
            )


@lru_cache(maxsize=65536)
def _pair_geometry(m: int, n_c: int, d1: int, d2: int) -> PairGeometry:
    """Cached :meth:`PairGeometry.of` core (inputs already reduced).

    Every theorem predicate rebuilds the same handful of derived
    quantities; a census touches each canonical pair from several
    predicates, so the geometry is shared across them.
    """
    f = gcd3(m, d1, d2)
    if f == 0:  # both strides ≡ 0
        f = m
    return PairGeometry(
        m=m,
        n_c=n_c,
        d1=d1,
        d2=d2,
        f=f,
        m_red=m // f,
        d1_red=d1 // f,
        d2_red=d2 // f,
        r1=arithmetic.return_number(m, d1),
        r2=arithmetic.return_number(m, d2),
    )


# ----------------------------------------------------------------------
# Theorem 2 — disjoint access sets
# ----------------------------------------------------------------------
def disjoint_sets_possible(m: int, d1: int, d2: int) -> bool:
    """Theorem 2: start banks with ``Z1 ∩ Z2 = ∅`` exist iff
    ``gcd(m, d1, d2) > 1``.

    Disjoint access sets trivially yield ``b_eff = 2`` because the streams
    never meet (when ``s = m``).
    """
    if m <= 0:
        raise ValueError("bank count m must be positive")
    f = gcd3(m, d1 % m, d2 % m)
    if f == 0:  # d1 ≡ d2 ≡ 0: both sets are {b}; disjoint iff b1 != b2
        return m > 1
    return f > 1


def disjoint_start_offsets(m: int, d1: int, d2: int) -> list[int]:
    """Offsets ``b2 - b1`` that make the access sets disjoint.

    From the proof of Theorem 2: with ``f = gcd(m, d1, d2) > 1`` both
    access sets lie inside cosets of ``f·Z_m``; any offset that is *not*
    a multiple of ``f`` (e.g. consecutive start banks, ``b2 = b1 + 1``)
    separates them.  Returns the offsets in ``[0, m)``; empty when
    disjointness is impossible.
    """
    if not disjoint_sets_possible(m, d1, d2):
        return []
    f = gcd3(m, d1 % m, d2 % m)
    if f == 0:
        return [o for o in range(1, m)]
    return [o for o in range(m) if o % f != 0]


# ----------------------------------------------------------------------
# Theorem 3 — conflict-free with overlapping access sets
# ----------------------------------------------------------------------
def conflict_free_possible(m: int, n_c: int, d1: int, d2: int) -> bool:
    """Theorem 3: with non-disjoint access sets, conflict-free start banks
    exist iff ``gcd(m/f, (d2 - d1)/f) >= 2·n_c``.

    The quantity ``g = gcd(m', Δ')`` is the minimal drift between the two
    progressions; ``g >= 2 n_c`` leaves enough slack for an ``n_c``-clock
    bank hold on each side of every meeting point.  The convention
    ``gcd(x, 0) = x`` makes equal distances (``Δ = 0``) conflict free iff
    ``r = m/f >= 2 n_c`` — the paper's note below the theorem.
    """
    g = PairGeometry.of(m, n_c, d1, d2)
    delta = abs(g.d2_red - g.d1_red)
    drift = math.gcd(g.m_red, delta)  # gcd(x, 0) == x covers d1 == d2
    return drift >= 2 * n_c


def conflict_free_start_offset(m: int, n_c: int, d1: int, d2: int) -> int | None:
    """A concrete conflict-free relative start ``b2 - b1`` (mod m).

    Equation (10): when Theorem 3 holds, ``b2 = n_c · d1 (mod m)``
    relative to ``b1 = 0`` is a valid choice — stream 1 arrives at ``b2``
    exactly when the bank becomes available again.  Returns ``None`` when
    Theorem 3 fails.
    """
    if not conflict_free_possible(m, n_c, d1, d2):
        return None
    return (n_c * (d1 % m)) % m


def synchronizes(m: int, n_c: int, d1: int, d2: int) -> bool:
    """Whether the pair *synchronizes* into a conflict-free cycle.

    Paper, below Theorem 3: if (12) is satisfied, the streams fall into a
    conflict-free cycle irrespective of the relative starting positions —
    an improperly-started stream is delayed once and thereafter runs in
    the (10) configuration.  Synchronization is therefore exactly
    Theorem 3's condition (for ``s = m``).
    """
    return conflict_free_possible(m, n_c, d1, d2)


# ----------------------------------------------------------------------
# Theorem 4 — existence of a barrier-situation
# ----------------------------------------------------------------------
def barrier_possible(m: int, n_c: int, d1: int, d2: int) -> bool:
    """Theorem 4: start banks exist that produce a barrier-situation.

    Preconditions (checked): ``r1 >= 2 n_c``, ``r2 > n_c``, ``d1 | m``,
    ``d2 > d1``.  Condition (17)/(20): on the ``f``-reduced pair, with
    ``m'' = m'/d1'``, a barrier arises iff

        ``(d2' - d1') mod m''  ∈  {1, ..., n_c - 1}``

    i.e. stream 2's drift lands inside the ``n_c - 1`` clock shadow of
    stream 1's bank hold.
    """
    g = PairGeometry.of(m, n_c, d1, d2)
    g.require_canonical()
    if not (g.r1 >= 2 * n_c and g.r2 > n_c):
        return False
    m_pp = g.m_red // g.d1_red
    c = (g.d2_red - g.d1_red) % m_pp
    return 1 <= c <= n_c - 1


def barrier_start_offset(m: int, n_c: int, d1: int, d2: int) -> int | None:
    """A concrete relative start producing the barrier-situation.

    Theorem 4's proof places both streams on a common bank (``b1 = b2``,
    i.e. offset ``0``) with stream 2 delayed at the opening simultaneous
    bank conflict — which a priority rule favouring stream 1 guarantees.
    From there the busy-shadow drift of condition (20) keeps stream 2
    the victim.  Returns ``0`` when Theorem 4 holds, ``None`` otherwise.

    Validated exhaustively in the test suite: for every barrier-possible
    canonical pair on a grid of shapes, simulating offset 0 under fixed
    priority lands in the barrier-on-2 regime.
    """
    if barrier_possible(m, n_c, d1, d2):
        return 0
    return None


# ----------------------------------------------------------------------
# Theorem 5 — impossibility of double conflicts
# ----------------------------------------------------------------------
def double_conflict_impossible(m: int, n_c: int, d1: int, d2: int) -> bool:
    """Theorem 5: a double conflict (mutual delays) never occurs if
    ``(n_c - 1)(d2 + d1) < m``.

    The bound counts the banks a delayed stream 1 may still hold behind
    the first conflict point; stream 2 must clear them all before wrapping
    around.
    """
    g = PairGeometry.of(m, n_c, d1, d2)
    g.require_canonical()
    return (n_c - 1) * (g.d2 + g.d1) < m


# ----------------------------------------------------------------------
# Theorems 6 & 7 — uniqueness of the barrier-situation
# ----------------------------------------------------------------------
def unique_barrier_by_modulus(m: int, n_c: int, d1: int, d2: int) -> bool:
    """Theorem 6: if Theorem 4 holds and ``(2 n_c - 1) d2 <= m`` the
    barrier-situation is *unique* — reached with stream 2 delayed,
    whatever the relative start banks.
    """
    g = PairGeometry.of(m, n_c, d1, d2)
    g.require_canonical()
    if not barrier_possible(m, n_c, d1, d2):
        return False
    return (2 * n_c - 1) * g.d2 <= m


def unique_barrier_small_m(
    m: int, n_c: int, d1: int, d2: int, *, stream1_priority: bool = False
) -> bool:
    """Theorem 7: unique barrier for moduli too small for Theorem 6.

    Applies when (17) and (22) hold but not (24).  With
    ``k = ⌈m/(d1·d2)⌉ · d1`` (the first common bank index after a delay of
    stream 1, ``k < 2 n_c``) the barrier is unique iff

        ``k·d2 mod m  <  (k - n_c)·d1 mod m``                    (25)

    With ``stream1_priority=True`` (a fixed or currently-favourable
    cyclic priority rule), equality also suffices — the simultaneous bank
    conflict is resolved against stream 2 (eq. 28).
    """
    g = PairGeometry.of(m, n_c, d1, d2)
    g.require_canonical()
    if not barrier_possible(m, n_c, d1, d2):
        return False
    if not double_conflict_impossible(m, n_c, d1, d2):
        return False
    if g.d1_red == 0 or g.d2_red == 0:
        return False
    k_red = ceil_div(g.m_red, g.d1_red * g.d2_red) * g.d1_red
    if k_red >= 2 * n_c:
        return False
    lhs = (k_red * g.d2_red) % g.m_red
    rhs = ((k_red - n_c) * g.d1_red) % g.m_red
    if lhs < rhs:
        return True
    return stream1_priority and lhs == rhs


def unique_barrier(
    m: int, n_c: int, d1: int, d2: int, *, stream1_priority: bool = False
) -> bool:
    """Combined uniqueness test: Theorem 6, falling back to Theorem 7."""
    if not barrier_possible(m, n_c, d1, d2):
        return False
    if unique_barrier_by_modulus(m, n_c, d1, d2):
        return True
    return unique_barrier_small_m(
        m, n_c, d1, d2, stream1_priority=stream1_priority
    )


# ----------------------------------------------------------------------
# Equation (29) — bandwidth of a unique barrier-situation
# ----------------------------------------------------------------------
def barrier_bandwidth(d1: int, d2: int) -> Fraction:
    """Equation (29): ``b_eff = 1 + d1/d2`` in a unique barrier-situation.

    Derivation: per ``d2/f`` clocks the conflict-free stream makes
    ``d2/f`` accesses and the barriered stream ``d1/f``, giving
    ``(d2 + d1)/f`` grants in ``d2/f`` clocks.
    """
    if d2 <= 0:
        raise ValueError("d2 must be positive in a barrier-situation")
    if d1 < 0:
        raise ValueError("d1 must be non-negative")
    return 1 + Fraction(d1, d2)


def barrier_cycle(m: int, d1: int, d2: int) -> tuple[int, int, int]:
    """Steady-state cycle of a unique barrier (paper, above eq. 29).

    Returns ``(clocks, grants_stream1, grants_stream2)`` for one cycle of
    the barriered steady state: in ``d2/f`` clock periods stream 1 (the
    barrier) is granted ``d2/f`` accesses and stream 2 only ``d1/f``.
    """
    if not 0 < d1 < d2 < m:
        raise ValueError(
            f"barrier cycle needs canonical strides 0 < d1 < d2 < m "
            f"(got d1={d1}, d2={d2}, m={m})"
        )
    f = gcd3(m, d1, d2)
    return (d2 // f, d2 // f, d1 // f)
