"""reprolint: AST-based invariant analysis for the reproduction.

The reproduction's value rests on invariants that runtime tests only
spot-check: theorem verdicts are exact ``Fraction`` arithmetic, sweeps
are deterministic across process-pool fan-out, and every simulation
rides the runner layer so backends stay bit-identical and cacheable.
This package enforces those invariants *statically*, at CI time:

* ``EXACT001`` — no float contamination in the exactness layers;
* ``DET001`` — no unseeded RNGs, wall-clock reads, or set-order leaks;
* ``LAYER001`` — engine primitives only behind ``run(job, backend=...)``;
* ``API001`` — ``__all__`` ↔ ``docs/API.md`` drift;
* ``FROZEN001`` — no ``object.__setattr__`` mutation of frozen results.

Run it with ``repro-mem lint`` or ``python tools/run_reprolint.py``;
suppress intentional exceptions with ``# reprolint: disable=RULE``.
Pure stdlib — importing this package never imports the simulator.
"""

from .framework import (
    Finding,
    LintContext,
    LintReport,
    ProjectRule,
    Rule,
    Suppressions,
    all_rules,
    get_rules,
    lint_file,
    lint_paths,
    lint_source,
    module_name_for_path,
    register_rule,
)
from .report import render_json, render_text, to_json_dict

__all__ = [
    "Finding",
    "LintContext",
    "LintReport",
    "ProjectRule",
    "Rule",
    "Suppressions",
    "all_rules",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_name_for_path",
    "register_rule",
    "render_json",
    "render_text",
    "to_json_dict",
]
