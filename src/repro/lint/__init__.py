"""reprolint: AST-based invariant analysis for the reproduction.

The reproduction's value rests on invariants that runtime tests only
spot-check: theorem verdicts are exact ``Fraction`` arithmetic, sweeps
are deterministic across process-pool fan-out, and every simulation
rides the runner layer so backends stay bit-identical and cacheable.
This package enforces those invariants *statically*, at CI time:

* ``EXACT001`` — no float contamination in the exactness layers;
* ``DET001`` — no unseeded RNGs, wall-clock reads, or set-order leaks;
* ``LAYER001`` — engine primitives only behind ``run(job, backend=...)``;
* ``API001`` — ``__all__`` ↔ ``docs/API.md`` drift;
* ``FROZEN001`` — no ``object.__setattr__`` mutation of frozen results;
* ``OBS001`` — monotonic-clock reads confined to ``repro.obs.trace``;
* ``IMPORT001`` — the layer DAG on the whole-program import graph;
* ``PAR001`` — process-pool workers picklable and global-free;
* ``OBS002`` — instrumentation names from ``repro.obs.names`` only;
* ``DEAD001`` — no dead ``__all__`` surface on leaf modules.

The per-file rules walk one AST at a time; the cross-file rules share a
whole-program :class:`~repro.lint.index.ProjectIndex` built in a single
parse pass.  The driver keeps an incremental cache
(``.reprolint-cache.json``), fans files over a process pool
(``--jobs``), renders SARIF 2.1.0 for code scanning (``--format
sarif``), and can hold new rules against a committed baseline
(``--baseline``).  See ``docs/LINT.md`` for the full rule catalog.

Run it with ``repro-mem lint`` or ``python tools/run_reprolint.py``;
suppress intentional exceptions with ``# reprolint: disable=RULE``.
Pure stdlib — importing this package never imports the simulator.
"""

from .framework import (
    Finding,
    LintCache,
    LintContext,
    LintReport,
    ProjectRule,
    Rule,
    Suppressions,
    all_rules,
    get_rules,
    lint_file,
    lint_paths,
    lint_source,
    load_baseline,
    module_name_for_path,
    register_rule,
    rules_digest,
    write_baseline,
)
from .index import ModuleInfo, ProjectIndex
from .report import render_json, render_text, to_json_dict
from .sarif import render_sarif, to_sarif_dict

__all__ = [
    "Finding",
    "LintCache",
    "LintContext",
    "LintReport",
    "ModuleInfo",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "Suppressions",
    "all_rules",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name_for_path",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "rules_digest",
    "to_json_dict",
    "to_sarif_dict",
    "write_baseline",
]
