"""Command-line front end for reprolint.

Used two ways: ``repro-mem lint ...`` (a subcommand of the main CLI) and
``python tools/run_reprolint.py ...`` (standalone, CI-friendly).  Both
share :func:`add_lint_arguments` / :func:`run_from_namespace` so flags
and behaviour cannot drift.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .framework import (
    CACHE_FILENAME,
    all_rules,
    find_project_root,
    get_rules,
    lint_paths,
)
from .report import render_json, render_text

__all__ = ["add_lint_arguments", "build_parser", "main", "run_from_namespace"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to any argparse parser (shared surface)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: ./src if present, else .)",
    )
    parser.add_argument(
        "--rules", type=str, default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        dest="output_format", help="stdout format (default: text)",
    )
    parser.add_argument(
        "--output", type=str, default=None, metavar="FILE",
        help="also write the report to FILE (JSON, or SARIF when "
             "--format sarif) for CI artifacts",
    )
    parser.add_argument(
        "--root", type=str, default=None, metavar="DIR",
        help="project root for cross-file rules (default: nearest "
             "ancestor with a pyproject.toml)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="lint files over N worker processes (default: 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help=f"disable the incremental cache ({CACHE_FILENAME} "
             "next to pyproject.toml)",
    )
    parser.add_argument(
        "--baseline", type=str, default=None, metavar="FILE",
        help="filter findings against a committed baseline snapshot",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline with the current findings and exit clean",
    )
    parser.add_argument(
        "--report-unused-suppressions", action="store_true",
        help="flag # reprolint: waivers that no longer suppress anything "
             "(SUPPRESS001)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant analyzer for the reproduction "
                    "(exactness, determinism, runner-layer discipline, "
                    "import layering, pool safety)",
    )
    add_lint_arguments(parser)
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.code}  {rule.name}")
        print(f"    {rule.description}")
    return 0


def run_from_namespace(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    if args.list_rules:
        return _list_rules()
    try:
        rules = (
            get_rules([c.strip() for c in args.rules.split(",") if c.strip()])
            if args.rules
            else None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    paths = args.paths
    if not paths:
        paths = ["src"] if Path("src").is_dir() else ["."]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline", file=sys.stderr)
        return 2

    root = Path(args.root) if args.root else find_project_root(paths[0])
    cache: Path | None = None
    if not args.no_cache and root is not None:
        cache = root / CACHE_FILENAME

    try:
        report = lint_paths(
            paths,
            rules=rules,
            root=root,
            jobs=args.jobs,
            cache=cache,
            baseline=args.baseline,
            update_baseline=args.update_baseline,
            report_unused_suppressions=args.report_unused_suppressions,
        )
    except ValueError as exc:  # unreadable baseline
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.output_format == "sarif":
        from .sarif import render_sarif

        rendered = render_sarif(report, rules=rules)
    elif args.output_format == "json":
        rendered = render_json(report)
    else:
        rendered = None

    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            rendered if rendered is not None else render_json(report),
            encoding="utf-8",
        )
    if rendered is not None:
        print(rendered, end="")
    else:
        print(render_text(report))
    return 0 if report.clean else 1


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``tools/run_reprolint.py``)."""
    args = build_parser().parse_args(argv)
    return run_from_namespace(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
