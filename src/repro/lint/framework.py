"""The reprolint core: contexts, rules, suppressions, and the lint driver.

reprolint is a *project-specific* static analyzer: each rule encodes one
invariant the reproduction's correctness argument rests on (exact
``Fraction`` arithmetic, deterministic ordering, runner-layer
discipline, documented public surfaces, frozen result objects).  The
framework is deliberately small — pure stdlib ``ast`` walking, no
third-party dependencies — so it can gate CI anywhere the test suite
runs.

Two rule shapes exist:

* **file rules** (:class:`Rule`) see one parsed module at a time via a
  :class:`LintContext`;
* **project rules** (:class:`ProjectRule`) run once per invocation
  against a whole-program :class:`~repro.lint.index.ProjectIndex`
  (cross-file invariants: the import-layer DAG, process-pool pickle
  safety, metric-name discipline, dead exports, API-doc drift).

The driver has three production features on top:

* an **incremental cache** (``.reprolint-cache.json``): per-file
  findings keyed by source digest + rule-set digest, project findings
  keyed by the index content digest — a warm rerun on an unchanged
  tree re-lints zero files and parses zero ASTs;
* **multiprocess file linting** (``jobs=N``) fanning files over a
  process pool (the workers are module-level callables — PAR001 eats
  its own dogfood);
* a **committed baseline** (``baseline=...``): findings fingerprinted
  as ``(path, rule, message)`` and filtered against a checked-in
  snapshot, so a new rule can land strict without a big-bang cleanup.

Suppression: append ``# reprolint: disable=RULE`` (comma-separate for
several rules, or ``all``) to the offending line, put
``# reprolint: disable-next=RULE`` on the line above it, or
``# reprolint: disable-file=RULE`` anywhere in the file to waive the
whole module.  Several directives may share one line.  Suppressions are
the documented escape hatch for *intentional* exceptions — each one in
this repository carries a justification comment — and the driver can
flag waivers that no longer suppress anything
(``report_unused_suppressions=True``).  Fixture files declare their
lint scope with ``# reprolint: module=dotted.name``.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .index import ProjectIndex

__all__ = [
    "Finding",
    "LintCache",
    "LintContext",
    "LintReport",
    "ProjectRule",
    "Rule",
    "Suppressions",
    "all_rules",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name_for_path",
    "register_rule",
    "rules_digest",
    "write_baseline",
]

#: Pseudo-rule reported when a file cannot be parsed at all.
PARSE_ERROR_CODE = "PARSE001"
#: Pseudo-rule reported for waivers that no longer suppress anything.
UNUSED_SUPPRESSION_CODE = "SUPPRESS001"

#: Path components the driver never lints (bytecode caches, and the
#: lint fixture corpus — intentionally-bad sources that are *data*).
EXCLUDED_PARTS = frozenset({"__pycache__", "fixtures"})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            rule=str(data["rule"]),
            message=str(data["message"]),
        )

    def fingerprint(self) -> tuple[str, str, str]:
        """Baseline identity: stable across line-number drift."""
        return (self.path, self.rule, self.message)


_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-next|disable-file)\s*="
    r"\s*([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)
_MODULE_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*module\s*=\s*([A-Za-z0-9_.]+)"
)


def _iter_comments(source: str) -> Iterator[tuple[int, str]]:
    """Yield ``(lineno, text)`` for every comment token in ``source``.

    Tokenizing (rather than regex-scanning raw lines) keeps directives
    inside *string literals* inert — a test asserting on the text
    ``"# reprolint: disable=X"`` must not waive anything in the test
    file itself.  Sources the tokenizer rejects fall back to scanning
    every line; their suppressions still work and the parse failure is
    reported separately as PARSE001.
    """
    comments: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        comments = list(enumerate(source.splitlines(), start=1))
    return iter(comments)


@dataclass
class _Directive:
    """One parsed ``# reprolint:`` waiver and its usage bookkeeping."""

    lineno: int  #: line the directive sits on
    kind: str  #: disable | disable-next | disable-file
    rules: frozenset[str]
    used: set[str] = field(default_factory=set)

    def applies_to_line(self, line: int) -> bool:
        if self.kind == "disable-file":
            return True
        if self.kind == "disable-next":
            return line == self.lineno + 1
        return line == self.lineno


class Suppressions:
    """Per-line and per-file rule waivers parsed from comments.

    Every directive on a line is honoured (``finditer``, not the first
    match), and each records which of its rule codes actually
    suppressed a finding so stale waivers can be reported.
    """

    def __init__(self, directives: Sequence[_Directive]) -> None:
        self._directives = list(directives)

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        directives: list[_Directive] = []
        for lineno, text in _iter_comments(source):
            for m in _DIRECTIVE.finditer(text):
                rules = frozenset(
                    r.strip() for r in m.group(2).split(",") if r.strip()
                )
                if rules:
                    directives.append(_Directive(lineno, m.group(1), rules))
        return cls(directives)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether a ``rule`` finding on ``line`` is waived.

        Marks **every** matching directive as used, so a finding
        covered by both a line and a file waiver keeps both alive.
        """
        hit = False
        for d in self._directives:
            if not d.applies_to_line(line):
                continue
            if "all" in d.rules:
                d.used.add("all")
                hit = True
            if rule in d.rules:
                d.used.add(rule)
                hit = True
        return hit

    def unused(self, active_codes: Iterable[str]) -> list[tuple[int, str]]:
        """``(line, rule)`` waiver entries that suppressed nothing.

        Only rules in ``active_codes`` are considered — a waiver for a
        rule that did not run this invocation is not (yet) stale.  An
        ``all`` entry is stale only when the full active set ran over
        the line and nothing matched.
        """
        active = set(active_codes)
        out: list[tuple[int, str]] = []
        for d in self._directives:
            for rule in sorted(d.rules):
                if rule == "all":
                    if "all" not in d.used and not d.used:
                        out.append((d.lineno, rule))
                elif rule in active and rule not in d.used:
                    out.append((d.lineno, rule))
        return out

    def directive_lines(self) -> list[int]:
        return [d.lineno for d in self._directives]


def module_name_for_path(path: str | Path) -> str:
    """Best-effort dotted module name for a file path.

    Looks for the last ``repro`` component in the path (the package this
    analyzer is written for) and joins everything from there; returns
    ``""`` when the file is not under a ``repro`` tree.  ``__init__.py``
    maps to its package name.
    """
    parts = list(Path(path).parts)
    if "repro" not in parts:
        return ""
    idx = len(parts) - 1 - parts[::-1].index("repro")
    mod_parts = parts[idx:]
    last = mod_parts[-1]
    if last.endswith(".py"):
        last = last[: -len(".py")]
    if last == "__init__":
        mod_parts = mod_parts[:-1]
    else:
        mod_parts[-1] = last
    return ".".join(mod_parts)


@dataclass
class LintContext:
    """Everything a file rule may consult about one module."""

    path: str
    module: str
    is_package: bool
    source: str
    tree: ast.Module
    suppressions: Suppressions
    #: which top-level tree dir the file lives under (src/tests/tools/
    #: benchmarks/examples) — rules scope themselves by it.
    role: str = "src"

    def in_package(self, *prefixes: str) -> bool:
        """Whether this module lives under any of the dotted prefixes."""
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )


class Rule:
    """Base class for single-file AST rules."""

    code: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, ctx: LintContext) -> bool:
        return True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        )


class ProjectRule:
    """Base class for once-per-invocation, cross-file rules.

    ``check_project`` receives the shared whole-program
    :class:`~repro.lint.index.ProjectIndex` — one parse pass over the
    tree, built once and handed to every project rule.  Findings that
    land on indexed source lines are filtered through that file's
    suppressions by the driver, exactly like file-rule findings.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule | ProjectRule] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    inst = cls()
    if not inst.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if inst.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {inst.code}")
    _REGISTRY[inst.code] = inst
    return cls


def all_rules() -> tuple[Rule | ProjectRule, ...]:
    """Every registered rule, sorted by code."""
    _ensure_builtin_rules()
    return tuple(_REGISTRY[c] for c in sorted(_REGISTRY))


def get_rules(codes: Sequence[str] | None = None) -> tuple[Rule | ProjectRule, ...]:
    """Resolve rule codes to instances (``None`` means every rule)."""
    if codes is None:
        return all_rules()
    _ensure_builtin_rules()
    out = []
    for code in codes:
        try:
            out.append(_REGISTRY[code])
        except KeyError:
            known = ", ".join(sorted(_REGISTRY))
            raise ValueError(f"unknown rule {code!r}; known rules: {known}") from None
    return tuple(out)


def _ensure_builtin_rules() -> None:
    # The rule modules register themselves on import; import them lazily
    # so framework <-> rules stays acyclic.
    from . import apidoc, graph, rules  # noqa: F401


def rules_digest(rules: Sequence[Rule | ProjectRule]) -> str:
    """Cache identity of the active rule set.

    Hashes the active rule codes **and** the source of the lint package
    itself, so editing any rule (or the framework) invalidates every
    cached finding — content-addressed, no version counters to forget.
    """
    h = hashlib.sha256()
    for code in sorted({r.code for r in rules}):
        h.update(code.encode("utf-8"))
        h.update(b"\0")
    pkg = Path(__file__).resolve().parent
    for src in sorted(pkg.glob("*.py")):
        h.update(src.name.encode("utf-8"))
        h.update(b"\0")
        h.update(hashlib.sha256(src.read_bytes()).digest())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Outcome of one lint invocation."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: files actually parsed and linted this run
    files_linted: int = 0
    #: files served straight from the incremental cache
    files_cached: int = 0
    #: findings filtered out by the committed baseline
    baselined: int = 0
    root: str | None = None

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))


@dataclass
class _FileResult:
    """One file's lint outcome, cache-serializable."""

    path: str
    digest: str
    findings: list[Finding]
    #: findings suppressed by directives (kept so a warm run can still
    #: account suppression usage without re-linting)
    waived: list[Finding]

    def as_dict(self) -> dict[str, object]:
        return {
            "digest": self.digest,
            "findings": [f.as_dict() for f in self.findings],
            "waived": [f.as_dict() for f in self.waived],
        }

    @classmethod
    def from_dict(cls, path: str, data: dict) -> "_FileResult":
        return cls(
            path=path,
            digest=str(data["digest"]),
            findings=[Finding.from_dict(d) for d in data["findings"]],
            waived=[Finding.from_dict(d) for d in data["waived"]],
        )


def _derive_module(source: str, path: str | Path) -> tuple[str, bool]:
    """Module identity for a file: ``# reprolint: module=`` directive
    first (fixtures self-describe their scope), path mapping second."""
    for _, text in _iter_comments(source):
        m = _MODULE_DIRECTIVE.search(text)
        if m is not None:
            return m.group(1), str(path).endswith("__init__.py")
    return module_name_for_path(path), str(path).endswith("__init__.py")


def _lint_source_full(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    is_package: bool = False,
    role: str | None = None,
    rules: Sequence[Rule | ProjectRule] | None = None,
    tree: ast.Module | None = None,
) -> tuple[list[Finding], list[Finding]]:
    """File-rule pass returning (kept, waived-by-suppression)."""
    if module is None:
        module, is_package = _derive_module(source, path)
    if role is None:
        from .index import role_for_path

        role = role_for_path(path)
    if tree is None:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule=PARSE_ERROR_CODE,
                    message=f"file does not parse: {exc.msg}",
                )
            ], []
        except ValueError as exc:
            # ast.parse raises bare ValueError on encoding-hostile
            # input (null bytes and friends); report, don't crash.
            return [
                Finding(
                    path=path,
                    line=1,
                    col=0,
                    rule=PARSE_ERROR_CODE,
                    message=f"file does not parse: {exc}",
                )
            ], []
    ctx = LintContext(
        path=path,
        module=module,
        is_package=is_package,
        source=source,
        tree=tree,
        suppressions=Suppressions.parse(source),
        role=role,
    )
    active = rules if rules is not None else all_rules()
    findings: list[Finding] = []
    waived: list[Finding] = []
    for rule in active:
        if not isinstance(rule, Rule) or not rule.applies_to(ctx):
            continue
        for f in rule.check(ctx):
            if ctx.suppressions.is_suppressed(f.rule, f.line):
                waived.append(f)
            else:
                findings.append(f)
    return sorted(findings), sorted(waived)


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    is_package: bool = False,
    rules: Sequence[Rule | ProjectRule] | None = None,
) -> list[Finding]:
    """Lint one module's source text with the file rules."""
    findings, _ = _lint_source_full(
        source,
        path=path,
        module=module,
        is_package=is_package,
        rules=rules,
    )
    return findings


def lint_file(
    path: str | Path,
    *,
    module: str | None = None,
    rules: Sequence[Rule | ProjectRule] | None = None,
) -> list[Finding]:
    """Lint one file on disk with the file rules."""
    p = Path(path)
    return lint_source(
        p.read_text(encoding="utf-8"),
        path=str(p),
        module=module,
        is_package=module is None and p.name == "__init__.py",
        rules=rules,
    )


def _iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                # Relative to the requested dir, so a fixture tree can
                # itself be linted when passed explicitly as a path.
                if not EXCLUDED_PARTS.intersection(sub.relative_to(p).parts):
                    yield sub
        elif p.suffix == ".py":
            yield p


def find_project_root(start: str | Path) -> Path | None:
    """Walk upward from ``start`` to the nearest ``pyproject.toml``."""
    p = Path(start).resolve()
    if p.is_file():
        p = p.parent
    for candidate in (p, *p.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return None


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------
#: Default cache file name, created next to ``pyproject.toml``.
CACHE_FILENAME = ".reprolint-cache.json"
_CACHE_VERSION = 1


class LintCache:
    """Content-addressed findings cache (``.reprolint-cache.json``).

    Per-file entries are keyed by the source digest; the whole cache is
    keyed by the rule-set digest, so editing any rule or the framework
    discards everything.  Project-rule findings are keyed by the index
    content digest and replayed without parsing when the tree is
    unchanged.
    """

    def __init__(self, path: Path, ruleset: str) -> None:
        self.path = path
        self.ruleset = ruleset
        self._files: dict[str, dict] = {}
        self._project: dict | None = None
        self.loaded = False

    @classmethod
    def load(cls, path: str | Path, ruleset: str) -> "LintCache":
        cache = cls(Path(path), ruleset)
        try:
            data = json.loads(cache.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if (
            not isinstance(data, dict)
            or data.get("version") != _CACHE_VERSION
            or data.get("ruleset") != ruleset
        ):
            return cache  # incompatible or stale: start cold
        files = data.get("files")
        project = data.get("project")
        if isinstance(files, dict):
            cache._files = files
            cache.loaded = True
        if isinstance(project, dict):
            cache._project = project
        return cache

    def lookup(self, path: str, digest: str) -> _FileResult | None:
        entry = self._files.get(path)
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            return None
        try:
            return _FileResult.from_dict(path, entry)
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, result: _FileResult) -> None:
        self._files[result.path] = result.as_dict()

    def lookup_project(
        self, digest: str
    ) -> tuple[list[Finding], list[Finding]] | None:
        entry = self._project
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            return None
        try:
            return (
                [Finding.from_dict(d) for d in entry["findings"]],
                [Finding.from_dict(d) for d in entry["waived"]],
            )
        except (KeyError, TypeError, ValueError):
            return None

    def store_project(
        self, digest: str, findings: list[Finding], waived: list[Finding]
    ) -> None:
        self._project = {
            "digest": digest,
            "findings": [f.as_dict() for f in findings],
            "waived": [f.as_dict() for f in waived],
        }

    def write(self) -> None:
        doc = {
            "version": _CACHE_VERSION,
            "ruleset": self.ruleset,
            "files": self._files,
            "project": self._project,
        }
        tmp = self.path.with_suffix(".tmp")
        try:
            tmp.write_text(
                json.dumps(doc, sort_keys=True), encoding="utf-8"
            )
            tmp.replace(self.path)
        except OSError:
            pass  # caching is best-effort; never fail the lint run


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
_BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> dict[tuple[str, str, str], int]:
    """Fingerprint -> count map from a committed baseline file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from None
    out: dict[tuple[str, str, str], int] = {}
    for entry in data.get("entries", []):
        key = (entry["path"], entry["rule"], entry["message"])
        out[key] = out.get(key, 0) + int(entry.get("count", 1))
    return out


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> None:
    """Snapshot current findings as the accepted baseline."""
    counts: dict[tuple[str, str, str], int] = {}
    for f in findings:
        counts[f.fingerprint()] = counts.get(f.fingerprint(), 0) + 1
    doc = {
        "version": _BASELINE_VERSION,
        "tool": "reprolint",
        "entries": [
            {"path": p, "rule": r, "message": m, "count": n}
            for (p, r, m), n in sorted(counts.items())
        ],
    }
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _apply_baseline(
    findings: list[Finding],
    baseline: dict[tuple[str, str, str], int],
) -> tuple[list[Finding], int]:
    budget = dict(baseline)
    kept: list[Finding] = []
    dropped = 0
    for f in findings:
        key = f.fingerprint()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            dropped += 1
        else:
            kept.append(f)
    return kept, dropped


# ----------------------------------------------------------------------
# Multiprocess file linting
# ----------------------------------------------------------------------
def _lint_files_worker(
    payload: tuple[list[str], tuple[str, ...] | None]
) -> list[_FileResult]:
    """Process-pool worker: lint a chunk of files by path.

    Module-level and closure-free on purpose — the exact discipline
    PAR001 enforces on every pool entry point in this repository.
    """
    paths, codes = payload
    rules = get_rules(list(codes)) if codes is not None else None
    out: list[_FileResult] = []
    for path in paths:
        raw = Path(path).read_bytes()
        digest = hashlib.sha256(raw).hexdigest()
        source = raw.decode("utf-8", errors="surrogateescape")
        findings, waived = _lint_source_full(source, path=path, rules=rules)
        out.append(_FileResult(path, digest, findings, waived))
    return out


def _registry_codes(
    rules: Sequence[Rule | ProjectRule],
) -> tuple[str, ...] | None:
    """Rule codes if every active rule is registry-resolvable (the
    requirement for pool workers to rebuild the set by name)."""
    _ensure_builtin_rules()
    codes = []
    for rule in rules:
        if _REGISTRY.get(rule.code) is not rule:
            return None
        codes.append(rule.code)
    return tuple(codes)


def lint_paths(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[Rule | ProjectRule] | None = None,
    root: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    cache: str | Path | None = None,
    baseline: str | Path | None = None,
    update_baseline: bool = False,
    report_unused_suppressions: bool = False,
) -> LintReport:
    """Lint files/directories plus the project-level rules.

    ``root`` anchors project rules (the whole-program index, docs
    drift, the cache default) and is auto-detected as the nearest
    ancestor of the first path holding a ``pyproject.toml``.  Project
    rules are skipped when no root can be determined.

    ``cache`` names the incremental cache file (``None`` disables
    caching — the library default; the CLI passes
    ``<root>/.reprolint-cache.json`` unless ``--no-cache``).
    ``jobs`` > 1 fans un-cached files over a process pool.
    ``baseline`` filters findings against a committed snapshot;
    ``update_baseline`` rewrites that snapshot instead of failing.
    """
    active = rules if rules is not None else all_rules()
    report = LintReport()

    resolved_root: Path | None
    if root is not None:
        resolved_root = Path(root)
    elif paths:
        resolved_root = find_project_root(paths[0])
    else:
        resolved_root = None
    if resolved_root is not None:
        report.root = str(resolved_root)

    ruleset = rules_digest(active)
    lint_cache: LintCache | None = None
    if cache is not None:
        lint_cache = LintCache.load(cache, ruleset)

    # ------------------------------------------------------------------
    # File rules: cache lookup, then serial or pooled linting.
    # ------------------------------------------------------------------
    files = list(_iter_python_files(paths))
    suppressions_by_path: dict[str, Suppressions] = {}
    sources: dict[str, str] = {}
    results: list[_FileResult] = []
    to_lint: list[tuple[str, str, str]] = []  # (path, digest, source)
    for file in files:
        path_str = str(file)
        raw = file.read_bytes()
        digest = hashlib.sha256(raw).hexdigest()
        source = raw.decode("utf-8", errors="surrogateescape")
        sources[path_str] = source
        cached = (
            lint_cache.lookup(path_str, digest)
            if lint_cache is not None
            else None
        )
        if cached is not None:
            results.append(cached)
            report.files_cached += 1
        else:
            to_lint.append((path_str, digest, source))
        report.files_checked += 1

    worker_codes = _registry_codes(active)
    if jobs > 1 and len(to_lint) > 1 and worker_codes is not None:
        from concurrent.futures import ProcessPoolExecutor

        chunk = max(1, -(-len(to_lint) // jobs))
        payloads = [
            ([p for p, _, _ in to_lint[i : i + chunk]], worker_codes)
            for i in range(0, len(to_lint), chunk)
        ]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for batch in pool.map(_lint_files_worker, payloads):
                for result in batch:
                    if progress is not None:
                        progress(result.path)
                    results.append(result)
                    report.files_linted += 1
    else:
        for path_str, digest, source in to_lint:
            if progress is not None:
                progress(path_str)
            findings, waived = _lint_source_full(
                source, path=path_str, rules=active
            )
            results.append(_FileResult(path_str, digest, findings, waived))
            report.files_linted += 1

    for result in results:
        report.findings.extend(result.findings)
        if lint_cache is not None:
            lint_cache.store(result)

    # ------------------------------------------------------------------
    # Project rules: shared whole-program index, digest-keyed cache.
    # ------------------------------------------------------------------
    project_rules = [r for r in active if isinstance(r, ProjectRule)]
    project_findings: list[Finding] = []
    project_waived: list[Finding] = []
    if project_rules and resolved_root is not None:
        from .index import ProjectIndex

        cached_project = None
        index_digest: str | None = None
        if lint_cache is not None:
            index_digest = ProjectIndex.content_digest(resolved_root)
            cached_project = lint_cache.lookup_project(index_digest)
        if cached_project is not None:
            project_findings, project_waived = cached_project
        else:
            index = ProjectIndex.build(resolved_root)
            raw_findings: list[Finding] = []
            for rule in project_rules:
                raw_findings.extend(rule.check_project(index))
            for f in raw_findings:
                info = index.files.get(_relpath(f.path, resolved_root))
                if info is not None and info.suppressions.is_suppressed(
                    f.rule, f.line
                ):
                    project_waived.append(f)
                else:
                    project_findings.append(f)
            if lint_cache is not None:
                lint_cache.store_project(
                    index_digest
                    if index_digest is not None
                    else index.digest,
                    sorted(project_findings),
                    sorted(project_waived),
                )
        report.findings.extend(project_findings)

    # ------------------------------------------------------------------
    # Unused-suppression accounting (replay waived findings so cached
    # files are accounted without re-linting).
    # ------------------------------------------------------------------
    if report_unused_suppressions:
        for path_str, source in sources.items():
            suppressions_by_path[path_str] = Suppressions.parse(source)
        for result in results:
            supp = suppressions_by_path.get(result.path)
            if supp is None:
                continue
            for f in result.waived:
                supp.is_suppressed(f.rule, f.line)
            for f in result.findings:
                supp.is_suppressed(f.rule, f.line)
        for f in project_waived:
            for path_str, supp in suppressions_by_path.items():
                if _same_file(path_str, f.path, resolved_root):
                    supp.is_suppressed(f.rule, f.line)
        active_codes = {r.code for r in active}
        for path_str in sorted(suppressions_by_path):
            supp = suppressions_by_path[path_str]
            for lineno, rule in supp.unused(active_codes):
                report.findings.append(
                    Finding(
                        path=path_str,
                        line=lineno,
                        col=0,
                        rule=UNUSED_SUPPRESSION_CODE,
                        message=(
                            f"suppression of {rule} no longer matches "
                            "any finding; remove the stale waiver"
                        ),
                    )
                )

    # ------------------------------------------------------------------
    # Baseline filtering
    # ------------------------------------------------------------------
    report.findings.sort()
    if update_baseline and baseline is not None:
        write_baseline(baseline, report.findings)
        report.baselined = len(report.findings)
        report.findings = []
    elif baseline is not None and Path(baseline).exists():
        report.findings, report.baselined = _apply_baseline(
            report.findings, load_baseline(baseline)
        )

    if lint_cache is not None:
        lint_cache.write()
    return report


def _relpath(path: str, root: Path) -> str:
    """Root-relative posix key for a finding path (index lookup)."""
    p = Path(path)
    try:
        return p.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return p.as_posix()


def _same_file(linted_path: str, finding_path: str, root: Path | None) -> bool:
    if linted_path == finding_path:
        return True
    if root is None:
        return False
    return _relpath(linted_path, root) == _relpath(finding_path, root)
