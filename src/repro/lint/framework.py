"""The reprolint core: contexts, rules, suppressions, and the lint driver.

reprolint is a *project-specific* static analyzer: each rule encodes one
invariant the reproduction's correctness argument rests on (exact
``Fraction`` arithmetic, deterministic ordering, runner-layer
discipline, documented public surfaces, frozen result objects).  The
framework is deliberately small — pure stdlib ``ast`` walking, no
third-party dependencies — so it can gate CI anywhere the test suite
runs.

Two rule shapes exist:

* **file rules** (:class:`Rule`) see one parsed module at a time via a
  :class:`LintContext`;
* **project rules** (:class:`ProjectRule`) run once per invocation
  against the repository root (cross-file invariants such as the
  ``__all__`` ↔ ``docs/API.md`` drift check).

Suppression: append ``# reprolint: disable=RULE`` (comma-separate for
several rules, or ``all``) to the offending line, put
``# reprolint: disable-next=RULE`` on the line above it, or
``# reprolint: disable-file=RULE`` anywhere in the file to waive the
whole module.  Suppressions are the documented escape hatch for
*intentional* exceptions — each one in this repository carries a
justification comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintContext",
    "LintReport",
    "ProjectRule",
    "Rule",
    "Suppressions",
    "all_rules",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_name_for_path",
    "register_rule",
]

#: Pseudo-rule reported when a file cannot be parsed at all.
PARSE_ERROR_CODE = "PARSE001"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-next|disable-file)\s*="
    r"\s*([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


class Suppressions:
    """Per-line and per-file rule waivers parsed from comments."""

    def __init__(
        self, file_rules: frozenset[str], line_rules: dict[int, frozenset[str]]
    ) -> None:
        self._file = file_rules
        self._lines = line_rules

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        file_rules: set[str] = set()
        line_rules: dict[int, set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            m = _DIRECTIVE.search(text)
            if m is None:
                continue
            kind = m.group(1)
            rules = {r.strip() for r in m.group(2).split(",") if r.strip()}
            if kind == "disable-file":
                file_rules |= rules
            elif kind == "disable-next":
                line_rules.setdefault(lineno + 1, set()).update(rules)
            else:
                line_rules.setdefault(lineno, set()).update(rules)
        return cls(
            frozenset(file_rules),
            {k: frozenset(v) for k, v in line_rules.items()},
        )

    def is_suppressed(self, rule: str, line: int) -> bool:
        if "all" in self._file or rule in self._file:
            return True
        here = self._lines.get(line)
        return here is not None and ("all" in here or rule in here)


def module_name_for_path(path: str | Path) -> str:
    """Best-effort dotted module name for a file path.

    Looks for the last ``repro`` component in the path (the package this
    analyzer is written for) and joins everything from there; returns
    ``""`` when the file is not under a ``repro`` tree.  ``__init__.py``
    maps to its package name.
    """
    parts = list(Path(path).parts)
    if "repro" not in parts:
        return ""
    idx = len(parts) - 1 - parts[::-1].index("repro")
    mod_parts = parts[idx:]
    last = mod_parts[-1]
    if last.endswith(".py"):
        last = last[: -len(".py")]
    if last == "__init__":
        mod_parts = mod_parts[:-1]
    else:
        mod_parts[-1] = last
    return ".".join(mod_parts)


@dataclass
class LintContext:
    """Everything a file rule may consult about one module."""

    path: str
    module: str
    is_package: bool
    source: str
    tree: ast.Module
    suppressions: Suppressions

    def in_package(self, *prefixes: str) -> bool:
        """Whether this module lives under any of the dotted prefixes."""
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )


class Rule:
    """Base class for single-file AST rules."""

    code: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, ctx: LintContext) -> bool:
        return True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        )


class ProjectRule:
    """Base class for once-per-invocation, cross-file rules."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check_project(self, root: Path) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule | ProjectRule] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    inst = cls()
    if not inst.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if inst.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {inst.code}")
    _REGISTRY[inst.code] = inst
    return cls


def all_rules() -> tuple[Rule | ProjectRule, ...]:
    """Every registered rule, sorted by code."""
    _ensure_builtin_rules()
    return tuple(_REGISTRY[c] for c in sorted(_REGISTRY))


def get_rules(codes: Sequence[str] | None = None) -> tuple[Rule | ProjectRule, ...]:
    """Resolve rule codes to instances (``None`` means every rule)."""
    if codes is None:
        return all_rules()
    _ensure_builtin_rules()
    out = []
    for code in codes:
        try:
            out.append(_REGISTRY[code])
        except KeyError:
            known = ", ".join(sorted(_REGISTRY))
            raise ValueError(f"unknown rule {code!r}; known rules: {known}") from None
    return tuple(out)


def _ensure_builtin_rules() -> None:
    # The rule modules register themselves on import; import them lazily
    # so framework <-> rules stays acyclic.
    from . import apidoc, rules  # noqa: F401


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Outcome of one lint invocation."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    root: str | None = None

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    is_package: bool = False,
    rules: Sequence[Rule | ProjectRule] | None = None,
) -> list[Finding]:
    """Lint one module's source text with the file rules."""
    if module is None:
        module = module_name_for_path(path)
        is_package = str(path).endswith("__init__.py")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = LintContext(
        path=path,
        module=module,
        is_package=is_package,
        source=source,
        tree=tree,
        suppressions=Suppressions.parse(source),
    )
    active = rules if rules is not None else all_rules()
    findings: list[Finding] = []
    for rule in active:
        if not isinstance(rule, Rule) or not rule.applies_to(ctx):
            continue
        for f in rule.check(ctx):
            if not ctx.suppressions.is_suppressed(f.rule, f.line):
                findings.append(f)
    return sorted(findings)


def lint_file(
    path: str | Path,
    *,
    module: str | None = None,
    rules: Sequence[Rule | ProjectRule] | None = None,
) -> list[Finding]:
    """Lint one file on disk with the file rules."""
    p = Path(path)
    return lint_source(
        p.read_text(encoding="utf-8"),
        path=str(p),
        module=module,
        is_package=p.name == "__init__.py",
        rules=rules,
    )


def _iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if "__pycache__" not in sub.parts:
                    yield sub
        elif p.suffix == ".py":
            yield p


def find_project_root(start: str | Path) -> Path | None:
    """Walk upward from ``start`` to the nearest ``pyproject.toml``."""
    p = Path(start).resolve()
    if p.is_file():
        p = p.parent
    for candidate in (p, *p.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return None


def lint_paths(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[Rule | ProjectRule] | None = None,
    root: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> LintReport:
    """Lint files/directories plus the project-level rules.

    ``root`` anchors project rules (``docs/API.md`` drift etc.); when not
    given it is auto-detected as the nearest ancestor of the first path
    holding a ``pyproject.toml``.  Project rules are skipped when no
    root can be determined.
    """
    active = rules if rules is not None else all_rules()
    report = LintReport()
    for file in _iter_python_files(paths):
        if progress is not None:
            progress(str(file))
        report.findings.extend(lint_file(file, rules=active))
        report.files_checked += 1
    resolved_root: Path | None
    if root is not None:
        resolved_root = Path(root)
    elif paths:
        resolved_root = find_project_root(paths[0])
    else:
        resolved_root = None
    if resolved_root is not None:
        report.root = str(resolved_root)
        for rule in active:
            if isinstance(rule, ProjectRule):
                report.findings.extend(rule.check_project(resolved_root))
    report.findings.sort()
    return report
