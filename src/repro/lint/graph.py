"""IMPORT001: the repository layer DAG, enforced on the import graph.

The reproduction's module architecture is a strict layering::

    obs, lint          (rank 0 — leaves: import no other repro package)
    core               (rank 1 — exact arithmetic, no engine knowledge)
    memory             (rank 2 — bank models over core primitives)
    runner             (rank 3 — orchestration; sim only via backends)
    sim, machine,      (rank 4 — engines, analyses, generators)
    analysis, skewing,
    stochastic, viz
    serve              (rank 5 — the HTTP service over the runner)
    cli                (rank 6 — may import anything)

A module may import downward (strictly smaller rank) or sideways
(same rank, including its own package); importing *upward* inverts the
dependency arrow and is rejected.  The handful of sanctioned inversions
— the runner's engine-primitive boundary, mirror of LAYER001's
``BLESSED`` set — are listed in :data:`BLESSED_EDGES`.

Cycles are checked on the *eager* subgraph only: a function-scoped or
``TYPE_CHECKING``-guarded import does not execute at import time, so it
cannot deadlock module initialisation — moving an import into the
function that needs it is the sanctioned way to break a cycle, and the
layer check still polices the edge's direction.
"""

from __future__ import annotations

from typing import Iterator

from .framework import Finding, ProjectRule, register_rule
from .index import ImportEdge, ModuleInfo, ProjectIndex

__all__ = ["BLESSED_EDGES", "LAYER_RANKS", "ImportGraphRule", "layer_rank"]

#: Rank of each top-level ``repro`` subpackage; smaller = lower layer.
LAYER_RANKS: dict[str, int] = {
    "obs": 0,
    "lint": 0,
    "core": 1,
    "memory": 2,
    "runner": 3,
    "sim": 4,
    "machine": 4,
    "analysis": 4,
    "skewing": 4,
    "stochastic": 4,
    "viz": 4,
    "serve": 5,
    "cli": 6,
    "": 6,  # the repro root package re-exports the public surface
}

#: Rank assumed for a subpackage not listed above: new packages default
#: to the engine tier — they may use everything below the runner but
#: must be added here explicitly before the runner may import them.
DEFAULT_RANK = 4

#: Packages that must import no other repro package at all (rank-0
#: leaves): observability and the linter itself stay embeddable in any
#: context — including each other's absence.
LEAF_PACKAGES = frozenset({"obs", "lint"})

#: Sanctioned upward edges (importer module, imported module): the
#: engine-primitive boundary the runner backends own (mirror of
#: LAYER001's ``BLESSED`` module set), plus the spec-validation
#: boundary — ``SimJob`` and the analytic tier consult the sim layer's
#: priority/arbiter grammar (function-scoped imports, so the eager
#: graph stays acyclic) to reject malformed specs at construction and
#: to keep closed forms honest about regulated jobs.
BLESSED_EDGES = frozenset(
    {
        ("repro.runner.analytic", "repro.sim.arbiter"),
        ("repro.runner.backends", "repro.sim.engine"),
        ("repro.runner.fastsim", "repro.sim.arbiter"),
        ("repro.runner.fastsim", "repro.sim.priority"),
        ("repro.runner.job", "repro.sim.arbiter"),
        ("repro.runner.job", "repro.sim.engine"),
        ("repro.runner.job", "repro.sim.priority"),
        ("repro.runner.resilience", "repro.sim.engine"),
    }
)


def layer_rank(package: str) -> int:
    """Layer rank of a top-level repro subpackage name."""
    return LAYER_RANKS.get(package, DEFAULT_RANK)


def _top_package(module: str) -> str:
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else ""


@register_rule
class ImportGraphRule(ProjectRule):
    """Layer DAG over the whole-program import graph."""

    code = "IMPORT001"
    name = "import-layer-dag"
    description = (
        "repro packages import only downward in the layer DAG "
        "(obs/lint < core < memory < runner < engines < serve < cli); "
        "upward imports and eager import cycles are rejected"
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        yield from self._check_layers(project)
        yield from self._check_cycles(project)

    # ------------------------------------------------------------------
    # Layering
    # ------------------------------------------------------------------
    def _check_layers(self, project: ProjectIndex) -> Iterator[Finding]:
        for info in project.repro_modules():
            if info.role != "src":
                continue  # test/tool doubles may shadow repro names
            src_pkg = _top_package(info.module)
            src_rank = layer_rank(src_pkg)
            seen: set[tuple[str, int]] = set()
            for edge in info.imports:
                target = project.resolve_module(edge.origin)
                if target is None or target.role != "src":
                    continue
                if not target.module.startswith("repro"):
                    continue
                dst_pkg = _top_package(target.module)
                if dst_pkg == src_pkg:
                    continue
                if (info.module, target.module) in BLESSED_EDGES:
                    continue
                key = (target.module, edge.lineno)
                if key in seen:
                    continue
                seen.add(key)
                dst_rank = layer_rank(dst_pkg)
                if src_pkg in LEAF_PACKAGES:
                    yield self._finding(
                        info,
                        edge,
                        f"leaf package repro.{src_pkg} must not import "
                        f"{target.module}; obs and lint depend on no "
                        "other repro package",
                    )
                elif dst_rank > src_rank:
                    yield self._finding(
                        info,
                        edge,
                        f"upward import: {info.module} (layer "
                        f"{src_pkg or 'root'}, rank {src_rank}) must not "
                        f"import {target.module} (layer {dst_pkg}, rank "
                        f"{dst_rank}); invert the dependency or route it "
                        "through a blessed runner boundary",
                    )

    # ------------------------------------------------------------------
    # Cycles (eager edges only)
    # ------------------------------------------------------------------
    def _check_cycles(self, project: ProjectIndex) -> Iterator[Finding]:
        graph: dict[str, list[tuple[str, ImportEdge]]] = {}
        infos: dict[str, ModuleInfo] = {}
        for info in project.repro_modules():
            if info.role != "src":
                continue
            infos[info.module] = info
            edges: list[tuple[str, ImportEdge]] = []
            for edge in info.imports:
                if edge.lazy:
                    continue
                target = project.resolve_module(edge.origin)
                if (
                    target is None
                    or target.role != "src"
                    or target.module == info.module
                ):
                    continue
                edges.append((target.module, edge))
            graph[info.module] = edges

        for scc in _tarjan(
            {m: [t for t, _ in e] for m, e in graph.items()}
        ):
            if len(scc) < 2:
                continue
            members = sorted(scc)
            anchor = members[0]
            in_cycle = set(scc)
            edge = next(
                (e for t, e in graph[anchor] if t in in_cycle), None
            )
            info = infos[anchor]
            yield Finding(
                path=info.path,
                line=edge.lineno if edge is not None else 1,
                col=0,
                rule=self.code,
                message=(
                    "eager import cycle: "
                    + " -> ".join(members + [anchor])
                    + "; break it by moving one import into the "
                    "function that needs it"
                ),
            )

    def _finding(
        self, info: ModuleInfo, edge: ImportEdge, message: str
    ) -> Finding:
        return Finding(
            path=info.path,
            line=edge.lineno,
            col=0,
            rule=self.code,
            message=message,
        )


def _tarjan(graph: dict[str, list[str]]) -> list[list[str]]:
    """Strongly connected components, iterative Tarjan."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for start in sorted(graph):
        if start in index:
            continue
        work: list[tuple[str, int]] = [(start, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = graph.get(node, [])
            for i in range(child_i, len(children)):
                child = children[i]
                if child not in graph:
                    continue
                if child not in index:
                    work[-1] = (node, i + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent, _ = work[-1]
                low[parent] = min(low[parent], low[node])
    return sccs
