"""The whole-program :class:`ProjectIndex`: one parse pass over the tree.

Per-file AST rules cannot see an upward import, a worker closure that
will not survive the pickle boundary, or a metric name minted outside
``repro.obs.names`` — the invariants PRs 5-6 moved across process and
module boundaries.  The index is the shared substrate every
cross-file rule (IMPORT001, PAR001, OBS002, DEAD001, API001) runs on:
it parses each Python file in the repository tree exactly once and
records, per module,

* the dotted module name, top-level package and *role* (``src`` /
  ``tests`` / ``tools`` / ``benchmarks`` / ``examples``),
* the module-level symbol table and ``__all__`` export list,
* every import edge, alias-resolved and tagged *eager* (executes at
  import time) or *lazy* (function-scoped or ``TYPE_CHECKING``-guarded
  — the sanctioned cycle-breaking idiom),
* a coarse use map: every dotted name the module references, expanded
  to all prefixes so ``names.FOO.bit_length`` counts as a use of both
  ``repro.obs.names`` and ``repro.obs.names.FOO``,
* the suppression directives, so project-rule findings honour the same
  waivers file rules do.

The index is deliberately *not* cached on disk — only its
:attr:`ProjectIndex.digest` is.  A warm lint run recomputes the cheap
content digest, sees it unchanged, and replays the cached project
findings without parsing anything (see ``framework.lint_paths``).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .framework import Suppressions, module_name_for_path

__all__ = [
    "ImportEdge",
    "ModuleInfo",
    "ProjectIndex",
    "TREE_DIRS",
    "iter_tree_files",
    "role_for_path",
]

#: Directories under the project root that make up the indexed tree.
TREE_DIRS = ("src", "tests", "tools", "benchmarks", "examples")

#: Path components that are never indexed or linted: bytecode caches
#: and lint fixtures (fixtures are *data* — intentionally-bad sources
#: that would otherwise pollute the import graph with fake modules).
EXCLUDED_PARTS = frozenset({"__pycache__", "fixtures"})


def role_for_path(path: str | Path) -> str:
    """Coarse tree role of a file: which top-level dir it lives under.

    Used for rule scoping: engine-bypass discipline (LAYER001) extends
    to ``tools`` (they write committed artifacts) but not to ``tests``
    (which must construct engines to test them).
    """
    parts = Path(path).parts
    for role in ("tests", "tools", "benchmarks", "examples"):
        if role in parts:
            return role
    return "src"


def iter_tree_files(root: Path) -> Iterator[Path]:
    """Every indexable Python file under the project tree, sorted."""
    seen: list[Path] = []
    for name in TREE_DIRS:
        top = root / name
        if not top.is_dir():
            continue
        for sub in top.rglob("*.py"):
            # Exclusion is *root-relative*: a fixture project tree used
            # as a lint root in the test suite lives under a directory
            # named "fixtures" itself, and must still index.
            if not EXCLUDED_PARTS.intersection(sub.relative_to(root).parts):
                seen.append(sub)
    for loose in root.glob("*.py"):
        seen.append(loose)
    return iter(sorted(seen))


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, alias-resolved to a dotted origin."""

    origin: str  #: dotted module (or module.symbol) being imported
    lineno: int
    #: function-scoped or TYPE_CHECKING-guarded: does not execute at
    #: import time, so it cannot participate in an import cycle.
    lazy: bool


@dataclass
class ModuleInfo:
    """Everything the project rules may consult about one module."""

    path: str  #: root-relative posix path
    module: str  #: dotted name, "" when outside a repro tree
    package: str  #: top-level repro subpackage ("core", ...; "" = root)
    role: str  #: src | tests | tools | benchmarks | examples
    is_package: bool
    digest: str  #: sha256 of the source bytes
    tree: ast.Module
    suppressions: Suppressions
    import_map: dict[str, str]  #: local name -> dotted origin
    imports: tuple[ImportEdge, ...]
    exports: tuple[str, ...] | None  #: __all__, None when absent
    export_lines: dict[str, int] = field(default_factory=dict)
    symbols: frozenset[str] = frozenset()  #: module-level bindings
    nested_functions: frozenset[str] = frozenset()
    #: module-level functions whose body declares ``global``
    global_mutators: frozenset[str] = frozenset()
    #: every dotted name referenced, expanded to all prefixes
    uses: frozenset[str] = frozenset()
    #: modules star-imported (``from m import *``)
    star_imports: frozenset[str] = frozenset()


def _iter_eager_lazy(tree: ast.Module) -> Iterator[tuple[ast.stmt, bool]]:
    """Yield import statements tagged lazy (not run at import time)."""

    def visit(body: Iterable[ast.stmt], lazy: bool) -> Iterator[
        tuple[ast.stmt, bool]
    ]:
        for node in body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield node, lazy
            elif isinstance(node, ast.If):
                test = node.test
                guarded = lazy or (
                    isinstance(test, ast.Name)
                    and test.id == "TYPE_CHECKING"
                ) or (
                    isinstance(test, ast.Attribute)
                    and test.attr == "TYPE_CHECKING"
                )
                yield from visit(node.body, guarded)
                yield from visit(node.orelse, guarded)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from visit(node.body, True)
            elif isinstance(node, ast.ClassDef):
                # Class bodies execute at import time.
                yield from visit(node.body, lazy)
            elif isinstance(node, ast.Try):
                for block in (node.body, node.orelse, node.finalbody):
                    yield from visit(block, lazy)
                for handler in node.handlers:
                    yield from visit(handler.body, lazy)
            elif isinstance(node, (ast.With, ast.AsyncWith, ast.For,
                                   ast.AsyncFor, ast.While)):
                yield from visit(node.body, lazy)

    yield from visit(tree.body, False)


def _resolve_base(
    base: str, level: int, pkg_parts: list[str]
) -> str:
    """Anchor a relative import against the enclosing package."""
    if not level:
        return base
    anchor = pkg_parts[: len(pkg_parts) - (level - 1)]
    return ".".join(anchor + ([base] if base else []))


def _collect_exports(
    tree: ast.Module,
) -> tuple[tuple[str, ...] | None, dict[str, int]]:
    """``__all__`` entries with the line each entry sits on."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "__all__"
                and isinstance(value, (ast.List, ast.Tuple))
            ):
                names: list[str] = []
                lines: dict[str, int] = {}
                for elt in value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(
                        elt.value, str
                    ):
                        names.append(elt.value)
                        lines.setdefault(elt.value, elt.lineno)
                return tuple(names), lines
    return None, {}


def _dotted_chain(node: ast.expr) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _prefixes(dotted: str) -> Iterator[str]:
    parts = dotted.split(".")
    for k in range(2, len(parts) + 1):
        yield ".".join(parts[:k])


def build_module_info(
    path: Path,
    rel_path: str,
    source: str,
    tree: ast.Module,
    *,
    digest: str | None = None,
) -> ModuleInfo:
    """Index one parsed module (shared with the lint driver)."""
    module = module_name_for_path(rel_path)
    mod_parts = module.split(".") if module else []
    package = mod_parts[1] if len(mod_parts) > 1 else ""
    is_package = path.name == "__init__.py"
    pkg_parts = mod_parts if is_package else mod_parts[:-1]

    import_map: dict[str, str] = {}
    edges: list[ImportEdge] = []
    star: set[str] = set()
    uses: set[str] = set()
    for node, lazy in _iter_eager_lazy(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                import_map[bound] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                edges.append(ImportEdge(alias.name, node.lineno, lazy))
                uses.update(_prefixes(alias.name))
        else:
            assert isinstance(node, ast.ImportFrom)
            base = _resolve_base(node.module or "", node.level, pkg_parts)
            for alias in node.names:
                if alias.name == "*":
                    if base:
                        star.add(base)
                        edges.append(ImportEdge(base, node.lineno, lazy))
                        uses.update(_prefixes(base))
                    continue
                origin = f"{base}.{alias.name}" if base else alias.name
                import_map[alias.asname or alias.name] = origin
                edges.append(ImportEdge(origin, node.lineno, lazy))
                uses.update(_prefixes(origin))

    symbols: set[str] = set()
    nested: set[str] = set()
    mutators: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.add(node.name)
            if any(isinstance(n, ast.Global) for n in ast.walk(node)):
                mutators.add(node.name)
        elif isinstance(node, ast.ClassDef):
            symbols.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    symbols.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                symbols.add(node.target.id)
    symbols.update(import_map)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name not in symbols:
                nested.add(node.name)
        elif isinstance(node, ast.Attribute):
            chain = _dotted_chain(node)
            if chain is not None:
                head = import_map.get(chain[0], chain[0])
                uses.update(_prefixes(".".join([head, *chain[1:]])))

    exports, export_lines = _collect_exports(tree)
    return ModuleInfo(
        path=rel_path,
        module=module,
        package=package,
        role=role_for_path(rel_path),
        is_package=is_package,
        digest=digest
        if digest is not None
        else hashlib.sha256(source.encode("utf-8")).hexdigest(),
        tree=tree,
        suppressions=Suppressions.parse(source),
        import_map=import_map,
        imports=tuple(edges),
        exports=exports,
        export_lines=export_lines,
        symbols=frozenset(symbols),
        nested_functions=frozenset(nested),
        global_mutators=frozenset(mutators),
        uses=frozenset(uses),
        star_imports=frozenset(star),
    )


def _script_uses(root: Path) -> frozenset[str]:
    """Console-script entry points from ``pyproject.toml`` count as
    uses (``repro.cli:main`` keeps ``main`` alive for DEAD001)."""
    pyproject = root / "pyproject.toml"
    if not pyproject.exists():
        return frozenset()
    try:
        import tomllib

        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except Exception:  # noqa: BLE001 - malformed toml: no script roots
        return frozenset()
    out: set[str] = set()
    scripts = data.get("project", {}).get("scripts", {})
    if isinstance(scripts, dict):
        for target in scripts.values():
            if isinstance(target, str) and ":" in target:
                mod, _, func = target.partition(":")
                out.update(_prefixes(f"{mod}.{func}"))
    return frozenset(out)


@dataclass
class ProjectIndex:
    """The one-pass whole-program index project rules share."""

    root: Path
    #: root-relative posix path -> module info
    files: dict[str, ModuleInfo]
    #: dotted module name -> info (modules inside a repro tree only)
    by_module: dict[str, ModuleInfo]
    #: dotted-name uses rooted outside the tree (console scripts)
    script_uses: frozenset[str]
    #: sha256 over (path, content digest) of every tree file
    digest: str

    @staticmethod
    def content_digest(root: Path) -> str:
        """Digest of the tree *content* — computable without parsing,
        so a warm cache hit never pays for an AST."""
        h = hashlib.sha256()
        for path in iter_tree_files(Path(root)):
            rel = path.relative_to(root).as_posix()
            h.update(rel.encode("utf-8"))
            h.update(b"\0")
            h.update(hashlib.sha256(path.read_bytes()).digest())
        return h.hexdigest()

    @classmethod
    def build(cls, root: str | Path) -> "ProjectIndex":
        root = Path(root)
        files: dict[str, ModuleInfo] = {}
        by_module: dict[str, ModuleInfo] = {}
        h = hashlib.sha256()
        for path in iter_tree_files(root):
            rel = path.relative_to(root).as_posix()
            raw = path.read_bytes()
            digest = hashlib.sha256(raw).hexdigest()
            h.update(rel.encode("utf-8"))
            h.update(b"\0")
            h.update(hashlib.sha256(raw).digest())
            try:
                source = raw.decode("utf-8")
                tree = ast.parse(source)
            except (SyntaxError, ValueError, UnicodeDecodeError):
                continue  # unparsable files are PARSE001's business
            info = build_module_info(
                path, rel, source, tree, digest=digest
            )
            files[rel] = info
            if info.module:
                by_module[info.module] = info
        return cls(
            root=root,
            files=files,
            by_module=by_module,
            script_uses=_script_uses(root),
            digest=h.hexdigest(),
        )

    # ------------------------------------------------------------------
    # Queries shared by the project rules
    # ------------------------------------------------------------------
    def repro_modules(self) -> Iterator[ModuleInfo]:
        """Every module inside a ``repro`` tree, in dotted order."""
        for name in sorted(self.by_module):
            yield self.by_module[name]

    def resolve_module(self, origin: str) -> ModuleInfo | None:
        """The indexed module an import origin lands in.

        ``repro.runner.backends.FastBackend`` resolves to the
        ``repro.runner.backends`` module by progressively stripping
        trailing symbol components.
        """
        probe = origin
        while probe:
            info = self.by_module.get(probe)
            if info is not None:
                return info
            if "." not in probe:
                return None
            probe = probe.rsplit(".", 1)[0]
        return None

    def is_used_elsewhere(self, module: str, symbol: str) -> bool:
        """Whether ``module.symbol`` is referenced by any *other* file
        in the project (import, attribute chain, star import, or a
        console-script entry point)."""
        target = f"{module}.{symbol}"
        if target in self.script_uses:
            return True
        owner = self.by_module.get(module)
        owner_path = owner.path if owner is not None else None
        for info in self.files.values():
            if info.path == owner_path:
                continue
            if target in info.uses or module in info.star_imports:
                return True
        return False
