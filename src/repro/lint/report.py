"""Reporters: render a :class:`~repro.lint.framework.LintReport`.

Three formats: a compact human one (``path:line:col: CODE message``,
one per line, plus a summary), a JSON document for CI artifacts, and
SARIF 2.1.0 for code-scanning upload (see :mod:`repro.lint.sarif`).
The JSON schema is versioned so downstream tooling can detect changes.
"""

from __future__ import annotations

import json

from .framework import LintReport

__all__ = ["JSON_SCHEMA_VERSION", "render_json", "render_text", "to_json_dict"]

#: Bump when the JSON report layout changes incompatibly.
#: v2: adds files_linted / files_cached / baselined (incremental cache
#: and baseline accounting).
JSON_SCHEMA_VERSION = 2


def render_text(report: LintReport) -> str:
    """Human-readable findings plus a one-line summary."""
    lines = [f.render() for f in report.findings]
    cache_note = ""
    if report.files_cached:
        cache_note = (
            f" ({report.files_linted} linted, "
            f"{report.files_cached} from cache)"
        )
    baseline_note = (
        f", {report.baselined} baselined" if report.baselined else ""
    )
    if report.clean:
        lines.append(
            f"reprolint: {report.files_checked} files checked"
            f"{cache_note}, clean{baseline_note}"
        )
    else:
        by_rule = ", ".join(
            f"{code}: {n}" for code, n in report.counts().items()
        )
        lines.append(
            f"reprolint: {len(report.findings)} finding(s) in "
            f"{report.files_checked} files{cache_note} "
            f"({by_rule}){baseline_note}"
        )
    return "\n".join(lines)


def to_json_dict(report: LintReport) -> dict[str, object]:
    """JSON-safe dict of the full report."""
    return {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "reprolint",
        "root": report.root,
        "files_checked": report.files_checked,
        "files_linted": report.files_linted,
        "files_cached": report.files_cached,
        "baselined": report.baselined,
        "clean": report.clean,
        "counts": report.counts(),
        "findings": [f.as_dict() for f in report.findings],
    }


def render_json(report: LintReport) -> str:
    return json.dumps(to_json_dict(report), indent=2, sort_keys=True) + "\n"
