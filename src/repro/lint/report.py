"""Reporters: render a :class:`~repro.lint.framework.LintReport`.

Two formats: a compact human one (``path:line:col: CODE message``, one
per line, plus a summary) and a JSON document for CI artifacts.  The
JSON schema is versioned so downstream tooling can detect changes.
"""

from __future__ import annotations

import json

from .framework import LintReport

__all__ = ["JSON_SCHEMA_VERSION", "render_json", "render_text", "to_json_dict"]

#: Bump when the JSON report layout changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport) -> str:
    """Human-readable findings plus a one-line summary."""
    lines = [f.render() for f in report.findings]
    if report.clean:
        lines.append(
            f"reprolint: {report.files_checked} files checked, clean"
        )
    else:
        by_rule = ", ".join(
            f"{code}: {n}" for code, n in report.counts().items()
        )
        lines.append(
            f"reprolint: {len(report.findings)} finding(s) in "
            f"{report.files_checked} files ({by_rule})"
        )
    return "\n".join(lines)


def to_json_dict(report: LintReport) -> dict[str, object]:
    """JSON-safe dict of the full report."""
    return {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "reprolint",
        "root": report.root,
        "files_checked": report.files_checked,
        "clean": report.clean,
        "counts": report.counts(),
        "findings": [f.as_dict() for f in report.findings],
    }


def render_json(report: LintReport) -> str:
    return json.dumps(to_json_dict(report), indent=2, sort_keys=True) + "\n"
