"""The file-scoped reprolint rules.

Each rule guards one invariant of the reproduction (see DESIGN.md §7):

``EXACT001``
    Theorem checks are *exact*: bandwidths are ``Fraction`` values end to
    end, so the exactness layers (``repro.core``, ``repro.runner``,
    ``repro.analysis``) must not introduce floats — no float literals, no
    ``float()``/``complex()`` conversions, no true division (``/``
    silently produces a float on integers; write ``Fraction(a, b)`` or
    ``a // b``).  The same discipline extends to NumPy state arrays
    (the ``runner.batchsim`` SoA core): array constructors must pin an
    exact dtype (``np.int64`` / ``np.bool_`` / ``np.intp``) so nothing
    silently lands in ``float64`` or a platform-narrow integer that can
    overflow, float dtypes never appear, and ``np.divide`` /
    ``np.true_divide`` are forbidden outright.  Presentation helpers
    whose *name* ends in ``_float`` are the blessed boundary where
    exact values become floats for display, and are exempt.
``DET001``
    Results must be reproducible run-to-run and identical across the
    in-process and process-pool execution paths: no module-level
    ``random.*`` calls, no legacy ``numpy.random`` global-state API, no
    unseeded ``default_rng()``, no wall-clock reads, and no iteration
    over sets where the order can leak into results (Python set order is
    arbitrary across processes — exactly the hazard of the
    ``SweepExecutor`` fan-out).
``LAYER001``
    Every simulation rides ``run(job, backend=...)`` so backends stay
    interchangeable and sweeps stay cacheable: the engine primitives
    (``Engine``, ``Port``, ``simulate_streams``) may only be invoked
    from ``repro.runner.backends`` and the blessed legacy shims.
``FROZEN001``
    ``SimJob``/``SimOutcome`` are frozen: cache keys and memoized
    outcomes assume value semantics, so ``object.__setattr__`` mutation
    of frozen instances is forbidden outside ``__init__``-family
    methods (the frozen-dataclass self-initialization idiom).
``OBS001``
    Monotonic-clock reads (``time.perf_counter`` and friends) inside
    the ``repro`` package are confined to ``repro.obs.trace`` — the one
    sanctioned timing boundary, off by default, whose readings can
    never flow into result values.  Benchmarks and tools outside the
    package time things however they like.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, LintContext, Rule, register_rule

__all__ = [
    "ClockBoundaryRule",
    "DeterminismRule",
    "ExactnessRule",
    "FrozenMutationRule",
    "RunnerLayerRule",
]


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def build_import_map(ctx: LintContext) -> dict[str, str]:
    """Map local names to their dotted import origins.

    ``import numpy as np``               → ``{"np": "numpy"}``
    ``from numpy import random``         → ``{"random": "numpy.random"}``
    ``from ..sim.engine import Engine``  → ``{"Engine": "repro.sim.engine.Engine"}``

    Relative imports resolve against ``ctx.module`` when known; when the
    package is unknown the unresolved leading levels are dropped, so
    origin matching should compare by dotted *suffix*.
    """
    out: dict[str, str] = {}
    pkg_parts: list[str] = []
    if ctx.module:
        parts = ctx.module.split(".")
        pkg_parts = parts if ctx.is_package else parts[:-1]
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                out[bound] = origin
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                out[bound] = f"{base}.{alias.name}" if base else alias.name
    return out


def dotted_name(node: ast.expr) -> list[str] | None:
    """``a.b.c`` attribute chain as a list, or ``None`` for other shapes."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def resolve_call_origin(
    node: ast.Call, imports: dict[str, str]
) -> str | None:
    """Dotted origin of a call target, alias-resolved (best effort)."""
    chain = dotted_name(node.func)
    if not chain:
        return None
    head = imports.get(chain[0], chain[0])
    return ".".join([head, *chain[1:]])


class _ScopedVisitor(ast.NodeVisitor):
    """Visitor that tracks the enclosing function-name stack."""

    def __init__(self) -> None:
        self.func_stack: list[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node)

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func_stack.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self.func_stack.pop()


# ----------------------------------------------------------------------
# EXACT001
# ----------------------------------------------------------------------
#: NumPy constructors whose default dtype is float64 or a
#: platform-dependent integer — silent overflow / precision hazards on
#: the exact int64 state arrays of the batch core.
_NP_CONSTRUCTORS = frozenset({
    "zeros", "ones", "empty", "full", "arange", "array", "asarray",
})
#: The exact dtypes the state arrays may pin.
_NP_EXACT_DTYPES = frozenset({
    "numpy.int64", "numpy.bool_", "numpy.intp",
})
#: Float dtypes: forbidden anywhere on an exact path.
_NP_FLOAT_DTYPES = frozenset({
    "numpy.float16", "numpy.float32", "numpy.float64", "numpy.float128",
    "numpy.half", "numpy.single", "numpy.double", "numpy.longdouble",
    "numpy.floating",
})
#: ufuncs that produce floats from integer input.
_NP_FLOAT_CALLS = frozenset({"numpy.divide", "numpy.true_divide"})


@register_rule
class ExactnessRule(Rule):
    code = "EXACT001"
    name = "exact-fraction-arithmetic"
    description = (
        "No float literals, float()/complex() conversions, or true "
        "division in the exactness layers (repro.core, repro.runner, "
        "repro.analysis, repro.obs); NumPy state arrays pin exact "
        "dtypes (np.int64/np.bool_/np.intp) and never touch float "
        "dtypes or np.divide; *_float helpers are the blessed "
        "presentation boundary."
    )

    SCOPES = ("repro.core", "repro.runner", "repro.analysis", "repro.obs")

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.module or ctx.in_package(*self.SCOPES)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        rule = self
        imports = build_import_map(ctx)

        class V(_ScopedVisitor):
            def __init__(self) -> None:
                super().__init__()
                self.found: list[Finding] = []

            def _visit_func(self, node):  # type: ignore[override]
                if node.name.endswith("_float"):
                    return  # blessed presentation helper: skip subtree
                super()._visit_func(node)

            def visit_Constant(self, node: ast.Constant) -> None:
                if type(node.value) is float:
                    self.found.append(rule.finding(
                        ctx, node,
                        f"float literal {node.value!r} on an exact path; "
                        "use Fraction or move it behind a *_float helper",
                    ))
                elif type(node.value) is complex:
                    self.found.append(rule.finding(
                        ctx, node,
                        f"complex literal {node.value!r} on an exact path",
                    ))

            def visit_Attribute(self, node: ast.Attribute) -> None:
                chain = dotted_name(node)
                if chain is not None:
                    head = imports.get(chain[0], chain[0])
                    origin = ".".join([head, *chain[1:]])
                    if origin in _NP_FLOAT_DTYPES:
                        self.found.append(rule.finding(
                            ctx, node,
                            f"float dtype {origin} on an exact path; the "
                            "state arrays stay np.int64/np.bool_ and "
                            "bandwidth stays Fraction at the boundary",
                        ))
                self.generic_visit(node)

            def _check_numpy_call(self, node: ast.Call) -> None:
                origin = resolve_call_origin(node, imports)
                if origin is None:
                    return
                if origin in _NP_FLOAT_CALLS:
                    self.found.append(rule.finding(
                        ctx, node,
                        f"{origin}() produces floats from integer "
                        "arrays; use Fraction(a, b) or // at the "
                        "boundary",
                    ))
                    return
                parts = origin.split(".")
                if (
                    len(parts) == 2
                    and parts[0] == "numpy"
                    and parts[1] in _NP_CONSTRUCTORS
                ):
                    dtype = next(
                        (k.value for k in node.keywords if k.arg == "dtype"),
                        None,
                    )
                    if dtype is None:
                        self.found.append(rule.finding(
                            ctx, node,
                            f"numpy.{parts[1]}() without an explicit "
                            "dtype defaults to float64 or a "
                            "platform-dependent integer; pin "
                            "dtype=np.int64 (or np.bool_/np.intp)",
                        ))
                        return
                    chain = dotted_name(dtype)
                    resolved = None
                    if chain is not None:
                        head = imports.get(chain[0], chain[0])
                        resolved = ".".join([head, *chain[1:]])
                    if resolved in _NP_FLOAT_DTYPES:
                        return  # visit_Attribute already flags it
                    if resolved not in _NP_EXACT_DTYPES:
                        self.found.append(rule.finding(
                            ctx, node,
                            f"numpy.{parts[1]}() dtype is not an exact "
                            "dtype; pin dtype=np.int64 (or "
                            "np.bool_/np.intp) so state arrays cannot "
                            "silently overflow or go float",
                        ))

            def visit_Call(self, node: ast.Call) -> None:
                if isinstance(node.func, ast.Name) and node.func.id in (
                    "float", "complex",
                ):
                    self.found.append(rule.finding(
                        ctx, node,
                        f"{node.func.id}() conversion on an exact path; "
                        "keep Fraction, or rename the enclosing helper "
                        "to *_float",
                    ))
                self._check_numpy_call(node)
                self.generic_visit(node)

            def visit_BinOp(self, node: ast.BinOp) -> None:
                if isinstance(node.op, ast.Div):
                    self.found.append(rule.finding(
                        ctx, node,
                        "true division on an exact path silently "
                        "produces a float on integers; use "
                        "Fraction(a, b) or a // b",
                    ))
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                if isinstance(node.op, ast.Div):
                    self.found.append(rule.finding(
                        ctx, node,
                        "in-place true division on an exact path; use "
                        "Fraction or //=",
                    ))
                self.generic_visit(node)

        v = V()
        v.visit(ctx.tree)
        yield from v.found


# ----------------------------------------------------------------------
# DET001
# ----------------------------------------------------------------------
#: Order-sensitive consumers: feeding them a set leaks arbitrary order
#: into results (sorted()/len()/min()/max()/sum() are order-free).
_ORDER_SENSITIVE_CALLS = frozenset(
    {"list", "tuple", "iter", "enumerate", "zip"}
)
#: numpy.random legacy API — global-state, seed-order-dependent.
_NUMPY_LEGACY = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "shuffle", "permutation", "normal", "uniform", "bytes",
})
_WALLCLOCK = frozenset({
    "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


def _is_set_valued(node: ast.expr, imports: dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        name = imports.get(node.func.id, node.func.id)
        return name in ("set", "frozenset")
    return False


@register_rule
class DeterminismRule(Rule):
    code = "DET001"
    name = "deterministic-results"
    description = (
        "No unseeded/global RNG state, no wall-clock reads, and no "
        "set-iteration-order leaking into ordered results."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        imports = build_import_map(ctx)
        rule = self

        class V(_ScopedVisitor):
            def __init__(self) -> None:
                super().__init__()
                self.found: list[Finding] = []

            def visit_Call(self, node: ast.Call) -> None:
                origin = resolve_call_origin(node, imports)
                if origin is not None:
                    self._check_origin(node, origin)
                if (
                    isinstance(node.func, ast.Name)
                    and imports.get(node.func.id, node.func.id)
                    in _ORDER_SENSITIVE_CALLS
                    and node.args
                    and any(_is_set_valued(a, imports) for a in node.args)
                ):
                    self.found.append(rule.finding(
                        ctx, node,
                        f"{node.func.id}() over a set leaks arbitrary "
                        "iteration order into results; sort first "
                        "(sorted(...)) or keep a list",
                    ))
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and _is_set_valued(node.args[0], imports)
                ):
                    self.found.append(rule.finding(
                        ctx, node,
                        "str.join over a set produces order-dependent "
                        "output; sort first",
                    ))
                self.generic_visit(node)

            def _check_origin(self, node: ast.Call, origin: str) -> None:
                parts = origin.split(".")
                if origin in _WALLCLOCK:
                    self.found.append(rule.finding(
                        ctx, node,
                        f"wall-clock read {origin}() in a result path "
                        "makes runs irreproducible; thread timestamps "
                        "in explicitly (time.perf_counter is fine for "
                        "benchmark timing)",
                    ))
                elif parts[0] == "random" and len(parts) == 2:
                    if parts[1] not in ("Random", "SystemRandom"):
                        self.found.append(rule.finding(
                            ctx, node,
                            f"module-level random.{parts[1]}() uses the "
                            "shared unseeded RNG; construct "
                            "random.Random(seed) instead",
                        ))
                elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
                    if parts[2] in _NUMPY_LEGACY:
                        self.found.append(rule.finding(
                            ctx, node,
                            f"legacy numpy.random.{parts[2]}() mutates "
                            "global RNG state; use "
                            "numpy.random.default_rng(seed)",
                        ))
                    elif parts[2] == "default_rng" and not (
                        node.args or node.keywords
                    ):
                        self.found.append(rule.finding(
                            ctx, node,
                            "default_rng() without a seed is "
                            "irreproducible; pass an explicit seed",
                        ))

            def visit_For(self, node: ast.For) -> None:
                self._check_iter(node.iter)
                self.generic_visit(node)

            def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
                self._check_iter(node.iter)
                self.generic_visit(node)

            def visit_comprehension_iters(self, node: ast.expr) -> None:
                pass

            def _check_iter(self, iter_node: ast.expr) -> None:
                if _is_set_valued(iter_node, imports):
                    self.found.append(rule.finding(
                        ctx, iter_node,
                        "iterating a set in arbitrary order; wrap in "
                        "sorted(...) if the loop feeds ordered results",
                    ))

            def _visit_comp(self, node) -> None:
                for gen in node.generators:
                    self._check_iter(gen.iter)
                self.generic_visit(node)

            visit_ListComp = _visit_comp
            visit_SetComp = _visit_comp
            visit_DictComp = _visit_comp
            visit_GeneratorExp = _visit_comp

        v = V()
        v.visit(ctx.tree)
        yield from v.found


# ----------------------------------------------------------------------
# LAYER001
# ----------------------------------------------------------------------
@register_rule
class RunnerLayerRule(Rule):
    code = "LAYER001"
    name = "runner-layer-discipline"
    description = (
        "Engine primitives (Engine, Port, simulate_streams) may only be "
        "invoked from repro.runner.backends and the blessed legacy "
        "shims; everything else rides run(job, backend=...) and the "
        "SweepExecutor."
    )

    #: Modules allowed to touch the engine directly: the backend layer
    #: itself, the engine internals, and the byte-compatible legacy
    #: shims (kept for PriorityRule *instances*, which cannot ride in a
    #: hashable SimJob).  ``repro.runner.fastsim`` is the flat-array
    #: core the fast backend runs on — an engine primitive in its own
    #: right, blessed for the same reason ``repro.sim.engine`` is —
    #: and ``repro.runner.batchsim`` is its structure-of-arrays twin.
    BLESSED = frozenset({
        "repro.runner.backends",
        "repro.runner.fastsim",
        "repro.runner.batchsim",
        "repro.sim.engine",
        "repro.sim.port",
        "repro.sim.pairs",
        "repro.sim.multi",
        "repro.sim.statespace",
    })

    #: Call origins that bypass the runner layer (matched by suffix so
    #: relative imports resolve identically).  The fastsim core joins
    #: the historical engine primitives: calling ``FlatSim`` or the
    #: steady-cycle detector directly skips backend checking and the
    #: executor's cache, exactly like constructing an ``Engine``.  The
    #: batch core's entry points bypass the same way — and additionally
    #: skip the error/fallback bookkeeping only ``BatchBackend`` does.
    TARGET_SUFFIXES = (
        "sim.engine.Engine",
        "sim.engine.simulate_streams",
        "sim.port.Port",
        "runner.fastsim.FlatSim",
        "runner.fastsim.find_steady_cycle",
        "runner.batchsim.BatchSim",
        "runner.batchsim.run_steady_batch",
        "runner.batchsim.run_span_batch",
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.module not in self.BLESSED

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        imports = build_import_map(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call_origin(node, imports)
            if origin is None:
                continue
            for suffix in self.TARGET_SUFFIXES:
                if origin == suffix or origin.endswith("." + suffix):
                    short = suffix.rsplit(".", 1)[-1]
                    yield self.finding(
                        ctx, node,
                        f"direct {short}() call bypasses the runner "
                        "layer; build a SimJob and call "
                        "run(job, backend=...) so the result is "
                        "backend-checked and cacheable",
                    )
                    break


# ----------------------------------------------------------------------
# OBS001
# ----------------------------------------------------------------------
@register_rule
class ClockBoundaryRule(Rule):
    code = "OBS001"
    name = "clock-boundary"
    description = (
        "Monotonic-clock reads (time.perf_counter[_ns], "
        "time.monotonic[_ns], time.process_time[_ns]) in the repro "
        "package are confined to repro.obs.trace, the sanctioned span "
        "timing boundary."
    )

    #: The one module allowed to read the clock: span timing is off by
    #: default and its readings never reach a result value.
    BLESSED = frozenset({"repro.obs.trace"})

    #: Monotonic clocks (wall clocks are DET001's business).
    CLOCKS = frozenset({
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "time.thread_time", "time.thread_time_ns",
    })

    def applies_to(self, ctx: LintContext) -> bool:
        if ctx.module in self.BLESSED:
            return False
        # Unknown modules are linted too (fixture files, loose scripts
        # under src); tools/ and benchmarks/ fall outside "repro".
        return not ctx.module or ctx.in_package("repro")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        imports = build_import_map(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call_origin(node, imports)
            if origin in self.CLOCKS:
                yield self.finding(
                    ctx, node,
                    f"{origin}() outside repro.obs.trace; ad-hoc timing "
                    "fragments the observability contract — wrap the "
                    "region in repro.obs.trace.span(...) instead",
                )


# ----------------------------------------------------------------------
# FROZEN001
# ----------------------------------------------------------------------
@register_rule
class FrozenMutationRule(Rule):
    code = "FROZEN001"
    name = "no-frozen-mutation"
    description = (
        "No object.__setattr__/__delattr__ mutation of frozen instances "
        "outside __init__-family methods: SimJob/SimOutcome identity "
        "backs cache keys and memoized outcomes."
    )

    #: The frozen-dataclass self-initialization idiom is legitimate.
    ALLOWED_SCOPES = frozenset({
        "__init__", "__post_init__", "__new__", "__setstate__",
    })

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        rule = self

        class V(_ScopedVisitor):
            def __init__(self) -> None:
                super().__init__()
                self.found: list[Finding] = []

            def visit_Call(self, node: ast.Call) -> None:
                chain = dotted_name(node.func)
                if (
                    chain is not None
                    and len(chain) == 2
                    and chain[0] == "object"
                    and chain[1] in ("__setattr__", "__delattr__")
                    and not (
                        self.func_stack
                        and self.func_stack[-1] in rule.ALLOWED_SCOPES
                    )
                ):
                    self.found.append(rule.finding(
                        ctx, node,
                        f"object.{chain[1]}() mutates a frozen instance; "
                        "frozen jobs/outcomes back cache identities — "
                        "build a new instance with dataclasses.replace()",
                    ))
                self.generic_visit(node)

        v = V()
        v.visit(ctx.tree)
        yield from v.found
