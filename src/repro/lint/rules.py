"""The file-scoped reprolint rules.

Each rule guards one invariant of the reproduction (see DESIGN.md §7):

``EXACT001``
    Theorem checks are *exact*: bandwidths are ``Fraction`` values end to
    end, so the exactness layers (``repro.core``, ``repro.runner``,
    ``repro.analysis``) must not introduce floats — no float literals, no
    ``float()``/``complex()`` conversions, no true division (``/``
    silently produces a float on integers; write ``Fraction(a, b)`` or
    ``a // b``).  The same discipline extends to NumPy state arrays
    (the ``runner.batchsim`` SoA core): array constructors must pin an
    exact dtype (``np.int64`` / ``np.bool_`` / ``np.intp``) so nothing
    silently lands in ``float64`` or a platform-narrow integer that can
    overflow, float dtypes never appear, and ``np.divide`` /
    ``np.true_divide`` are forbidden outright.  Presentation helpers
    whose *name* ends in ``_float`` are the blessed boundary where
    exact values become floats for display, and are exempt.
``DET001``
    Results must be reproducible run-to-run and identical across the
    in-process and process-pool execution paths: no module-level
    ``random.*`` calls, no legacy ``numpy.random`` global-state API, no
    unseeded ``default_rng()``, no wall-clock reads, and no iteration
    over sets where the order can leak into results (Python set order is
    arbitrary across processes — exactly the hazard of the
    ``SweepExecutor`` fan-out).
``LAYER001``
    Every simulation rides ``run(job, backend=...)`` so backends stay
    interchangeable and sweeps stay cacheable: the engine primitives
    (``Engine``, ``Port``, ``simulate_streams``) may only be invoked
    from ``repro.runner.backends`` and the blessed legacy shims.
``FROZEN001``
    ``SimJob``/``SimOutcome`` are frozen: cache keys and memoized
    outcomes assume value semantics, so ``object.__setattr__`` mutation
    of frozen instances is forbidden outside ``__init__``-family
    methods (the frozen-dataclass self-initialization idiom).
``OBS001``
    Monotonic-clock reads (``time.perf_counter`` and friends) inside
    the ``repro`` package are confined to ``repro.obs.trace`` — the one
    sanctioned timing boundary, off by default, whose readings can
    never flow into result values.  Benchmarks and tools outside the
    package time things however they like.

Three *project* rules (whole-program, run once per invocation on the
shared :class:`~repro.lint.index.ProjectIndex`) live here too:

``PAR001``
    Anything handed to a process pool (``.submit``/``.map`` in a module
    importing ``concurrent.futures`` or ``multiprocessing``) must be a
    module-level picklable callable — no lambdas, no bound methods, no
    nested functions, no call results, and no workers that mutate
    module globals (each pool process gets its own copy; mutations
    silently diverge).  ``REPRO_CHAOS_*`` env literals are confined to
    ``repro.runner.resilience``, the worker-side chaos boundary.
``OBS002``
    Metric/span names at instrumentation call sites must be
    ``repro.obs.names`` constants — the static complement to the
    runtime contract test, enforced even on never-executed paths.
``DEAD001``
    ``__all__`` entries of leaf modules that no other file references
    are dead surface: drop the export or the symbol.  Package
    ``__init__`` re-export lists are the curated public API and are
    exempt.

File rules scope themselves by the module's dotted name (fixture files
declare theirs with a ``# reprolint: module=`` directive); project
rules additionally consult the file's tree role.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .framework import (
    Finding,
    LintContext,
    ProjectRule,
    Rule,
    register_rule,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .index import ModuleInfo, ProjectIndex

__all__ = [
    "ClockBoundaryRule",
    "DeadExportRule",
    "DeterminismRule",
    "ExactnessRule",
    "FrozenMutationRule",
    "MetricNameRule",
    "PoolSafetyRule",
    "RunnerLayerRule",
]


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def build_import_map(ctx: LintContext) -> dict[str, str]:
    """Map local names to their dotted import origins.

    ``import numpy as np``               → ``{"np": "numpy"}``
    ``from numpy import random``         → ``{"random": "numpy.random"}``
    ``from ..sim.engine import Engine``  → ``{"Engine": "repro.sim.engine.Engine"}``

    Relative imports resolve against ``ctx.module`` when known; when the
    package is unknown the unresolved leading levels are dropped, so
    origin matching should compare by dotted *suffix*.
    """
    out: dict[str, str] = {}
    pkg_parts: list[str] = []
    if ctx.module:
        parts = ctx.module.split(".")
        pkg_parts = parts if ctx.is_package else parts[:-1]
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                out[bound] = origin
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                out[bound] = f"{base}.{alias.name}" if base else alias.name
    return out


def dotted_name(node: ast.expr) -> list[str] | None:
    """``a.b.c`` attribute chain as a list, or ``None`` for other shapes."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def resolve_call_origin(
    node: ast.Call, imports: dict[str, str]
) -> str | None:
    """Dotted origin of a call target, alias-resolved (best effort)."""
    chain = dotted_name(node.func)
    if not chain:
        return None
    head = imports.get(chain[0], chain[0])
    return ".".join([head, *chain[1:]])


class _ScopedVisitor(ast.NodeVisitor):
    """Visitor that tracks the enclosing function-name stack."""

    def __init__(self) -> None:
        self.func_stack: list[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node)

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func_stack.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self.func_stack.pop()


# ----------------------------------------------------------------------
# EXACT001
# ----------------------------------------------------------------------
#: NumPy constructors whose default dtype is float64 or a
#: platform-dependent integer — silent overflow / precision hazards on
#: the exact int64 state arrays of the batch core.
_NP_CONSTRUCTORS = frozenset({
    "zeros", "ones", "empty", "full", "arange", "array", "asarray",
})
#: The exact dtypes the state arrays may pin.
_NP_EXACT_DTYPES = frozenset({
    "numpy.int64", "numpy.bool_", "numpy.intp",
})
#: Float dtypes: forbidden anywhere on an exact path.
_NP_FLOAT_DTYPES = frozenset({
    "numpy.float16", "numpy.float32", "numpy.float64", "numpy.float128",
    "numpy.half", "numpy.single", "numpy.double", "numpy.longdouble",
    "numpy.floating",
})
#: ufuncs that produce floats from integer input.
_NP_FLOAT_CALLS = frozenset({"numpy.divide", "numpy.true_divide"})


@register_rule
class ExactnessRule(Rule):
    code = "EXACT001"
    name = "exact-fraction-arithmetic"
    description = (
        "No float literals, float()/complex() conversions, or true "
        "division in the exactness layers (repro.core, repro.runner, "
        "repro.analysis, repro.obs); NumPy state arrays pin exact "
        "dtypes (np.int64/np.bool_/np.intp) and never touch float "
        "dtypes or np.divide; *_float helpers are the blessed "
        "presentation boundary."
    )

    SCOPES = ("repro.core", "repro.runner", "repro.analysis", "repro.obs")

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_package(*self.SCOPES)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        rule = self
        imports = build_import_map(ctx)

        class V(_ScopedVisitor):
            def __init__(self) -> None:
                super().__init__()
                self.found: list[Finding] = []

            def _visit_func(self, node):  # type: ignore[override]
                if node.name.endswith("_float"):
                    return  # blessed presentation helper: skip subtree
                super()._visit_func(node)

            def visit_Constant(self, node: ast.Constant) -> None:
                if type(node.value) is float:
                    self.found.append(rule.finding(
                        ctx, node,
                        f"float literal {node.value!r} on an exact path; "
                        "use Fraction or move it behind a *_float helper",
                    ))
                elif type(node.value) is complex:
                    self.found.append(rule.finding(
                        ctx, node,
                        f"complex literal {node.value!r} on an exact path",
                    ))

            def visit_Attribute(self, node: ast.Attribute) -> None:
                chain = dotted_name(node)
                if chain is not None:
                    head = imports.get(chain[0], chain[0])
                    origin = ".".join([head, *chain[1:]])
                    if origin in _NP_FLOAT_DTYPES:
                        self.found.append(rule.finding(
                            ctx, node,
                            f"float dtype {origin} on an exact path; the "
                            "state arrays stay np.int64/np.bool_ and "
                            "bandwidth stays Fraction at the boundary",
                        ))
                self.generic_visit(node)

            def _check_numpy_call(self, node: ast.Call) -> None:
                origin = resolve_call_origin(node, imports)
                if origin is None:
                    return
                if origin in _NP_FLOAT_CALLS:
                    self.found.append(rule.finding(
                        ctx, node,
                        f"{origin}() produces floats from integer "
                        "arrays; use Fraction(a, b) or // at the "
                        "boundary",
                    ))
                    return
                parts = origin.split(".")
                if (
                    len(parts) == 2
                    and parts[0] == "numpy"
                    and parts[1] in _NP_CONSTRUCTORS
                ):
                    dtype = next(
                        (k.value for k in node.keywords if k.arg == "dtype"),
                        None,
                    )
                    if dtype is None:
                        self.found.append(rule.finding(
                            ctx, node,
                            f"numpy.{parts[1]}() without an explicit "
                            "dtype defaults to float64 or a "
                            "platform-dependent integer; pin "
                            "dtype=np.int64 (or np.bool_/np.intp)",
                        ))
                        return
                    chain = dotted_name(dtype)
                    resolved = None
                    if chain is not None:
                        head = imports.get(chain[0], chain[0])
                        resolved = ".".join([head, *chain[1:]])
                    if resolved in _NP_FLOAT_DTYPES:
                        return  # visit_Attribute already flags it
                    if resolved not in _NP_EXACT_DTYPES:
                        self.found.append(rule.finding(
                            ctx, node,
                            f"numpy.{parts[1]}() dtype is not an exact "
                            "dtype; pin dtype=np.int64 (or "
                            "np.bool_/np.intp) so state arrays cannot "
                            "silently overflow or go float",
                        ))

            def visit_Call(self, node: ast.Call) -> None:
                if isinstance(node.func, ast.Name) and node.func.id in (
                    "float", "complex",
                ):
                    self.found.append(rule.finding(
                        ctx, node,
                        f"{node.func.id}() conversion on an exact path; "
                        "keep Fraction, or rename the enclosing helper "
                        "to *_float",
                    ))
                self._check_numpy_call(node)
                self.generic_visit(node)

            def visit_BinOp(self, node: ast.BinOp) -> None:
                if isinstance(node.op, ast.Div):
                    self.found.append(rule.finding(
                        ctx, node,
                        "true division on an exact path silently "
                        "produces a float on integers; use "
                        "Fraction(a, b) or a // b",
                    ))
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                if isinstance(node.op, ast.Div):
                    self.found.append(rule.finding(
                        ctx, node,
                        "in-place true division on an exact path; use "
                        "Fraction or //=",
                    ))
                self.generic_visit(node)

        v = V()
        v.visit(ctx.tree)
        yield from v.found


# ----------------------------------------------------------------------
# DET001
# ----------------------------------------------------------------------
#: Order-sensitive consumers: feeding them a set leaks arbitrary order
#: into results (sorted()/len()/min()/max()/sum() are order-free).
_ORDER_SENSITIVE_CALLS = frozenset(
    {"list", "tuple", "iter", "enumerate", "zip"}
)
#: numpy.random legacy API — global-state, seed-order-dependent.
_NUMPY_LEGACY = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "shuffle", "permutation", "normal", "uniform", "bytes",
})
_WALLCLOCK = frozenset({
    "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


def _is_set_valued(node: ast.expr, imports: dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        name = imports.get(node.func.id, node.func.id)
        return name in ("set", "frozenset")
    return False


@register_rule
class DeterminismRule(Rule):
    code = "DET001"
    name = "deterministic-results"
    description = (
        "No unseeded/global RNG state, no wall-clock reads, and no "
        "set-iteration-order leaking into ordered results."
    )

    def applies_to(self, ctx: LintContext) -> bool:
        # Result determinism is a repro-package invariant; tests and
        # tools may read clocks and roll dice however they like.
        return ctx.in_package("repro")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        imports = build_import_map(ctx)
        rule = self

        class V(_ScopedVisitor):
            def __init__(self) -> None:
                super().__init__()
                self.found: list[Finding] = []

            def visit_Call(self, node: ast.Call) -> None:
                origin = resolve_call_origin(node, imports)
                if origin is not None:
                    self._check_origin(node, origin)
                if (
                    isinstance(node.func, ast.Name)
                    and imports.get(node.func.id, node.func.id)
                    in _ORDER_SENSITIVE_CALLS
                    and node.args
                    and any(_is_set_valued(a, imports) for a in node.args)
                ):
                    self.found.append(rule.finding(
                        ctx, node,
                        f"{node.func.id}() over a set leaks arbitrary "
                        "iteration order into results; sort first "
                        "(sorted(...)) or keep a list",
                    ))
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and _is_set_valued(node.args[0], imports)
                ):
                    self.found.append(rule.finding(
                        ctx, node,
                        "str.join over a set produces order-dependent "
                        "output; sort first",
                    ))
                self.generic_visit(node)

            def _check_origin(self, node: ast.Call, origin: str) -> None:
                parts = origin.split(".")
                if origin in _WALLCLOCK:
                    self.found.append(rule.finding(
                        ctx, node,
                        f"wall-clock read {origin}() in a result path "
                        "makes runs irreproducible; thread timestamps "
                        "in explicitly (time.perf_counter is fine for "
                        "benchmark timing)",
                    ))
                elif parts[0] == "random" and len(parts) == 2:
                    if parts[1] not in ("Random", "SystemRandom"):
                        self.found.append(rule.finding(
                            ctx, node,
                            f"module-level random.{parts[1]}() uses the "
                            "shared unseeded RNG; construct "
                            "random.Random(seed) instead",
                        ))
                elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
                    if parts[2] in _NUMPY_LEGACY:
                        self.found.append(rule.finding(
                            ctx, node,
                            f"legacy numpy.random.{parts[2]}() mutates "
                            "global RNG state; use "
                            "numpy.random.default_rng(seed)",
                        ))
                    elif parts[2] == "default_rng" and not (
                        node.args or node.keywords
                    ):
                        self.found.append(rule.finding(
                            ctx, node,
                            "default_rng() without a seed is "
                            "irreproducible; pass an explicit seed",
                        ))

            def visit_For(self, node: ast.For) -> None:
                self._check_iter(node.iter)
                self.generic_visit(node)

            def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
                self._check_iter(node.iter)
                self.generic_visit(node)

            def visit_comprehension_iters(self, node: ast.expr) -> None:
                pass

            def _check_iter(self, iter_node: ast.expr) -> None:
                if _is_set_valued(iter_node, imports):
                    self.found.append(rule.finding(
                        ctx, iter_node,
                        "iterating a set in arbitrary order; wrap in "
                        "sorted(...) if the loop feeds ordered results",
                    ))

            def _visit_comp(self, node) -> None:
                for gen in node.generators:
                    self._check_iter(gen.iter)
                self.generic_visit(node)

            visit_ListComp = _visit_comp
            visit_SetComp = _visit_comp
            visit_DictComp = _visit_comp
            visit_GeneratorExp = _visit_comp

        v = V()
        v.visit(ctx.tree)
        yield from v.found


# ----------------------------------------------------------------------
# LAYER001
# ----------------------------------------------------------------------
@register_rule
class RunnerLayerRule(Rule):
    code = "LAYER001"
    name = "runner-layer-discipline"
    description = (
        "Engine primitives (Engine, Port, simulate_streams) may only be "
        "invoked from repro.runner.backends and the blessed legacy "
        "shims; everything else rides run(job, backend=...) and the "
        "SweepExecutor."
    )

    #: Modules allowed to touch the engine directly: the backend layer
    #: itself, the engine internals, and the byte-compatible legacy
    #: shims (kept for PriorityRule *instances*, which cannot ride in a
    #: hashable SimJob).  ``repro.runner.fastsim`` is the flat-array
    #: core the fast backend runs on — an engine primitive in its own
    #: right, blessed for the same reason ``repro.sim.engine`` is —
    #: and ``repro.runner.batchsim`` is its structure-of-arrays twin.
    BLESSED = frozenset({
        "repro.runner.backends",
        "repro.runner.fastsim",
        "repro.runner.batchsim",
        "repro.sim.engine",
        "repro.sim.port",
        "repro.sim.pairs",
        "repro.sim.multi",
        "repro.sim.statespace",
    })

    #: Call origins that bypass the runner layer (matched by suffix so
    #: relative imports resolve identically).  The fastsim core joins
    #: the historical engine primitives: calling ``FlatSim`` or the
    #: steady-cycle detector directly skips backend checking and the
    #: executor's cache, exactly like constructing an ``Engine``.  The
    #: batch core's entry points bypass the same way — and additionally
    #: skip the error/fallback bookkeeping only ``BatchBackend`` does.
    TARGET_SUFFIXES = (
        "sim.engine.Engine",
        "sim.engine.simulate_streams",
        "sim.port.Port",
        "runner.fastsim.FlatSim",
        "runner.fastsim.find_steady_cycle",
        "runner.batchsim.BatchSim",
        "runner.batchsim.run_steady_batch",
        "runner.batchsim.run_span_batch",
    )

    def applies_to(self, ctx: LintContext) -> bool:
        if ctx.module in self.BLESSED:
            return False
        # tools/ write committed artifacts, so they ride the runner
        # like package code; tests must construct engines to test them.
        return ctx.in_package("repro") or ctx.role == "tools"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        imports = build_import_map(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call_origin(node, imports)
            if origin is None:
                continue
            for suffix in self.TARGET_SUFFIXES:
                if origin == suffix or origin.endswith("." + suffix):
                    short = suffix.rsplit(".", 1)[-1]
                    yield self.finding(
                        ctx, node,
                        f"direct {short}() call bypasses the runner "
                        "layer; build a SimJob and call "
                        "run(job, backend=...) so the result is "
                        "backend-checked and cacheable",
                    )
                    break


# ----------------------------------------------------------------------
# OBS001
# ----------------------------------------------------------------------
@register_rule
class ClockBoundaryRule(Rule):
    code = "OBS001"
    name = "clock-boundary"
    description = (
        "Monotonic-clock reads (time.perf_counter[_ns], "
        "time.monotonic[_ns], time.process_time[_ns]) in the repro "
        "package are confined to repro.obs.trace, the sanctioned span "
        "timing boundary."
    )

    #: The one module allowed to read the clock: span timing is off by
    #: default and its readings never reach a result value.
    BLESSED = frozenset({"repro.obs.trace"})

    #: Monotonic clocks (wall clocks are DET001's business).
    CLOCKS = frozenset({
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "time.thread_time", "time.thread_time_ns",
    })

    def applies_to(self, ctx: LintContext) -> bool:
        if ctx.module in self.BLESSED:
            return False
        return ctx.in_package("repro")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        imports = build_import_map(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call_origin(node, imports)
            if origin in self.CLOCKS:
                yield self.finding(
                    ctx, node,
                    f"{origin}() outside repro.obs.trace; ad-hoc timing "
                    "fragments the observability contract — wrap the "
                    "region in repro.obs.trace.span(...) instead",
                )


# ----------------------------------------------------------------------
# FROZEN001
# ----------------------------------------------------------------------
@register_rule
class FrozenMutationRule(Rule):
    code = "FROZEN001"
    name = "no-frozen-mutation"
    description = (
        "No object.__setattr__/__delattr__ mutation of frozen instances "
        "outside __init__-family methods: SimJob/SimOutcome identity "
        "backs cache keys and memoized outcomes."
    )

    #: The frozen-dataclass self-initialization idiom is legitimate.
    ALLOWED_SCOPES = frozenset({
        "__init__", "__post_init__", "__new__", "__setstate__",
    })

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        rule = self

        class V(_ScopedVisitor):
            def __init__(self) -> None:
                super().__init__()
                self.found: list[Finding] = []

            def visit_Call(self, node: ast.Call) -> None:
                chain = dotted_name(node.func)
                if (
                    chain is not None
                    and len(chain) == 2
                    and chain[0] == "object"
                    and chain[1] in ("__setattr__", "__delattr__")
                    and not (
                        self.func_stack
                        and self.func_stack[-1] in rule.ALLOWED_SCOPES
                    )
                ):
                    self.found.append(rule.finding(
                        ctx, node,
                        f"object.{chain[1]}() mutates a frozen instance; "
                        "frozen jobs/outcomes back cache identities — "
                        "build a new instance with dataclasses.replace()",
                    ))
                self.generic_visit(node)

        v = V()
        v.visit(ctx.tree)
        yield from v.found


# ----------------------------------------------------------------------
# PAR001
# ----------------------------------------------------------------------
@register_rule
class PoolSafetyRule(ProjectRule):
    code = "PAR001"
    name = "process-pool-safety"
    description = (
        "Callables handed to a process pool (.submit/.map) must be "
        "module-level picklable functions that mutate no module "
        "globals; REPRO_CHAOS_* env literals are confined to "
        "repro.runner.resilience."
    )

    #: Executor/pool dispatch methods whose first argument crosses the
    #: pickle boundary.
    POOL_METHODS = frozenset({"submit", "map"})
    #: The one worker-side module allowed to spell chaos env names.
    CHAOS_HOME = "repro.runner.resilience"
    CHAOS_PREFIX = "REPRO_CHAOS"

    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        for info in project.repro_modules():
            if info.role != "src":
                continue
            yield from self._check_chaos_literals(info)
            if self._imports_pools(info):
                yield from self._check_dispatch_sites(project, info)

    def _imports_pools(self, info: "ModuleInfo") -> bool:
        for edge in info.imports:
            if edge.origin == "multiprocessing" or edge.origin.startswith(
                ("multiprocessing.", "concurrent.futures")
            ):
                return True
        return False

    def _check_chaos_literals(
        self, info: "ModuleInfo"
    ) -> Iterator[Finding]:
        if info.module == self.CHAOS_HOME or info.package == "lint":
            return  # the analyzer itself spells the pattern it detects
        for node in ast.walk(info.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value.startswith(self.CHAOS_PREFIX)
            ):
                yield Finding(
                    path=info.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.code,
                    message=(
                        f"chaos env literal {node.value!r} outside "
                        f"{self.CHAOS_HOME}; import the named constant "
                        "so fault injection stays confined to the "
                        "worker-side boundary"
                    ),
                )

    def _check_dispatch_sites(
        self, project: "ProjectIndex", info: "ModuleInfo"
    ) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if (
                not isinstance(node, ast.Call)
                or not isinstance(node.func, ast.Attribute)
                or node.func.attr not in self.POOL_METHODS
                or not node.args
            ):
                continue
            message = self._worker_problem(project, info, node.args[0])
            if message is not None:
                yield Finding(
                    path=info.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.code,
                    message=message,
                )

    def _worker_problem(
        self,
        project: "ProjectIndex",
        info: "ModuleInfo",
        arg: ast.expr,
    ) -> str | None:
        if isinstance(arg, ast.Lambda):
            return (
                "lambda submitted to a process pool is not picklable; "
                "define a module-level worker function"
            )
        if isinstance(arg, ast.Call):
            return (
                "call-result worker (e.g. partial(...)) submitted to a "
                "process pool; submit a module-level function and pass "
                "its arguments through the pool instead"
            )
        if isinstance(arg, ast.Attribute):
            chain = dotted_name(arg)
            if chain is None:
                return None
            if chain[0] in ("self", "cls"):
                return (
                    "bound-method worker is not picklable across the "
                    "pool boundary; hoist the work into a module-level "
                    "function"
                )
            head = info.import_map.get(chain[0], chain[0])
            return self._resolved_problem(
                project, ".".join([head, *chain[1:]])
            )
        if isinstance(arg, ast.Name):
            origin = info.import_map.get(arg.id)
            if origin is not None:
                return self._resolved_problem(project, origin)
            return self._symbol_problem(info, arg.id)
        return None

    def _resolved_problem(
        self, project: "ProjectIndex", origin: str
    ) -> str | None:
        target = project.resolve_module(origin)
        if target is None or origin == target.module:
            return None  # external or whole-module reference
        symbol = origin[len(target.module) + 1 :].split(".")[0]
        return self._symbol_problem(target, symbol)

    def _symbol_problem(
        self, info: "ModuleInfo", symbol: str
    ) -> str | None:
        if symbol in info.global_mutators:
            return (
                f"worker {symbol}() mutates module globals via "
                "`global`; each pool process gets its own copy, so the "
                "mutation silently diverges — thread state through "
                "arguments and return values"
            )
        if symbol in info.symbols:
            return None
        if symbol in info.nested_functions:
            return (
                f"nested function {symbol}() is not picklable across "
                "the pool boundary; hoist it to module level"
            )
        return None


# ----------------------------------------------------------------------
# OBS002
# ----------------------------------------------------------------------
@register_rule
class MetricNameRule(ProjectRule):
    code = "OBS002"
    name = "metric-name-constants"
    description = (
        "Metric/span names at instrumentation call sites "
        "(.counter/.gauge/.histogram/.span) must be repro.obs.names "
        "constants, not inline strings — the static complement to the "
        "runtime metrics contract test."
    )

    METHODS = frozenset({"counter", "gauge", "histogram", "span"})
    NAMES_MODULE = "repro.obs.names"

    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        names_info = project.by_module.get(self.NAMES_MODULE)
        known = names_info.symbols if names_info is not None else None
        for info in project.repro_modules():
            if info.role != "src" or info.module.startswith("repro.obs"):
                continue
            yield from self._check_imports(info, known)
            yield from self._check_call_sites(info, known)

    def _check_imports(
        self, info: "ModuleInfo", known: frozenset[str] | None
    ) -> Iterator[Finding]:
        if known is None:
            return
        prefix = self.NAMES_MODULE + "."
        for edge in info.imports:
            if not edge.origin.startswith(prefix):
                continue
            symbol = edge.origin[len(prefix) :]
            if "." not in symbol and symbol not in known:
                yield Finding(
                    path=info.path,
                    line=edge.lineno,
                    col=0,
                    rule=self.code,
                    message=(
                        f"{self.NAMES_MODULE}.{symbol} does not exist; "
                        "instrumentation names come from the contract "
                        "in repro.obs.names"
                    ),
                )

    def _check_call_sites(
        self, info: "ModuleInfo", known: frozenset[str] | None
    ) -> Iterator[Finding]:
        prefix = self.NAMES_MODULE + "."
        for node in ast.walk(info.tree):
            if (
                not isinstance(node, ast.Call)
                or not isinstance(node.func, ast.Attribute)
                or node.func.attr not in self.METHODS
                or not node.args
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                yield Finding(
                    path=info.path,
                    line=arg.lineno,
                    col=arg.col_offset,
                    rule=self.code,
                    message=(
                        f"inline instrumentation name {arg.value!r}; "
                        "add a constant to repro.obs.names and use it "
                        "so the metrics contract test can see the name"
                    ),
                )
                continue
            chain = dotted_name(arg) if isinstance(arg, ast.Attribute) else None
            if chain is None or known is None:
                continue  # bare names: the runtime contract test's job
            head = info.import_map.get(chain[0], chain[0])
            origin = ".".join([head, *chain[1:]])
            if origin.startswith(prefix):
                symbol = origin[len(prefix) :]
                if "." not in symbol and symbol not in known:
                    yield Finding(
                        path=info.path,
                        line=arg.lineno,
                        col=arg.col_offset,
                        rule=self.code,
                        message=(
                            f"{origin} does not exist in "
                            "repro.obs.names; instrumentation names "
                            "come from the contract module"
                        ),
                    )


# ----------------------------------------------------------------------
# DEAD001
# ----------------------------------------------------------------------
@register_rule
class DeadExportRule(ProjectRule):
    code = "DEAD001"
    name = "dead-exports"
    description = (
        "__all__ entries of leaf modules referenced nowhere else in "
        "the project are dead public surface; drop the export or the "
        "symbol (package __init__ re-export lists are the curated API "
        "and are exempt)."
    )

    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        for info in project.repro_modules():
            if info.role != "src" or info.is_package or info.exports is None:
                continue
            for symbol in info.exports:
                if not project.is_used_elsewhere(info.module, symbol):
                    yield Finding(
                        path=info.path,
                        line=info.export_lines.get(symbol, 1),
                        col=0,
                        rule=self.code,
                        message=(
                            f"{info.module}.{symbol} is in __all__ but "
                            "referenced nowhere else in the project; "
                            "drop the export or delete the symbol"
                        ),
                    )
