"""SARIF 2.1.0 renderer for reprolint reports.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what GitHub code scanning ingests: emitting it turns every reprolint
finding into an annotated line in the PR diff.  The document shape is
the minimal conforming subset — one ``run``, the full rule catalog in
``tool.driver.rules``, one ``result`` per finding with a physical
location — validated structurally by ``tests/lint/test_sarif.py``
against a vendored slice of the 2.1.0 schema.

Columns: reprolint stores 0-based columns (CPython ``col_offset``);
SARIF columns are 1-based, so ``startColumn = col + 1``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from .framework import (
    PARSE_ERROR_CODE,
    UNUSED_SUPPRESSION_CODE,
    LintReport,
    ProjectRule,
    Rule,
    all_rules,
)

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif", "to_sarif_dict"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Pseudo-rules the driver emits without a registered Rule instance.
_PSEUDO_RULES: tuple[tuple[str, str], ...] = (
    (PARSE_ERROR_CODE, "file does not parse"),
    (UNUSED_SUPPRESSION_CODE, "suppression waives nothing"),
)


def _rule_catalog(
    rules: Sequence[Rule | ProjectRule] | None,
) -> list[dict[str, object]]:
    active = list(rules) if rules is not None else list(all_rules())
    catalog: list[dict[str, object]] = []
    for rule in active:
        catalog.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
            }
        )
    for code, text in _PSEUDO_RULES:
        catalog.append(
            {
                "id": code,
                "name": code.lower(),
                "shortDescription": {"text": text},
            }
        )
    return catalog


def _artifact_uri(path: str, root: str | None) -> str:
    p = Path(path)
    if root is not None:
        try:
            return p.resolve().relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            pass
    return p.as_posix()


def to_sarif_dict(
    report: LintReport,
    *,
    rules: Sequence[Rule | ProjectRule] | None = None,
) -> dict[str, object]:
    """SARIF 2.1.0 document for one lint run."""
    rule_catalog = _rule_catalog(rules)
    rule_index = {r["id"]: i for i, r in enumerate(rule_catalog)}
    results: list[dict[str, object]] = []
    for f in report.findings:
        result: dict[str, object] = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _artifact_uri(f.path, report.root),
                        },
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rule_catalog,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(
    report: LintReport,
    *,
    rules: Sequence[Rule | ProjectRule] | None = None,
) -> str:
    return (
        json.dumps(to_sarif_dict(report, rules=rules), indent=2, sort_keys=True)
        + "\n"
    )
