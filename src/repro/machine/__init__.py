"""Cray X-MP machine model (the paper's measurement platform).

``instructions``
    Strip-mined vector loads/stores and port kinds.
``cpu``
    Per-CPU issue logic, chaining, background streams.
``scheduler``
    Machine loop coupling CPUs to the memory engine.
``workloads``
    The Section IV triad and the unit-stride competitor program.
``xmp``
    The assembled 2-CPU, 16-bank, ``n_c = 4`` machine and the
    Fig. 10 experiment drivers.
"""

from .builder import VP200_SPEC, XMP_SPEC, MachineSpec, build_machine, run_on
from .cpu import CpuModel, CpuPort
from .experiments import DuelResult, contention_matrix, dueling_triads
from .instructions import VECTOR_LENGTH, PortKind, VectorInstruction
from .scheduler import MachineRunResult, MachineSimulation
from .timeline import port_utilisation, render_timeline
from .workloads import (
    TRIAD_IDIM,
    TRIAD_N,
    strided_background,
    triad_program,
    unit_stride_background,
)
from .loopgen import compile_loop, word_stride
from .kernels import (
    copy_program,
    daxpy_program,
    matrix_sweep_program,
    scale_program,
    sum_program,
)
from .xmp import (
    XMP_CONFIG,
    TriadResult,
    build_xmp,
    run_program,
    run_triad,
    triad_sweep,
)

__all__ = [
    "CpuModel",
    "MachineSpec",
    "DuelResult",
    "CpuPort",
    "MachineRunResult",
    "MachineSimulation",
    "PortKind",
    "TRIAD_IDIM",
    "TRIAD_N",
    "TriadResult",
    "VECTOR_LENGTH",
    "VP200_SPEC",
    "XMP_SPEC",
    "VectorInstruction",
    "XMP_CONFIG",
    "build_machine",
    "compile_loop",
    "build_xmp",
    "contention_matrix",
    "dueling_triads",
    "copy_program",
    "daxpy_program",
    "matrix_sweep_program",
    "port_utilisation",
    "run_on",
    "render_timeline",
    "run_program",
    "run_triad",
    "scale_program",
    "sum_program",
    "strided_background",
    "triad_program",
    "triad_sweep",
    "unit_stride_background",
    "word_stride",
]
