"""Generic vector-machine assembly, plus the Fujitsu VP preset.

The introduction names two machines "of special interest": the Cray
X-MP *and* the Fujitsu VP-100/VP-200 [7].  The X-MP is hard-wired in
:mod:`repro.machine.xmp`; this module generalises the assembly so any
port topology can be described, and provides a VP-200-flavoured preset:

* **single CPU** (the VP was a uniprocessor attached to a host),
* **two load/store pipes** — each pipe can carry loads *or* stores
  (unlike the X-MP's dedicated 2-read/1-write split),
* wider interleave (the VP-200 shipped with up to 128-way interleaved
  static-RAM storage; the preset uses 32 banks with ``n_c = 4`` to stay
  comparable to the 16-bank X-MP baseline), and
* longer vector registers (up to 1024 elements; preset strip-mines at
  256).

The point of the preset is architectural comparison under the *same*
conflict model, not a cycle-faithful VP — documented as such.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.config import MemoryConfig
from ..sim.port import Port
from ..sim.priority import PriorityRule
from .cpu import CpuModel, CpuPort
from .instructions import PortKind
from .scheduler import MachineSimulation

__all__ = [
    "MachineSpec",
    "build_machine",
    "run_on",
    "XMP_SPEC",
    "VP200_SPEC",
]


@dataclass(frozen=True)
class MachineSpec:
    """Declarative description of a vector machine.

    ``port_kinds`` lists, per CPU, the kind of each memory port.  A
    ``PortKind.READ`` port serves loads, ``PortKind.WRITE`` stores; a
    load/store *pipe* that serves both is modelled as the pair
    appearing in preference order — the issue logic simply looks for an
    idle port of the matching kind, so machines with flexible pipes
    declare one kind per direction they can sustain concurrently.
    """

    name: str
    config: MemoryConfig
    port_kinds: tuple[tuple[PortKind, ...], ...]
    vector_length: int
    chain_latency: int = 8

    def __post_init__(self) -> None:
        if not self.port_kinds:
            raise ValueError("machine needs at least one CPU")
        if any(not kinds for kinds in self.port_kinds):
            raise ValueError("every CPU needs at least one port")
        if self.vector_length <= 0:
            raise ValueError("vector length must be positive")
        if self.chain_latency < 0:
            raise ValueError("chain latency must be non-negative")

    @property
    def cpus(self) -> int:
        return len(self.port_kinds)

    @property
    def total_ports(self) -> int:
        return sum(len(k) for k in self.port_kinds)


def build_machine(
    spec: MachineSpec,
    *,
    priority: PriorityRule | str = "cyclic",
    trace: bool = False,
) -> MachineSimulation:
    """Instantiate an empty machine from a spec."""
    cpus: list[CpuModel] = []
    index = 0
    for cpu_id, kinds in enumerate(spec.port_kinds):
        slots = []
        for kind in kinds:
            slots.append(
                # Machine assembly wires finite instruction workloads,
                # which the infinite-stream SimJob cannot express.
                CpuPort(port=Port(index=index, cpu=cpu_id), kind=kind)  # reprolint: disable=LAYER001
            )
            index += 1
        cpus.append(
            CpuModel(cpu_id, slots, chain_latency=spec.chain_latency)
        )
    return MachineSimulation(
        spec.config, cpus, priority=priority, trace=trace
    )


#: The measured machine: 2 CPUs x (2 read + 1 write), 16 banks, n_c=4.
XMP_SPEC = MachineSpec(
    name="Cray X-MP (2 CPU, 16 banks)",
    config=MemoryConfig(banks=16, bank_cycle=4, sections=4),
    port_kinds=(
        (PortKind.READ, PortKind.READ, PortKind.WRITE),
        (PortKind.READ, PortKind.READ, PortKind.WRITE),
    ),
    vector_length=64,
)

#: A VP-200-flavoured uniprocessor: two flexible load/store pipes
#: (modelled as READ+WRITE pairs), 32-way interleave, VL = 256.
VP200_SPEC = MachineSpec(
    name="Fujitsu VP-200-like (1 CPU, 32 banks)",
    config=MemoryConfig(banks=32, bank_cycle=4, sections=8),
    port_kinds=(
        (PortKind.READ, PortKind.READ, PortKind.WRITE, PortKind.WRITE),
    ),
    vector_length=256,
)


def run_on(
    spec: MachineSpec,
    program: list,
    *,
    cpu: int = 0,
    background: dict[int, dict[int, object]] | None = None,
    priority: PriorityRule | str = "cyclic",
    max_cycles: int = 2_000_000,
):
    """Run an instruction program on one CPU of a described machine.

    ``background`` optionally maps *other* CPU ids to their
    port-position → infinite-stream assignments (as
    :meth:`CpuModel.set_background` expects).  Returns the
    :class:`~repro.machine.scheduler.MachineRunResult`.
    """
    machine = build_machine(spec, priority=priority)
    if not 0 <= cpu < spec.cpus:
        raise ValueError(f"cpu {cpu} outside 0..{spec.cpus - 1}")
    machine.cpus[cpu].load_program(program)
    if background:
        for cpu_id, streams in background.items():
            if cpu_id == cpu:
                raise ValueError("background must target a different CPU")
            machine.cpus[cpu_id].set_background(
                streams, spec.config.banks
            )
    return machine.run_until_programs_finish(max_cycles=max_cycles)
