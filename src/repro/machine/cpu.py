"""CPU model: ports, in-order issue, chaining.

Each CPU owns a fixed set of memory ports (two read, one write on the
X-MP) and runs one *program* — a dependency-ordered list of
:class:`~repro.machine.instructions.VectorInstruction`.  Issue rules:

* an instruction may issue once every dependency has completed at least
  ``chain_latency`` clocks earlier (the functional-unit pipeline between
  a load's last element and the dependent store's first element);
* it needs an idle port of its kind; with several idle candidates the
  lowest-indexed is used;
* at most one instruction issues per port per clock, and issue happens
  at a clock boundary *before* arbitration, so a freshly issued stream
  makes its first request in the same clock period.

Instead of a program, a port can carry a *background* infinite stream —
how the Section IV experiment models "the other CPU", whose tailored
program keeps all three of its ports streaming with distance 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.stream import AccessStream
from ..sim.port import Port
from .instructions import PortKind, VectorInstruction

__all__ = ["CpuPort", "CpuModel"]


@dataclass
class CpuPort:
    """A machine port: engine-level :class:`Port` plus its kind."""

    port: Port
    kind: PortKind
    #: uid of the instruction currently draining through this port.
    current_uid: int | None = None


class CpuModel:
    """One CPU: ports plus an instruction program (or background load)."""

    def __init__(
        self,
        cpu_id: int,
        ports: list[CpuPort],
        *,
        chain_latency: int = 8,
    ) -> None:
        if not ports:
            raise ValueError("CPU needs at least one port")
        if any(p.port.cpu != cpu_id for p in ports):
            raise ValueError("all ports must belong to this CPU")
        if chain_latency < 0:
            raise ValueError("chain latency must be non-negative")
        self.cpu_id = cpu_id
        self.ports = ports
        self.chain_latency = chain_latency
        self._program: list[VectorInstruction] = []
        self._by_uid: dict[int, VectorInstruction] = {}
        self._issued: set[int] = set()
        self._completed: dict[int, int] = {}  # uid -> completion clock
        self._issue_clock: dict[int, int] = {}
        self._port_of: dict[int, int] = {}  # uid -> port position

    # ------------------------------------------------------------------
    # Program loading
    # ------------------------------------------------------------------
    def load_program(self, program: list[VectorInstruction]) -> None:
        """Attach a program; uids must be unique, deps must resolve."""
        uids = [i.uid for i in program]
        if len(set(uids)) != len(uids):
            raise ValueError("duplicate instruction uids")
        known = set(uids)
        for instr in program:
            for dep in instr.depends_on:
                if dep not in known:
                    raise ValueError(
                        f"{instr.name} depends on unknown uid {dep}"
                    )
        self._program = list(program)
        self._by_uid = {i.uid: i for i in program}
        self._issued.clear()
        self._completed.clear()
        self._issue_clock.clear()
        self._port_of.clear()

    def set_background(self, streams: dict[int, AccessStream], m: int) -> None:
        """Assign infinite streams directly to ports (no program).

        ``streams`` maps a port position (index into this CPU's port
        list) to the stream it should drive forever.
        """
        for pos, stream in streams.items():
            if not stream.is_infinite:
                raise ValueError("background streams must be infinite")
            self.ports[pos].port.assign(stream.bound(m))
            self.ports[pos].current_uid = None

    # ------------------------------------------------------------------
    # Per-clock protocol (driven by the machine scheduler)
    # ------------------------------------------------------------------
    def _ready(self, instr: VectorInstruction, clock: int) -> bool:
        if instr.uid in self._issued:
            return False
        for dep in instr.depends_on:
            done = self._completed.get(dep)
            if done is None or clock < done + self.chain_latency:
                return False
        return True

    def issue(self, clock: int, m: int) -> list[VectorInstruction]:
        """Issue every ready instruction that finds an idle port.

        Returns the instructions issued this clock (for logging).
        In-order per port kind: candidates are scanned in program order,
        so a stalled older load blocks younger loads only when no port is
        free — matching the machine's ability to run independent loads on
        its two read ports out of lockstep.
        """
        issued: list[VectorInstruction] = []
        for instr in self._program:
            if not self._ready(instr, clock):
                continue
            slot = self._find_idle_port(instr.kind)
            if slot is None:
                continue
            slot.port.assign(instr.stream(m))
            slot.current_uid = instr.uid
            self._issued.add(instr.uid)
            self._issue_clock[instr.uid] = clock
            self._port_of[instr.uid] = self.ports.index(slot)
            issued.append(instr)
        return issued

    def _find_idle_port(self, kind: PortKind) -> CpuPort | None:
        for slot in self.ports:
            if slot.kind is kind and slot.port.idle and slot.current_uid is None:
                return slot
        return None

    def collect_completions(self, clock: int) -> list[VectorInstruction]:
        """After a simulated clock, retire instructions whose stream drained.

        A stream whose last element was granted in clock ``t`` completes
        at ``t`` (the port is idle again from ``t + 1``).
        """
        done: list[VectorInstruction] = []
        for slot in self.ports:
            if slot.current_uid is not None and slot.port.idle:
                uid = slot.current_uid
                self._completed[uid] = clock
                slot.current_uid = None
                done.append(self._by_uid[uid])
        return done

    # ------------------------------------------------------------------
    # Progress introspection
    # ------------------------------------------------------------------
    @property
    def program_finished(self) -> bool:
        """All program instructions completed (vacuously true if none)."""
        return len(self._completed) == len(self._program)

    def completion_clock(self, uid: int) -> int:
        return self._completed[uid]

    def issue_clock(self, uid: int) -> int:
        return self._issue_clock[uid]

    def port_of(self, uid: int) -> int:
        """Port position (within this CPU) an instruction issued on."""
        return self._port_of[uid]

    def timeline(self) -> list[tuple[str, int, int, int]]:
        """``(name, port position, issue clock, completion clock)`` per
        retired instruction, in issue order.  The raw material of the
        machine Gantt view (:mod:`repro.machine.timeline`)."""
        rows = []
        for instr in self._program:
            uid = instr.uid
            if uid in self._completed:
                rows.append(
                    (
                        instr.name,
                        self._port_of[uid],
                        self._issue_clock[uid],
                        self._completed[uid],
                    )
                )
        rows.sort(key=lambda r: (r[2], r[1]))
        return rows

    @property
    def last_completion(self) -> int:
        """Clock of the final retirement (program must be finished)."""
        if not self._program or not self.program_finished:
            raise RuntimeError("program not finished")
        return max(self._completed.values())
