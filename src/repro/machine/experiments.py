"""Further machine experiments (the paper's companion-study directions).

Section IV closes with "further experiments and their results are
described in [10]" — the authors' companion report on modelling,
measurement and simulation of X-MP memory interference.  That report is
not reproducible verbatim (unpublished at the paper's press time), but
its stated direction — richer interference scenarios between the two
CPUs — is; this module provides the two natural next experiments:

* :func:`dueling_triads` — *both* CPUs run the triad, with independent
  increments: the symmetric version of Fig. 10's asymmetric setup;
* :func:`contention_matrix` — the full (INC0, INC1) grid of CPU-0
  execution times, generalising Fig. 10(a)'s single d=1 competitor row.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.config import MemoryConfig
from ..memory.layout import triad_common_block
from ..sim.priority import PriorityRule
from ..sim.stats import ConflictKind
from .workloads import TRIAD_IDIM, triad_program
from .xmp import XMP_CONFIG, build_xmp

__all__ = ["DuelResult", "dueling_triads", "contention_matrix"]


@dataclass(frozen=True)
class DuelResult:
    """Outcome of two CPUs running triads concurrently.

    ``cycles_cpu0``/``cycles_cpu1`` are each CPU's own completion times
    (the machine runs until both finish; each CPU's last store defines
    its time).
    """

    inc0: int
    inc1: int
    cycles_cpu0: int
    cycles_cpu1: int
    total_cycles: int
    conflicts_cpu0: dict[str, int]
    conflicts_cpu1: dict[str, int]

    @property
    def imbalance(self) -> float:
        """Slower CPU's time over the faster's (1.0 = symmetric)."""
        lo = min(self.cycles_cpu0, self.cycles_cpu1)
        hi = max(self.cycles_cpu0, self.cycles_cpu1)
        return hi / max(1, lo)


def _conflict_summary(stats, ports) -> dict[str, int]:
    return {
        "bank": sum(stats.ports[p].episodes[ConflictKind.BANK] for p in ports),
        "section": sum(
            stats.ports[p].episodes[ConflictKind.SECTION] for p in ports
        ),
        "simultaneous": sum(
            stats.ports[p].episodes[ConflictKind.SIMULTANEOUS] for p in ports
        ),
    }


def dueling_triads(
    inc0: int,
    inc1: int,
    *,
    n: int = 512,
    config: MemoryConfig = XMP_CONFIG,
    chain_latency: int = 8,
    priority: PriorityRule | str = "cyclic",
    separate_commons: bool = True,
) -> DuelResult:
    """Run a triad on each CPU simultaneously.

    ``separate_commons=True`` gives each CPU its own COMMON block (CPU 1
    offset by one extra word so the start banks interleave); otherwise
    both operate on the same arrays — the worst case, every stream pair
    hitting the same start banks.
    """
    machine = build_xmp(
        config=config, chain_latency=chain_latency, priority=priority
    )
    cpu0, cpu1 = machine.cpus
    common0 = triad_common_block(TRIAD_IDIM)
    if separate_commons:
        common1 = triad_common_block(TRIAD_IDIM, base=4 * TRIAD_IDIM + 1)
    else:
        common1 = common0
    cpu0.load_program(triad_program(inc0, n=n, common=common0))
    cpu1.load_program(triad_program(inc1, n=n, common=common1))
    machine.run_until_programs_finish()

    stats = machine.engine.stats
    ports0 = [slot.port.index for slot in cpu0.ports]
    ports1 = [slot.port.index for slot in cpu1.ports]
    return DuelResult(
        inc0=inc0,
        inc1=inc1,
        cycles_cpu0=cpu0.last_completion + 1,
        cycles_cpu1=cpu1.last_completion + 1,
        total_cycles=machine.clock,
        conflicts_cpu0=_conflict_summary(stats, ports0),
        conflicts_cpu1=_conflict_summary(stats, ports1),
    )


def contention_matrix(
    incs0: list[int] | range,
    incs1: list[int] | range,
    *,
    n: int = 256,
    **kwargs,
) -> dict[tuple[int, int], DuelResult]:
    """The full (INC0, INC1) grid of :func:`dueling_triads` runs."""
    return {
        (i0, i1): dueling_triads(i0, i1, n=n, **kwargs)
        for i0 in incs0
        for i1 in incs1
    }
