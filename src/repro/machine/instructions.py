"""Vector memory instructions for the machine model.

The Section IV experiment executes Fortran vector loops; at the machine
level each loop iteration space is strip-mined into vector instructions
of at most one vector-register length (64 elements on the Cray X-MP),
each of which drives one memory port with a constant-stride stream.

Only the *memory* side is modelled in detail — arithmetic (the multiply
and add of the triad) is folded into a chain latency between the loads
and the dependent store, which is how memory-bound loops behave on the
real machine once chaining is established.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.stream import AccessStream

__all__ = ["PortKind", "VectorInstruction", "VECTOR_LENGTH"]

#: Cray X-MP vector register length (elements).
VECTOR_LENGTH = 64


class PortKind(enum.Enum):
    """Which kind of memory port an instruction needs.

    The Cray X-MP gives each CPU two read ports and one write port; a
    vector load may issue on any idle read port, a store only on the
    write port.
    """

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True, slots=True)
class VectorInstruction:
    """One strip-mined vector load or store.

    Attributes
    ----------
    uid:
        Program-unique id; dependencies reference it.
    name:
        Human-readable tag, e.g. ``"LOAD B[65:128:2]"``.
    kind:
        Required port kind.
    base:
        Word address of the first element.
    stride:
        Address increment between elements (the Fortran ``INC`` for a
        1-D sweep; eq. 33 for higher dimensions).
    length:
        Element count (``<= VECTOR_LENGTH`` in well-formed programs,
        but not enforced — the model generalises).
    depends_on:
        Uids of instructions whose *completion* must precede issue
        (plus the CPU's chain latency).
    """

    uid: int
    name: str
    kind: PortKind
    base: int
    stride: int
    length: int
    depends_on: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.uid < 0:
            raise ValueError("instruction uid must be non-negative")
        if self.base < 0:
            raise ValueError("base address must be non-negative")
        if self.stride <= 0:
            raise ValueError(
                "stride must be positive (model negative strides via "
                "their modular equivalent)"
            )
        if self.length <= 0:
            raise ValueError("length must be positive")

    def stream(self, m: int) -> AccessStream:
        """The bank-request stream this instruction drives.

        Under low-order interleaving an address stream of stride ``w``
        is a bank stream of distance ``w mod m`` starting at
        ``base mod m``.
        """
        return AccessStream(
            start_bank=self.base % m,
            stride=self.stride % m,
            length=self.length,
            label=self.name,
        )
