"""A small library of vector kernels for the machine model (extension).

The paper measures one kernel (the triad); its Section V discussion
reaches further — rows, columns and diagonals of Fortran arrays, safe
dimensioning.  These kernels make those scenarios executable on the
same X-MP model:

* ``copy``    — ``A(I) = B(I)``                    (1 load, 1 store)
* ``scale``   — ``A(I) = s * B(I)``                (1 load, 1 store)
* ``sum``     — ``s = s + A(I)``                   (1 load)
* ``daxpy``   — ``Y(I) = Y(I) + a * X(I)``         (2 loads, 1 store)
* ``triad``   — ``A(I) = B(I) + C(I)*D(I)``        (3 loads, 1 store;
  re-exported from :mod:`repro.machine.workloads`)
* ``matrix_sweep`` — strided walk over a column / row / diagonal of a
  2-D column-major array (eq. 33 distances).

All kernels strip-mine to the vector length and chain stores behind the
loads exactly like the triad generator.
"""

from __future__ import annotations

from ..core.fortran import ArraySpec
from ..memory.layout import CommonBlock
from .instructions import VECTOR_LENGTH, PortKind, VectorInstruction
from .workloads import triad_program

__all__ = [
    "copy_program",
    "scale_program",
    "sum_program",
    "daxpy_program",
    "matrix_sweep_program",
    # triad_program moved to repro.machine.workloads; the re-export here
    # keeps old imports working.
    # reprolint: disable-next=DEAD001 -- legacy alias
    "triad_program",
]


def _strip_mined(
    refs: list[tuple[str, str, int, int]],
    n: int,
    inc: int,
    vector_length: int,
) -> list[VectorInstruction]:
    """Generic strip-miner.

    ``refs`` rows are ``(op, name, base, stride_words)`` with ``op`` in
    {"load", "store"}; per segment all loads issue first and every store
    depends on all of that segment's loads.
    """
    if n <= 0:
        raise ValueError("element count must be positive")
    if inc <= 0:
        raise ValueError("increment must be positive")
    if vector_length <= 0:
        raise ValueError("vector length must be positive")
    program: list[VectorInstruction] = []
    uid = 0
    for seg_start in range(0, n, vector_length):
        seg_len = min(vector_length, n - seg_start)
        hi = seg_start + seg_len
        load_uids: list[int] = []
        stores: list[tuple[str, int, int]] = []
        for op, name, base, stride in refs:
            if op == "load":
                program.append(
                    VectorInstruction(
                        uid=uid,
                        name=f"LOAD {name}[{seg_start}:{hi}:{inc}]",
                        kind=PortKind.READ,
                        base=base + seg_start * stride,
                        stride=stride,
                        length=seg_len,
                    )
                )
                load_uids.append(uid)
                uid += 1
            elif op == "store":
                stores.append((name, base, stride))
            else:  # pragma: no cover - internal misuse
                raise ValueError(f"unknown op {op!r}")
        for name, base, stride in stores:
            program.append(
                VectorInstruction(
                    uid=uid,
                    name=f"STORE {name}[{seg_start}:{hi}:{inc}]",
                    kind=PortKind.WRITE,
                    base=base + seg_start * stride,
                    stride=stride,
                    length=seg_len,
                    depends_on=tuple(load_uids),
                )
            )
            uid += 1
    return program


def _bases(common: CommonBlock, names: list[str], needed: int) -> dict[str, int]:
    out = {}
    for name in names:
        spec = common[name]
        if spec.size < needed:
            raise ValueError(
                f"array {name} too small: needs {needed} words"
            )
        out[name] = spec.base
    return out


def copy_program(
    inc: int,
    *,
    n: int,
    common: CommonBlock,
    src: str = "B",
    dst: str = "A",
    vector_length: int = VECTOR_LENGTH,
) -> list[VectorInstruction]:
    """``A(I) = B(I)`` with increment ``inc``."""
    needed = 1 + (n - 1) * inc
    bases = _bases(common, [src, dst], needed)
    return _strip_mined(
        [("load", src, bases[src], inc), ("store", dst, bases[dst], inc)],
        n, inc, vector_length,
    )


def scale_program(
    inc: int,
    *,
    n: int,
    common: CommonBlock,
    src: str = "B",
    dst: str = "A",
    vector_length: int = VECTOR_LENGTH,
) -> list[VectorInstruction]:
    """``A(I) = s * B(I)`` — same memory behaviour as copy (the scalar
    multiply lives in the chain latency)."""
    return copy_program(
        inc, n=n, common=common, src=src, dst=dst, vector_length=vector_length
    )


def sum_program(
    inc: int,
    *,
    n: int,
    common: CommonBlock,
    src: str = "A",
    vector_length: int = VECTOR_LENGTH,
) -> list[VectorInstruction]:
    """``s = s + A(I)`` — a pure load stream (reduction in registers)."""
    needed = 1 + (n - 1) * inc
    bases = _bases(common, [src], needed)
    return _strip_mined(
        [("load", src, bases[src], inc)], n, inc, vector_length
    )


def daxpy_program(
    inc: int,
    *,
    n: int,
    common: CommonBlock,
    x: str = "B",
    y: str = "A",
    vector_length: int = VECTOR_LENGTH,
) -> list[VectorInstruction]:
    """``Y(I) = Y(I) + a*X(I)``: loads X and Y, stores Y."""
    needed = 1 + (n - 1) * inc
    bases = _bases(common, [x, y], needed)
    return _strip_mined(
        [
            ("load", x, bases[x], inc),
            ("load", y, bases[y], inc),
            ("store", y, bases[y], inc),
        ],
        n, inc, vector_length,
    )


def matrix_sweep_program(
    array: ArraySpec,
    sweep: str,
    *,
    n: int | None = None,
    store: bool = False,
    vector_length: int = VECTOR_LENGTH,
) -> list[VectorInstruction]:
    """Walk a column, row or diagonal of a 2-D column-major array.

    Element-address strides follow eq. (33): column ``1``, row ``J1``,
    diagonal ``J1 + 1``.  ``store=True`` writes the swept elements back
    (read-modify-write), doubling the port pressure.
    """
    if len(array.dims) != 2:
        raise ValueError("matrix sweeps need a 2-D array")
    j1, j2 = array.dims
    strides = {"column": 1, "row": j1, "diagonal": j1 + 1}
    lengths = {"column": j1, "row": j2, "diagonal": min(j1, j2)}
    if sweep not in strides:
        raise ValueError(f"sweep must be one of {sorted(strides)}")
    stride = strides[sweep]
    count = lengths[sweep] if n is None else n
    if count > lengths[sweep]:
        raise ValueError(
            f"{sweep} of {array.name}{array.dims} has only "
            f"{lengths[sweep]} elements"
        )
    refs: list[tuple[str, str, int, int]] = [
        ("load", array.name, array.base, stride)
    ]
    if store:
        refs.append(("store", array.name, array.base, stride))
    return _strip_mined(refs, count, 1, vector_length)
