"""Loop compiler: from a declared Fortran-style inner loop to a program.

Closes the gap between the *analysis* of a loop nest
(:mod:`repro.analysis.loopnest`) and its *execution* on the machine
model: the same :class:`~repro.analysis.loopnest.ArrayRef` declarations,
bound to concrete arrays, compile into strip-mined, chained vector
instructions — so a kernel can be advised analytically and then measured
under contention without hand-writing its program.

Address generation is column-major (eq. 33's setting): sweeping axis
``k`` with increment ``inc`` moves ``inc · Π_{i<k} J_i`` *words* per
iteration.  Loads of a segment precede its stores; every store depends
on all loads of its segment (read-before-write within one iteration).
"""

from __future__ import annotations

from math import prod

from ..analysis.loopnest import ArrayRef
from ..memory.layout import CommonBlock
from .instructions import VECTOR_LENGTH, PortKind, VectorInstruction

__all__ = ["compile_loop", "word_stride"]


def word_stride(ref: ArrayRef) -> int:
    """Words moved per loop iteration by one reference (un-reduced).

    The exact address stride; ``ref.distance(m)`` is this value mod m.
    """
    return ref.inc * prod(ref.dims[:ref.axis], start=1)


def compile_loop(
    refs: list[ArrayRef],
    trip_count: int,
    common: CommonBlock,
    *,
    vector_length: int = VECTOR_LENGTH,
    start_indices: dict[int, int] | None = None,
) -> list[VectorInstruction]:
    """Compile one inner loop into a strip-mined instruction program.

    Parameters
    ----------
    refs:
        The loop body's array references, in program order.  Loads and
        stores may interleave; per segment all loads issue before any
        store and every store depends on that segment's loads.
    trip_count:
        Iterations of the inner loop (elements per reference).
    common:
        Storage: every ``ref.name`` must be a member; its declared dims
        must match the reference's.
    start_indices:
        Optional per-ref (by position) starting word offset within the
        array — e.g. to sweep row 3 rather than row 1.
    """
    if not refs:
        raise ValueError("loop body needs at least one array reference")
    if trip_count <= 0:
        raise ValueError("trip count must be positive")
    if vector_length <= 0:
        raise ValueError("vector length must be positive")
    starts = start_indices or {}

    bound: list[tuple[ArrayRef, int, int]] = []  # (ref, base, stride)
    for pos, ref in enumerate(refs):
        spec = common[ref.name]
        if spec.dims != ref.dims:
            raise ValueError(
                f"{ref.name}: declared dims {spec.dims} != reference "
                f"dims {ref.dims}"
            )
        stride = word_stride(ref)
        base = spec.base + starts.get(pos, 0)
        last = base + (trip_count - 1) * stride
        if last >= spec.base + spec.size:
            raise ValueError(
                f"{ref.name}: sweep of {trip_count} x {stride} words "
                f"overruns the array"
            )
        bound.append((ref, base, stride))

    program: list[VectorInstruction] = []
    uid = 0
    for seg_start in range(0, trip_count, vector_length):
        seg_len = min(vector_length, trip_count - seg_start)
        hi = seg_start + seg_len
        load_uids: list[int] = []
        stores: list[tuple[ArrayRef, int, int]] = []
        for ref, base, stride in bound:
            if ref.kind == "load":
                program.append(
                    VectorInstruction(
                        uid=uid,
                        name=f"LOAD {ref.name}[{seg_start}:{hi}]",
                        kind=PortKind.READ,
                        base=base + seg_start * stride,
                        stride=stride,
                        length=seg_len,
                    )
                )
                load_uids.append(uid)
                uid += 1
            else:
                stores.append((ref, base, stride))
        for ref, base, stride in stores:
            program.append(
                VectorInstruction(
                    uid=uid,
                    name=f"STORE {ref.name}[{seg_start}:{hi}]",
                    kind=PortKind.WRITE,
                    base=base + seg_start * stride,
                    stride=stride,
                    length=seg_len,
                    depends_on=tuple(load_uids),
                )
            )
            uid += 1
    return program
