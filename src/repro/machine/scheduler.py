"""Machine-level simulation loop: CPUs issuing into the shared memory.

Couples :class:`~repro.machine.cpu.CpuModel` instances to one
:class:`~repro.sim.engine.Engine`: each clock, every CPU first issues
ready instructions onto idle ports, then the memory arbitration runs,
then drained instructions retire.  The run ends when every CPU's program
has completed (background-only CPUs never hold the machine up).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.config import MemoryConfig
from ..sim.engine import Engine
from ..sim.priority import PriorityRule
from ..sim.stats import SimStats
from ..sim.trace import TraceRecorder
from .cpu import CpuModel

__all__ = ["MachineSimulation", "MachineRunResult"]


@dataclass
class MachineRunResult:
    """Outcome of a machine run.

    ``cycles`` is the execution time in clock periods — the quantity
    Fig. 10(a)/(b) plots (the paper reports CPU seconds; ours differ by
    the constant clock period τ, which cancels in every shape claim).
    """

    cycles: int
    stats: SimStats
    trace: TraceRecorder | None


class MachineSimulation:
    """An engine plus the CPUs that feed it."""

    def __init__(
        self,
        config: MemoryConfig,
        cpus: list[CpuModel],
        *,
        priority: PriorityRule | str = "cyclic",
        trace: bool = False,
    ) -> None:
        if not cpus:
            raise ValueError("need at least one CPU")
        ports = [slot.port for cpu in cpus for slot in cpu.ports]
        # Engine requires dense indices in order; validate wiring here so
        # the error points at machine assembly rather than engine guts.
        for expect, port in enumerate(ports):
            if port.index != expect:
                raise ValueError(
                    f"port indices must be dense and ordered across CPUs; "
                    f"found index {port.index} at position {expect}"
                )
        self.config = config
        self.cpus = cpus
        # The machine loop interleaves CPU issue with arbitration every
        # clock — a finite, stateful workload outside the SimJob model.
        self.engine = Engine(config, ports, priority=priority, trace=trace)  # reprolint: disable=LAYER001

    @property
    def clock(self) -> int:
        return self.engine.cycle

    def step(self) -> None:
        """One machine clock: issue → arbitrate/transfer → retire."""
        for cpu in self.cpus:
            cpu.issue(self.clock, self.config.banks)
        self.engine.step()
        for cpu in self.cpus:
            cpu.collect_completions(self.clock - 1)

    def run_until_programs_finish(self, max_cycles: int = 2_000_000) -> MachineRunResult:
        """Advance clocks until every CPU program retired its last
        instruction; background streams keep flowing meanwhile."""
        while not all(cpu.program_finished for cpu in self.cpus):
            if self.clock >= max_cycles:
                raise RuntimeError(
                    f"programs not finished within {max_cycles} clocks"
                )
            self.step()
        return MachineRunResult(
            cycles=self.clock,
            stats=self.engine.stats,
            trace=self.engine.trace,
        )
