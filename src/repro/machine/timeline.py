"""Instruction timelines: a Gantt view of the machine's port schedule.

Shows, per port, when each vector instruction occupied it — making the
machine model's behaviour inspectable the way the bank traces make the
memory's.  A stretched bar (more clocks than elements) is a stream that
stalled; white space on a read port is chaining slack.
"""

from __future__ import annotations

from .cpu import CpuModel

__all__ = ["render_timeline", "port_utilisation"]


def render_timeline(
    cpu: CpuModel,
    *,
    width: int = 72,
    max_rows: int = 40,
) -> str:
    """ASCII Gantt chart of one CPU's retired instructions.

    Each row is one instruction: ``port | name | bar``.  Bars are scaled
    to ``width`` columns over the full program duration; ``=`` marks
    occupied clocks.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    rows = cpu.timeline()
    if not rows:
        return "(no retired instructions)"
    t_end = max(done for _, _, _, done in rows) + 1
    scale = width / t_end
    lines = [f"clocks 0..{t_end - 1}, {len(rows)} instructions"]
    shown = rows[:max_rows]
    name_w = max(len(name) for name, *_ in shown)
    for name, port, issue, done in shown:
        lo = int(issue * scale)
        hi = max(lo + 1, int((done + 1) * scale))
        bar = " " * lo + "=" * (hi - lo)
        lines.append(
            f"P{port} {name:<{name_w}} |{bar:<{width}}| "
            f"{issue}..{done}"
        )
    if len(rows) > max_rows:
        lines.append(f"... {len(rows) - max_rows} more instructions")
    return "\n".join(lines)


def port_utilisation(cpu: CpuModel) -> dict[int, float]:
    """Fraction of the program's span each port spent occupied.

    Occupied means an instruction was issued and not yet completed on
    that port — the port either transferred or stalled every one of
    those clocks.
    """
    rows = cpu.timeline()
    if not rows:
        return {}
    t_end = max(done for _, _, _, done in rows) + 1
    busy: dict[int, int] = {}
    for _, port, issue, done in rows:
        busy[port] = busy.get(port, 0) + (done - issue + 1)
    return {port: clocks / t_end for port, clocks in sorted(busy.items())}
