"""Workload programs for the machine model — Section IV's experiment.

The measured kernel is the vector triad

    DO 1 I = 1, N*INC, INC
  1 A(I) = B(I) + C(I)*D(I)

with ``N = 1024`` elements regardless of the increment, arrays placed by
``COMMON// A(IDIM), B(IDIM), C(IDIM), D(IDIM)`` with
``IDIM = 16*1024 + 1`` so their first elements sit one bank apart.

Strip-mining: the 1024 iterations become 16 segments of the 64-element
vector register length; per segment the three loads (B, C, D) compete
for the CPU's two read ports and the store (A) chains behind them on the
write port.

The competitor program on the other CPU "is tailored so that the memory
is constantly accessed by all three ports with a distance of 1" — three
infinite unit-stride background streams.
"""

from __future__ import annotations

from ..core.stream import AccessStream
from ..memory.layout import CommonBlock, triad_common_block
from .instructions import VECTOR_LENGTH, PortKind, VectorInstruction

__all__ = [
    "triad_program",
    "unit_stride_background",
    "strided_background",
    "TRIAD_N",
    "TRIAD_IDIM",
]

#: Vector length of the measured triad (elements).
TRIAD_N = 1024

#: COMMON dimension fixing the one-bank-apart layout on 16 banks.
TRIAD_IDIM = 16 * 1024 + 1


def triad_program(
    inc: int,
    *,
    n: int = TRIAD_N,
    common: CommonBlock | None = None,
    vector_length: int = VECTOR_LENGTH,
) -> list[VectorInstruction]:
    """Strip-mined triad instructions for increment ``inc``.

    Element ``j`` (0-based) of each sweep touches word
    ``base + j*inc`` — Fortran index ``I = 1 + j*INC``.  Returns loads
    and stores in program order with store-after-load dependencies
    inside each segment; segments are independent except through port
    availability (loads of segment ``k+1`` may overlap the store of
    segment ``k``, as chaining on the machine allows).
    """
    if inc <= 0:
        raise ValueError("increment must be positive")
    if n <= 0:
        raise ValueError("element count must be positive")
    if vector_length <= 0:
        raise ValueError("vector length must be positive")
    if common is None:
        common = triad_common_block(TRIAD_IDIM)
    bases = {name: common[name].base for name in ("A", "B", "C", "D")}
    needed = 1 + (n - 1) * inc
    for name in bases:
        if common[name].size < needed:
            raise ValueError(
                f"array {name} too small: needs {needed} words for "
                f"n={n}, inc={inc}"
            )

    program: list[VectorInstruction] = []
    uid = 0
    for seg_start in range(0, n, vector_length):
        seg_len = min(vector_length, n - seg_start)
        hi = seg_start + seg_len
        load_uids: list[int] = []
        for name in ("B", "C", "D"):
            program.append(
                VectorInstruction(
                    uid=uid,
                    name=f"LOAD {name}[{seg_start}:{hi}:{inc}]",
                    kind=PortKind.READ,
                    base=bases[name] + seg_start * inc,
                    stride=inc,
                    length=seg_len,
                )
            )
            load_uids.append(uid)
            uid += 1
        program.append(
            VectorInstruction(
                uid=uid,
                name=f"STORE A[{seg_start}:{hi}:{inc}]",
                kind=PortKind.WRITE,
                base=bases["A"] + seg_start * inc,
                stride=inc,
                length=seg_len,
                depends_on=tuple(load_uids),
            )
        )
        uid += 1
    return program


def unit_stride_background(
    m: int, *, ports: int = 3, stagger: int | None = None
) -> dict[int, AccessStream]:
    """The other CPU's workload: ``ports`` infinite distance-1 streams.

    ``stagger`` spaces the start banks so the streams do not trip over
    each other at startup; the default uses the conflict-free relative
    offset ``n_c·d = n_c`` generalised to equal spacing ``m // ports``.
    Returns a mapping of port position to stream, ready for
    :meth:`repro.machine.cpu.CpuModel.set_background`.
    """
    if ports <= 0:
        raise ValueError("port count must be positive")
    if stagger is None:
        stagger = max(1, m // ports)
    return {
        pos: AccessStream(start_bank=(pos * stagger) % m, stride=1)
        for pos in range(ports)
    }


def strided_background(
    m: int, strides: list[int], *, starts: list[int] | None = None
) -> dict[int, AccessStream]:
    """General background: one infinite stream per port position."""
    if starts is None:
        starts = [0] * len(strides)
    if len(starts) != len(strides):
        raise ValueError("starts and strides must align")
    return {
        pos: AccessStream(start_bank=b % m, stride=d % m)
        for pos, (b, d) in enumerate(zip(starts, strides))
    }
