"""The Cray X-MP model and the Section IV triad experiment.

Machine shape (matching the Juelich installation the paper measured):

* 2 CPUs, 16 memory banks, bipolar memory — ``n_c = 4`` clocks;
* 4 sections, one access path per section per CPU (Fig. 1's topology
  scaled up);
* per CPU: two read ports and one write port, so "with all ports active,
  there are up to six ports simultaneously requesting access" and
  ``6·n_c = 24 > 16`` banks — conflicts are then unavoidable, which the
  paper uses to explain why even INC = 1 is not perfectly clean.

:func:`run_triad` reproduces one Fig. 10 data point;
:func:`triad_sweep` the full INC = 1..16 panel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.config import MemoryConfig
from ..memory.layout import CommonBlock, triad_common_block
from ..sim.port import Port
from ..sim.priority import PriorityRule
from ..sim.stats import ConflictKind, SimStats
from .cpu import CpuModel, CpuPort
from .instructions import PortKind
from .scheduler import MachineRunResult, MachineSimulation
from .workloads import TRIAD_IDIM, TRIAD_N, triad_program, unit_stride_background

__all__ = [
    "XMP_CONFIG",
    "TriadResult",
    "build_xmp",
    "run_program",
    "run_triad",
    "triad_sweep",
]

#: 16 banks, n_c = 4, 4 sections — the measured machine.
XMP_CONFIG = MemoryConfig(banks=16, bank_cycle=4, sections=4)

#: Port kinds per CPU: two read ports, one write port.
CPU_PORT_KINDS = (PortKind.READ, PortKind.READ, PortKind.WRITE)


@dataclass(frozen=True)
class TriadResult:
    """One Fig. 10 data point.

    Conflict counts cover the *triad CPU's* ports only (the simulator in
    the paper reports "the bank conflicts, section conflicts, and
    simultaneous conflicts encountered by the triad").
    """

    inc: int
    cycles: int
    other_cpu_active: bool
    bank_conflicts: int
    section_conflicts: int
    simultaneous_conflicts: int
    bank_stall_cycles: int
    section_stall_cycles: int
    simultaneous_stall_cycles: int
    triad_grants: int
    #: Result elements produced (loop trip count); set by the driver.
    elements: int = TRIAD_N

    @property
    def clocks_per_element(self) -> float:
        """Normalised execution time (clocks per loop iteration)."""
        return self.cycles / self.elements


def build_xmp(
    *,
    config: MemoryConfig = XMP_CONFIG,
    chain_latency: int = 8,
    priority: PriorityRule | str = "cyclic",
    trace: bool = False,
) -> MachineSimulation:
    """Assemble a two-CPU X-MP with empty programs."""
    cpus: list[CpuModel] = []
    index = 0
    for cpu_id in range(2):
        slots = []
        for kind in CPU_PORT_KINDS:
            # X-MP assembly: finite instruction workloads, not SimJobs.
            slots.append(CpuPort(port=Port(index=index, cpu=cpu_id), kind=kind))  # reprolint: disable=LAYER001
            index += 1
        cpus.append(CpuModel(cpu_id, slots, chain_latency=chain_latency))
    return MachineSimulation(config, cpus, priority=priority, trace=trace)


def run_program(
    program: list,
    *,
    other_cpu_active: bool = True,
    config: MemoryConfig = XMP_CONFIG,
    chain_latency: int = 8,
    priority: PriorityRule | str = "cyclic",
    trace: bool = False,
    label_inc: int = 0,
) -> TriadResult:
    """Execute an arbitrary instruction program on CPU 0 of the X-MP.

    The generic driver behind :func:`run_triad` — also used for the
    kernel library (:mod:`repro.machine.kernels`).  ``label_inc`` only
    tags the result row.
    """
    machine = build_xmp(
        config=config,
        chain_latency=chain_latency,
        priority=priority,
        trace=trace,
    )
    cpu0, cpu1 = machine.cpus
    cpu0.load_program(program)
    if other_cpu_active:
        cpu1.set_background(
            unit_stride_background(config.banks, ports=len(CPU_PORT_KINDS)),
            config.banks,
        )
    run = machine.run_until_programs_finish()
    ports = [slot.port.index for slot in cpu0.ports]
    # loop trip count: elements of the longest single reference stream
    # per segment chain; stores define it when present, else loads.
    stores = [i for i in program if i.kind is PortKind.WRITE]
    refs = stores if stores else list(program)
    elements = sum(i.length for i in refs) // max(
        1, len({i.name.split("[")[0] for i in refs})
    )
    return _summarise(
        label_inc, run, ports, other_cpu_active, elements=max(1, elements)
    )


def run_triad(
    inc: int,
    *,
    other_cpu_active: bool = True,
    n: int = TRIAD_N,
    idim: int = TRIAD_IDIM,
    config: MemoryConfig = XMP_CONFIG,
    chain_latency: int = 8,
    priority: PriorityRule | str = "cyclic",
    common: CommonBlock | None = None,
    trace: bool = False,
) -> TriadResult:
    """Execute ``A(I) = B(I) + C(I)*D(I)`` for one increment.

    ``other_cpu_active`` toggles between the Fig. 10(a) environment
    (competitor CPU streaming distance 1 on all three ports) and the
    Fig. 10(b) dedicated machine.
    """
    if common is None:
        common = triad_common_block(idim)
    return run_program(
        triad_program(inc, n=n, common=common),
        other_cpu_active=other_cpu_active,
        config=config,
        chain_latency=chain_latency,
        priority=priority,
        trace=trace,
        label_inc=inc,
    )


def _summarise(
    inc: int,
    run: MachineRunResult,
    triad_ports: list[int],
    other_cpu_active: bool,
    *,
    elements: int = TRIAD_N,
) -> TriadResult:
    stats: SimStats = run.stats

    def _sum(field: str, kind: ConflictKind) -> int:
        return sum(
            getattr(stats.ports[p], field)[kind] for p in triad_ports
        )

    return TriadResult(
        inc=inc,
        cycles=run.cycles,
        other_cpu_active=other_cpu_active,
        bank_conflicts=_sum("episodes", ConflictKind.BANK),
        section_conflicts=_sum("episodes", ConflictKind.SECTION),
        simultaneous_conflicts=_sum("episodes", ConflictKind.SIMULTANEOUS),
        bank_stall_cycles=_sum("stall_cycles", ConflictKind.BANK),
        section_stall_cycles=_sum("stall_cycles", ConflictKind.SECTION),
        simultaneous_stall_cycles=_sum("stall_cycles", ConflictKind.SIMULTANEOUS),
        triad_grants=sum(stats.ports[p].grants for p in triad_ports),
        elements=elements,
    )


def triad_sweep(
    incs: range | list[int] = range(1, 17),
    *,
    other_cpu_active: bool = True,
    **kwargs,
) -> list[TriadResult]:
    """The full Fig. 10 panel: one :func:`run_triad` per increment."""
    return [
        run_triad(inc, other_cpu_active=other_cpu_active, **kwargs)
        for inc in incs
    ]
