"""Interleaved-memory substrate: configuration, banks, sections, layout.

This package models the *hardware* half of Section II — everything the
analytical model abstracts over and the simulator needs concretely:

``config``
    :class:`~repro.memory.config.MemoryConfig` and machine presets.
``bank``
    :class:`~repro.memory.bank.BankArray` — busy-state vector.
``sections``
    Cyclic and consecutive (Cheung & Smith) bank-to-section maps.
``mapping``
    Address-to-bank mappings, including skewed placements.
``layout``
    Fortran COMMON-block storage association (the triad's setup).
"""

from .bank import BankArray
from .config import (
    CRAY_XMP_16,
    FIG2_CONFIG,
    FIG3_CONFIG,
    FIG5_CONFIG,
    FIG7_CONFIG,
    FIG8_CONFIG,
    MemoryConfig,
)
from .layout import CommonBlock, triad_common_block
from .mapping import (
    AddressMapping,
    InterleavedMapping,
    LinearSkewMapping,
    XorSkewMapping,
)
from .sections import (
    ConsecutiveSectionMap,
    CyclicSectionMap,
    SectionMap,
    section_map_for,
)

__all__ = [
    "AddressMapping",
    "BankArray",
    "CommonBlock",
    "ConsecutiveSectionMap",
    "CRAY_XMP_16",
    "CyclicSectionMap",
    "FIG2_CONFIG",
    "FIG3_CONFIG",
    "FIG5_CONFIG",
    "FIG7_CONFIG",
    "FIG8_CONFIG",
    "InterleavedMapping",
    "LinearSkewMapping",
    "MemoryConfig",
    "SectionMap",
    "XorSkewMapping",
    "section_map_for",
    "triad_common_block",
]
