"""Bank activity state.

A bank is *active* while servicing a request (Section II): once granted
at clock ``t`` it rejects further requests until ``t + n_c``.  The
simulator tracks all ``m`` banks in a single vector of remaining busy
clocks — decremented once per simulated clock — because that state
participates in the steady-state cycle detection and needs a compact,
hashable snapshot.

Implementation note: the counters live in a plain Python list.  Bank
counts are tiny (8..1024), and profiling showed the per-clock fixed
overhead of NumPy ufuncs on such short arrays dominating the simulator's
hot loop; a list with an explicit active-counter is ~3x faster at
``tick`` and keeps ``is_free`` a raw index.
"""

from __future__ import annotations

__all__ = ["BankArray"]


class BankArray:
    """Busy counters for ``m`` banks with an ``n_c``-clock hold time.

    The per-clock protocol is:

    1. :meth:`is_free` / arbitration consults the current counters;
    2. :meth:`grant` marks granted banks busy for ``n_c`` clocks
       (including the current one);
    3. :meth:`tick` ends the clock, decrementing every active counter.

    Counters therefore read "remaining busy clocks including this one";
    a bank with counter 0 is inactive and grantable.
    """

    __slots__ = ("m", "n_c", "_busy", "_active")

    def __init__(self, m: int, n_c: int) -> None:
        if m <= 0:
            raise ValueError("bank count must be positive")
        if n_c <= 0:
            raise ValueError("bank cycle time must be positive")
        self.m = m
        self.n_c = n_c
        self._busy = [0] * m
        self._active = 0  # number of non-zero counters

    # ------------------------------------------------------------------
    def is_free(self, bank: int) -> bool:
        """Whether ``bank`` can be granted this clock."""
        return self._busy[bank] == 0

    def remaining(self, bank: int) -> int:
        """Busy clocks left (0 for an inactive bank)."""
        return self._busy[bank]

    def grant(self, bank: int) -> None:
        """Activate ``bank`` for ``n_c`` clocks (this one included).

        Raises if the bank is still active — arbitration must never grant
        an active bank; this guards the simulator's invariant.
        """
        if self._busy[bank] != 0:
            raise RuntimeError(
                f"grant to active bank {bank} "
                f"({self._busy[bank]} clocks remaining)"
            )
        self._busy[bank] = self.n_c
        self._active += 1

    def tick(self) -> None:
        """Advance one clock period: active counters decrease by one."""
        if self._active == 0:
            return
        busy = self._busy
        for j in range(self.m):
            c = busy[j]
            if c:
                busy[j] = c - 1
                if c == 1:
                    self._active -= 1

    # ------------------------------------------------------------------
    def active_banks(self) -> list[int]:
        """Addresses of currently active banks (ascending)."""
        return [j for j, c in enumerate(self._busy) if c]

    def snapshot(self) -> tuple[int, ...]:
        """Hashable copy of the counters, for cycle detection."""
        return tuple(self._busy)

    def restore(self, snap: tuple[int, ...]) -> None:
        """Inverse of :meth:`snapshot`."""
        if len(snap) != self.m:
            raise ValueError("snapshot size mismatch")
        self._busy = list(snap)
        self._active = sum(1 for c in self._busy if c)

    def reset(self) -> None:
        """All banks inactive."""
        self._busy = [0] * self.m
        self._active = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BankArray(m={self.m}, n_c={self.n_c}, busy={self._busy})"
