"""Memory-system configuration (Section II parameters).

A memory system in the paper is fully specified by

* ``m`` — interleave factor (number of banks), address ``i`` in bank
  ``i mod m``;
* ``n_c`` — bank cycle time in clock periods: a referenced bank accepts
  no further request for ``n_c`` clocks (``t_c = n_c · τ``);
* ``s`` — number of sections (``s | m``); one access path per section
  per CPU, occupied for one clock per granted request;
* the bank-to-section mapping — cyclic ``k = j mod s`` in the paper,
  or Cheung & Smith's consecutive grouping (Fig. 9).

:class:`MemoryConfig` freezes those choices; presets cover the machines
the paper refers to.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "MemoryConfig",
    "CRAY_XMP_16",
    "FIG2_CONFIG",
    "FIG3_CONFIG",
    "FIG5_CONFIG",
    "FIG7_CONFIG",
    "FIG8_CONFIG",
]

_SECTION_MAPPINGS = ("cyclic", "consecutive")


@dataclass(frozen=True, slots=True)
class MemoryConfig:
    """Static shape of an interleaved memory system.

    Parameters
    ----------
    banks:
        ``m`` — the interleave factor; must be positive.
    bank_cycle:
        ``n_c`` — clocks a bank stays active per access; must be positive.
    sections:
        ``s`` — section count; ``None`` means "as many sections as banks"
        (``s = m``, the unsectioned analysis of Section III-B).
    section_mapping:
        ``"cyclic"`` for ``k = j mod s`` (paper default) or
        ``"consecutive"`` for Cheung & Smith's ``k = j // (m/s)`` grouping
        that prevents linked conflicts (Fig. 9).
    """

    banks: int
    bank_cycle: int
    sections: int | None = None
    section_mapping: str = "cyclic"

    def __post_init__(self) -> None:
        if self.banks <= 0:
            raise ValueError("bank count must be positive")
        if self.bank_cycle <= 0:
            raise ValueError("bank cycle time must be positive")
        s = self.effective_sections
        if s <= 0:
            raise ValueError("section count must be positive")
        if s > self.banks:
            raise ValueError(
                f"sections ({s}) may not exceed banks ({self.banks})"
            )
        if self.banks % s != 0:
            raise ValueError(
                f"sections must divide banks (s={s}, m={self.banks})"
            )
        if self.section_mapping not in _SECTION_MAPPINGS:
            raise ValueError(
                f"unknown section mapping {self.section_mapping!r}; "
                f"expected one of {_SECTION_MAPPINGS}"
            )

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Paper alias for :attr:`banks`."""
        return self.banks

    @property
    def n_c(self) -> int:
        """Paper alias for :attr:`bank_cycle`."""
        return self.bank_cycle

    @property
    def effective_sections(self) -> int:
        """``s`` with the ``None`` default resolved to ``m``."""
        return self.banks if self.sections is None else self.sections

    @property
    def banks_per_section(self) -> int:
        """``m / s`` — each section holds this many banks."""
        return self.banks // self.effective_sections

    @property
    def sectioned(self) -> bool:
        """True when paths are a potential bottleneck (``s < m``)."""
        return self.effective_sections < self.banks

    # ------------------------------------------------------------------
    def with_sections(self, s: int | None, mapping: str | None = None) -> "MemoryConfig":
        """Copy with a different sectioning (mapping optionally changed)."""
        return replace(
            self,
            sections=s,
            section_mapping=mapping if mapping is not None else self.section_mapping,
        )

    def bank_of_address(self, address: int) -> int:
        """Interleaved placement ``j = i mod m`` (Section II)."""
        if address < 0:
            raise ValueError("addresses are non-negative")
        return address % self.banks

    def section_of_bank(self, bank: int) -> int:
        """Apply the configured bank-to-section map."""
        if not 0 <= bank < self.banks:
            raise ValueError(f"bank {bank} outside 0..{self.banks - 1}")
        s = self.effective_sections
        if self.section_mapping == "cyclic":
            return bank % s
        return bank // self.banks_per_section

    def describe(self) -> str:
        """One-line human summary for logs and benchmark headers."""
        return (
            f"m={self.banks} banks, n_c={self.bank_cycle}, "
            f"s={self.effective_sections} sections ({self.section_mapping})"
        )


#: The measured machine: 2-processor, 16-bank Cray X-MP with bipolar
#: memory (``n_c = 4``) and 4 sections (one path per section per CPU).
CRAY_XMP_16 = MemoryConfig(banks=16, bank_cycle=4, sections=4)

#: Fig. 2 — 12-way interleave, ``n_c = 3``, no section bottleneck.
FIG2_CONFIG = MemoryConfig(banks=12, bank_cycle=3)

#: Figs. 3-4 — 13-way interleave, ``n_c = 6``.
FIG3_CONFIG = MemoryConfig(banks=13, bank_cycle=6)

#: Figs. 5-6 — 13-way interleave, ``n_c = 4``.
FIG5_CONFIG = MemoryConfig(banks=13, bank_cycle=4)

#: Fig. 7 — 12 banks, two sections, ``n_c = 2``.
FIG7_CONFIG = MemoryConfig(banks=12, bank_cycle=2, sections=2)

#: Figs. 8-9 — 12 banks, three sections, ``n_c = 3``.
FIG8_CONFIG = MemoryConfig(banks=12, bank_cycle=3, sections=3)
