"""Fortran COMMON-block layout (Section IV's experimental setup).

The measurement fixes the relative position of its arrays with

    ``COMMON// A(IDIM), B(IDIM), C(IDIM), D(IDIM)``

and ``IDIM = 16*1024 + 1`` so that "the respective first elements of the
arrays are one bank apart from each other" on the 16-bank X-MP.  This
module reproduces that mechanism: a :class:`CommonBlock` packs
:class:`~repro.core.fortran.ArraySpec` instances contiguously from a base
address and reports each array's start bank.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.fortran import ArraySpec

__all__ = ["CommonBlock", "triad_common_block"]


@dataclass(frozen=True)
class CommonBlock:
    """A contiguous sequence of arrays sharing one base address.

    Arrays are laid out in declaration order with no padding, exactly as
    Fortran 77 COMMON storage association prescribes.
    """

    arrays: tuple[ArraySpec, ...]
    base: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("base address must be non-negative")
        if not self.arrays:
            raise ValueError("COMMON block must contain at least one array")
        names = [a.name for a in self.arrays]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate array names in COMMON block: {names}")
        # Recompute each member's base from the running offset; reject
        # ArraySpecs whose declared base disagrees (they must be created
        # via `build` or with matching bases).
        offset = self.base
        for a in self.arrays:
            if a.base != offset:
                raise ValueError(
                    f"array {a.name} declares base {a.base}, "
                    f"storage association requires {offset}"
                )
            offset += a.size

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        members: list[tuple[str, tuple[int, ...]]],
        base: int = 0,
    ) -> "CommonBlock":
        """Create a block from ``(name, dims)`` pairs, assigning bases."""
        arrays: list[ArraySpec] = []
        offset = base
        for name, dims in members:
            spec = ArraySpec(name=name, dims=dims, base=offset)
            arrays.append(spec)
            offset += spec.size
        return cls(arrays=tuple(arrays), base=base)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total words occupied."""
        return sum(a.size for a in self.arrays)

    def __getitem__(self, name: str) -> ArraySpec:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(f"no array {name!r} in COMMON block")

    def start_banks(self, m: int) -> dict[str, int]:
        """Start bank of every member against ``m`` banks."""
        return {a.name: a.start_bank(m) for a in self.arrays}


def triad_common_block(idim: int = 16 * 1024 + 1, base: int = 0) -> CommonBlock:
    """The paper's measurement layout: ``A, B, C, D`` of ``IDIM`` words.

    With the default ``IDIM = 16*1024 + 1`` on a 16-bank memory the four
    arrays start in banks ``base, base+1, base+2, base+3`` (mod 16) — one
    bank apart, as Section IV arranges.
    """
    if idim <= 0:
        raise ValueError("IDIM must be positive")
    return CommonBlock.build(
        [("A", (idim,)), ("B", (idim,)), ("C", (idim,)), ("D", (idim,))],
        base=base,
    )
