"""Address-to-bank mappings, including skewed variants.

The baseline mapping is low-order interleaving (Section II):
``bank = address mod m``, ``cell = address div m``.  The conclusion points
to *skewing schemes* ([1], [4], [11], [12]) as a way to build environments
with uniform access streams; :class:`LinearSkewMapping` implements the
classic row-skew used by those references so the ablation benchmarks can
quantify the effect under this paper's conflict model.
"""

from __future__ import annotations

import abc

__all__ = [
    "AddressMapping",
    "InterleavedMapping",
    "LinearSkewMapping",
    "XorSkewMapping",
]


class AddressMapping(abc.ABC):
    """Strategy turning a word address into a ``(bank, cell)`` pair."""

    def __init__(self, m: int) -> None:
        if m <= 0:
            raise ValueError("bank count must be positive")
        self.m = m

    @abc.abstractmethod
    def bank_of(self, address: int) -> int:
        """Bank servicing ``address``."""

    def cell_of(self, address: int) -> int:
        """Within-bank cell index (row)."""
        if address < 0:
            raise ValueError("addresses are non-negative")
        return address // self.m

    def locate(self, address: int) -> tuple[int, int]:
        """``(bank, cell)`` of a word address."""
        return self.bank_of(address), self.cell_of(address)

    def stream_banks(self, base: int, stride: int, count: int) -> list[int]:
        """Banks touched by ``count`` accesses from ``base`` by ``stride``.

        The generic form of an access stream once the mapping is not the
        plain modulo — used by the skewing evaluation.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.bank_of(base + k * stride) for k in range(count)]


class InterleavedMapping(AddressMapping):
    """Low-order interleave ``j = i mod m`` — the paper's memory."""

    def bank_of(self, address: int) -> int:
        if address < 0:
            raise ValueError("addresses are non-negative")
        return address % self.m


class LinearSkewMapping(AddressMapping):
    """Row-skewed placement: ``j = (i + skew · (i div m)) mod m``.

    Each successive memory row is rotated by ``skew`` banks.  With
    ``gcd(skew + 1, m) = 1`` (for example ``skew = 1`` and even ``m``
    avoided appropriately) column *and* row sweeps of an ``m``-wide array
    both become unit-like streams — the property the skewing literature
    targets.
    """

    def __init__(self, m: int, skew: int = 1) -> None:
        super().__init__(m)
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.skew = skew % m

    def bank_of(self, address: int) -> int:
        if address < 0:
            raise ValueError("addresses are non-negative")
        row, col = divmod(address, self.m)
        return (col + self.skew * row) % self.m

    def effective_stride_period(self, stride: int) -> int:
        """Length of the bank pattern of a ``stride`` stream.

        Under skewing a constant address stride no longer gives a constant
        bank distance; the bank sequence is periodic with period
        ``lcm(m, stride') / stride'`` style bounds — computed here by
        direct search (bounded by ``m^2``) for reporting purposes.
        """
        if stride <= 0:
            raise ValueError("stride must be positive")
        first = self.bank_of(0)
        seen: list[int] = []
        # The joint state (address mod m, row mod m) has period ≤ m^2.
        limit = self.m * self.m + 1
        for k in range(1, limit + 1):
            seen.append(self.bank_of(k * stride))
            # the sequence is periodic in k with period dividing m^2/gcds;
            # detect first return of the full mapping state
            if (k * stride) % (self.m * self.m) == 0:
                return k
        return limit  # pragma: no cover - unreachable, loop must return


class XorSkewMapping(AddressMapping):
    """XOR-based skew for power-of-two bank counts.

    ``j = column XOR f(row)`` with ``f(row) = (row * mult) mod m`` for an
    odd multiplier: each row is a permutation of the banks (XOR with a
    constant is a bijection), and power-of-two address strides are
    scattered pseudo-randomly instead of rotating linearly.  A classic
    alternative to the linear skew in the data-mapping literature the
    paper cites ([11], [12]).
    """

    def __init__(self, m: int, mult: int = 0x5) -> None:
        super().__init__(m)
        if m & (m - 1) != 0:
            raise ValueError("XOR skew requires a power-of-two bank count")
        if mult % 2 == 0:
            raise ValueError("multiplier must be odd (to permute rows)")
        self.mult = mult % m if m > 1 else 0

    def bank_of(self, address: int) -> int:
        if address < 0:
            raise ValueError("addresses are non-negative")
        row, col = divmod(address, self.m)
        return col ^ ((row * self.mult) % self.m)
