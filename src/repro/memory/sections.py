"""Bank-to-section maps and access paths.

Sections exist "to reduce the number of access paths to memory"
(Section II): a CPU owns one path per section, and a granted request
occupies its path for one clock.  Two maps are implemented:

* :class:`CyclicSectionMap` — the paper's ``k = j mod s``;
* :class:`ConsecutiveSectionMap` — Cheung & Smith's proposal of grouping
  ``m/s`` *consecutive* banks per section, which breaks the linked
  conflict (Fig. 9).

Both are pure functions of the bank address wrapped in small classes so
the simulator, benchmarks and ablations can swap them by name.
"""

from __future__ import annotations

import abc

from .config import MemoryConfig

__all__ = [
    "SectionMap",
    "CyclicSectionMap",
    "ConsecutiveSectionMap",
    "section_map_for",
]


class SectionMap(abc.ABC):
    """Strategy mapping bank addresses to section (path) indices."""

    def __init__(self, m: int, s: int) -> None:
        if m <= 0 or s <= 0:
            raise ValueError("bank and section counts must be positive")
        if s > m or m % s != 0:
            raise ValueError(f"s must divide m (s={s}, m={m})")
        self.m = m
        self.s = s

    @abc.abstractmethod
    def section_of(self, bank: int) -> int:
        """Section index of a bank address."""

    def banks_in_section(self, section: int) -> list[int]:
        """All banks mapped to ``section`` (ascending)."""
        if not 0 <= section < self.s:
            raise ValueError(f"section {section} outside 0..{self.s - 1}")
        return [j for j in range(self.m) if self.section_of(j) == section]

    @property
    def name(self) -> str:
        """Config-string identifier (``cyclic`` / ``consecutive``)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(m={self.m}, s={self.s})"


class CyclicSectionMap(SectionMap):
    """Paper default: ``k = j mod s`` — banks striped across sections."""

    def section_of(self, bank: int) -> int:
        if not 0 <= bank < self.m:
            raise ValueError(f"bank {bank} outside 0..{self.m - 1}")
        return bank % self.s

    @property
    def name(self) -> str:
        return "cyclic"


class ConsecutiveSectionMap(SectionMap):
    """Cheung & Smith (Fig. 9): ``m/s`` consecutive banks per section.

    Because a unit-stride stream then stays inside one section for
    ``m/s`` consecutive clocks, the alternating bank/section collision
    pattern of the linked conflict cannot establish itself.
    """

    def section_of(self, bank: int) -> int:
        if not 0 <= bank < self.m:
            raise ValueError(f"bank {bank} outside 0..{self.m - 1}")
        return bank // (self.m // self.s)

    @property
    def name(self) -> str:
        return "consecutive"


def section_map_for(config: MemoryConfig) -> SectionMap:
    """Instantiate the map selected by a :class:`MemoryConfig`."""
    cls = {
        "cyclic": CyclicSectionMap,
        "consecutive": ConsecutiveSectionMap,
    }[config.section_mapping]
    return cls(config.banks, config.effective_sections)
