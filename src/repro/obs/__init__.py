"""Observability for the runner pipeline: metrics, spans, exporters.

The runner's three execution tiers, the memoizing executor and the
simulation engines are instrumented against this package — behind a
disabled-by-default switch, so the uninstrumented hot path costs one
``None`` check per batch and nothing per job (benchmarked by the CI
bench-smoke overhead gate).

Three modules:

:mod:`repro.obs.metrics`
    :class:`MetricsRegistry` — counters, gauges, and histograms with
    exact-integer buckets; :func:`capture_metrics` /
    :func:`enable_metrics` switch collection on.
:mod:`repro.obs.trace`
    :func:`span` context managers over a monotonic clock, confined to
    this package by the OBS001 lint rule; :func:`capture_spans` /
    :func:`enable_tracing` switch recording on.
:mod:`repro.obs.export`
    Renderers: human text, JSON (round-trippable via
    :func:`load_json`), Prometheus text format, and the span tree.

The full metric/span name contract — every name, kind, label set and
emitting call site — lives in :mod:`repro.obs.names` and is documented
in ``docs/OBSERVABILITY.md``; the test suite diffs the two.  On the
CLI, ``--metrics[=PATH]`` and ``--trace-spans`` expose all of this on
the sweep-shaped subcommands.
"""

from .export import (
    load_json,
    render_json,
    render_prometheus,
    render_spans,
    render_text,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_metrics,
    capture_metrics,
    disable_metrics,
    enable_metrics,
)
from .names import (
    METRIC_CONTRACT,
    SPAN_CONTRACT,
    MetricSpec,
    SpanSpec,
    metric_names,
    span_names,
)
from .trace import (
    Span,
    Stopwatch,
    TraceRecorder,
    active_trace,
    capture_spans,
    disable_tracing,
    enable_tracing,
    span,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "METRIC_CONTRACT",
    "MetricSpec",
    "MetricsRegistry",
    "SPAN_CONTRACT",
    "Span",
    "SpanSpec",
    "Stopwatch",
    "TraceRecorder",
    "active_metrics",
    "active_trace",
    "capture_metrics",
    "capture_spans",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "load_json",
    "metric_names",
    "render_json",
    "render_prometheus",
    "render_spans",
    "render_text",
    "span",
    "span_names",
]
