"""Exporters: render a metrics registry / span recorder for humans and tools.

Three metric formats, one span format:

* :func:`render_text` — aligned human-readable report (the CLI's bare
  ``--metrics`` output);
* :func:`render_json` — ``json.dumps`` of :meth:`MetricsRegistry.
  snapshot`; :func:`load_json` round-trips it back into a registry;
* :func:`render_prometheus` — Prometheus text exposition format
  (``# TYPE`` headers, label sets, cumulative ``_bucket{le=...}``
  series).  Metric names are sanitised (dots become underscores);
  bucket bounds stay exact integers, the overflow bucket is ``+Inf``.
* :func:`render_spans` — indented call tree with integer-nanosecond
  durations formatted as milliseconds.

Everything here is integer arithmetic end to end (EXACT001 applies to
``repro.obs``); derived ratios are printed as exact percents via
integer division.
"""

from __future__ import annotations

import json

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import TraceRecorder

__all__ = [
    "render_text",
    "render_json",
    "load_json",
    "render_prometheus",
    "render_spans",
]


def _label_str(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return "{" + inner + "}"


# ----------------------------------------------------------------------
# Human text
# ----------------------------------------------------------------------
def render_text(registry: MetricsRegistry) -> str:
    """Aligned ``name{labels}  kind  value`` report, one line per metric."""
    rows: list[tuple[str, str, str]] = []
    for metric in registry.collect():
        ident = metric.name + _label_str(metric.labels)
        if isinstance(metric, Histogram):
            mean = (
                f"{metric.sum}/{metric.count}" if metric.count else "-"
            )
            value = (
                f"count={metric.count} sum={metric.sum} mean={mean}"
            )
        else:
            value = str(metric.value)
        rows.append((ident, metric.kind, value))
    if not rows:
        return "(no metrics recorded)"
    width_ident = max(len(r[0]) for r in rows)
    width_kind = max(len(r[1]) for r in rows)
    lines = ["metrics report", "--------------"]
    for ident, kind, value in rows:
        lines.append(
            f"{ident.ljust(width_ident)}  {kind.ljust(width_kind)}  {value}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# JSON (round-trips through MetricsRegistry.from_snapshot)
# ----------------------------------------------------------------------
def render_json(registry: MetricsRegistry) -> str:
    """The registry snapshot as a JSON document (exact integers)."""
    return json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n"


def load_json(text: str) -> MetricsRegistry:
    """Rebuild a registry from :func:`render_json` output."""
    return MetricsRegistry.from_snapshot(json.loads(text))


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text format: one ``# TYPE`` header per metric family."""
    lines: list[str] = []
    typed: set[str] = set()
    for metric in registry.collect():
        pname = _prom_name(metric.name)
        if pname not in typed:
            lines.append(f"# TYPE {pname} {metric.kind}")
            typed.add(pname)
        if isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for bound, cum in zip(metric.buckets, cumulative):
                le = (("le", str(bound)),) + metric.labels
                lines.append(f"{pname}_bucket{_prom_labels(le)} {cum}")
            le_inf = (("le", "+Inf"),) + metric.labels
            lines.append(f"{pname}_bucket{_prom_labels(le_inf)} {cumulative[-1]}")
            lines.append(f"{pname}_sum{_prom_labels(metric.labels)} {metric.sum}")
            lines.append(
                f"{pname}_count{_prom_labels(metric.labels)} {metric.count}"
            )
        elif isinstance(metric, (Counter, Gauge)):
            lines.append(
                f"{pname}{_prom_labels(metric.labels)} {metric.value}"
            )
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def _format_ns(ns: int) -> str:
    """Integer nanoseconds as a fixed-point millisecond string."""
    us = ns // 1_000
    return f"{us // 1_000}.{us % 1_000:03d} ms"


def render_spans(recorder: TraceRecorder) -> str:
    """Indented call tree of finished spans with durations."""
    finished = recorder.finished()
    if not finished:
        return "(no spans recorded)"
    lines = ["span trace", "----------"]
    for s in finished:
        indent = "  " * s.depth
        lines.append(
            f"{indent}{s.name}{_label_str(s.labels)}  {_format_ns(s.duration_ns)}"
        )
    return "\n".join(lines)
