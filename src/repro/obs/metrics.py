"""Zero-dependency metrics registry: counters, gauges, exact histograms.

Design constraints, in order:

* **Off means off.**  The registry is *disabled by default*: the module
  global :func:`active_metrics` returns ``None`` and every instrumented
  call site guards on that, so the uninstrumented hot path costs one
  global load and a ``None`` check per *batch* (never per job or per
  clock) and allocates nothing.
* **Exact values.**  All recorded values are integers — counters and
  gauges hold ``int``, histograms use exact-integer bucket bounds and
  integer sums — so the registry lives comfortably inside the EXACT001
  discipline and derived ratios can be taken as :class:`~fractions.
  Fraction` without a float ever appearing.
* **Stdlib only.**  Pure Python, importable anywhere the test suite
  runs; exporters (text / JSON / Prometheus) live in
  :mod:`repro.obs.export`.

Metrics are identified by a dotted name plus an optional label set;
asking the registry for the same ``(name, labels)`` twice returns the
same instrument.  :func:`capture_metrics` is the scoped way to turn
collection on::

    with capture_metrics() as reg:
        executor.run_many(jobs)
    print(render_text(reg))
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "active_metrics",
    "enable_metrics",
    "disable_metrics",
    "capture_metrics",
]

#: Default histogram buckets: powers of two, exact integers.  A value
#: ``v`` lands in the first bucket with ``v <= bound``; values above the
#: last bound land in the implicit overflow bucket.
DEFAULT_BUCKETS: tuple[int, ...] = tuple(1 << i for i in range(21))

_LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: Mapping[str, object]) -> _LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: _LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """An integer that can go up, down, or be set outright."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: _LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: int) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def dec(self, amount: int = 1) -> None:
        self.value -= amount


class Histogram:
    """Distribution of integer observations over exact-integer buckets.

    ``counts[i]`` is the number of observations with ``value <=
    buckets[i]`` and greater than ``buckets[i-1]``; ``counts[-1]`` is
    the overflow bucket.  ``sum``/``count`` allow the exact mean
    ``Fraction(sum, count)``.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: _LabelItems = (),
        buckets: Sequence[int] | None = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        for b in bounds:
            if type(b) is not int:
                raise TypeError("bucket bounds must be exact integers")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, value: int) -> None:
        # Linear scan: bucket lists are short and observations are
        # per-steady-run, not per-clock.
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> list[int]:
        """Prometheus-style cumulative bucket counts (``le`` semantics)."""
        out: list[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


Metric = Counter | Gauge | Histogram

_SNAPSHOT_VERSION = 1


class MetricsRegistry:
    """A family of named instruments, created on first touch."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, _LabelItems], Metric] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, _label_items(labels))

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, _label_items(labels))

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[int] | None = None,
        **labels: object,
    ) -> Histogram:
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[1], buckets)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def _get(self, cls: type, name: str, labels: _LabelItems) -> Metric:
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    # ------------------------------------------------------------------
    def collect(self) -> list[Metric]:
        """Every instrument, sorted by (name, labels)."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def get(self, name: str, **labels: object) -> Metric | None:
        """The instrument at ``(name, labels)``, or ``None``."""
        return self._metrics.get((name, _label_items(labels)))

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Snapshots (the JSON exporter round-trips through these)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe dict of the whole registry (exact integers only)."""
        out: list[dict] = []
        for metric in self.collect():
            entry: dict = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["counts"] = list(metric.counts)
                entry["sum"] = metric.sum
                entry["count"] = metric.count
            else:
                entry["value"] = metric.value
            out.append(entry)
        return {"version": _SNAPSHOT_VERSION, "metrics": out}

    @classmethod
    def from_snapshot(cls, data: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        if data.get("version") != _SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported metrics snapshot version {data.get('version')!r}"
            )
        reg = cls()
        for entry in data["metrics"]:
            labels = dict(entry["labels"])
            kind = entry["kind"]
            if kind == "counter":
                reg.counter(entry["name"], **labels).value = entry["value"]
            elif kind == "gauge":
                reg.gauge(entry["name"], **labels).value = entry["value"]
            elif kind == "histogram":
                h = reg.histogram(
                    entry["name"], buckets=entry["buckets"], **labels
                )
                h.counts = list(entry["counts"])
                h.sum = entry["sum"]
                h.count = entry["count"]
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
        return reg


# ----------------------------------------------------------------------
# The process-wide switch
# ----------------------------------------------------------------------
_ACTIVE: MetricsRegistry | None = None


def active_metrics() -> MetricsRegistry | None:
    """The enabled registry, or ``None`` — the instrumented-off default.

    Instrumented call sites guard on this::

        reg = active_metrics()
        if reg is not None:
            reg.counter(names.EXECUTOR_SUBMITTED).inc(n)
    """
    return _ACTIVE


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active registry."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable_metrics() -> None:
    """Return to the no-op default."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def capture_metrics(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Scoped enablement: activate a registry, restore the old state."""
    global _ACTIVE
    prev = _ACTIVE
    reg = registry if registry is not None else MetricsRegistry()
    _ACTIVE = reg
    try:
        yield reg
    finally:
        _ACTIVE = prev
