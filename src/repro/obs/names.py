"""The metrics/tracing name contract — one constant per instrument.

Every metric and span the instrumented layers emit is declared here,
with its kind, label keys, and emitting call site.  The contract is
load-bearing in three places:

* call sites reference these constants (never string literals), so a
  rename is one edit;
* ``docs/OBSERVABILITY.md`` documents exactly this table, and
  ``tests/obs/test_instrumentation.py`` diffs the two — an undocumented
  metric name fails CI;
* the same test asserts that instrumented runs emit *only* contract
  names, so ad-hoc instrumentation cannot creep in unnamed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MetricSpec",
    "SpanSpec",
    "METRIC_CONTRACT",
    "SPAN_CONTRACT",
    "metric_names",
    "span_names",
]


@dataclass(frozen=True)
class MetricSpec:
    """One contract row: a metric's identity and provenance."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: tuple[str, ...]
    emitter: str
    help: str


@dataclass(frozen=True)
class SpanSpec:
    """One tracing span's identity and provenance."""

    name: str
    labels: tuple[str, ...]
    emitter: str
    help: str


# ----------------------------------------------------------------------
# Metric names (referenced by the instrumented call sites)
# ----------------------------------------------------------------------
EXECUTOR_SUBMITTED = "runner.executor.submitted"
EXECUTOR_MEMO_HITS = "runner.executor.memo_hits"
EXECUTOR_DEDUPED = "runner.executor.deduped"
EXECUTOR_EXECUTED = "runner.executor.executed"
EXECUTOR_MEMO_EVICTIONS = "runner.executor.memo_evictions"
EXECUTOR_MEMO_SIZE = "runner.executor.memo_size"
EXECUTOR_DISK_LOADED = "runner.executor.disk_loaded"
EXECUTOR_CHUNK_JOBS = "runner.executor.chunk_jobs"
EXECUTOR_RETRIES = "runner.executor.retries"
EXECUTOR_FAILURES = "runner.executor.failures"
EXECUTOR_RECOVERED = "runner.executor.recovered"
EXECUTOR_POOL_REBUILDS = "runner.executor.pool_rebuilds"
EXECUTOR_AUTOFLUSHES = "runner.executor.autoflushes"
EXECUTOR_CACHE_QUARANTINED = "runner.executor.cache_quarantined"

AUTO_DISPATCH = "runner.auto.dispatch"
ANALYTIC_DECIDED = "runner.analytic.decided"

ARBITER_POLICY_JOBS = "runner.arbiter.policy_jobs"
ARBITER_VETOES = "runner.arbiter.vetoes"

BATCH_JOBS = "runner.batchsim.jobs"
BATCH_STEPS = "runner.batchsim.steps"
BATCH_POPULATION = "runner.batchsim.population"
BATCH_WAVES = "runner.batchsim.retirement_waves"
BATCH_OCCUPANCY = "runner.batchsim.mask_occupancy"
BATCH_FALLBACK = "runner.batchsim.fallback"

FASTSIM_STEADY_MU = "runner.fastsim.steady_mu"
FASTSIM_STEADY_LAM = "runner.fastsim.steady_lam"
FAST_JOBS = "runner.fast.jobs"
FAST_CLOCKS = "runner.fast.clocks"
FAST_GRANTS = "runner.fast.grants"

SERVE_REQUESTS = "serve.http.requests"
SERVE_LATENCY = "serve.http.latency_us"
SERVE_INFLIGHT = "serve.http.inflight"
SERVE_SHED = "serve.http.shed"
SERVE_COALESCED = "serve.coalesce.folded"
SERVE_QUEUE_DEPTH = "serve.coalesce.queue_depth"
SERVE_BATCHES = "serve.coalesce.batches"
SERVE_LOOKUP = "serve.lookup.probes"

SCHED_CHUNKS = "runner.scheduler.chunks"
SCHED_SHARD_JOBS = "runner.scheduler.shard_jobs"
SCHED_STEALS = "runner.scheduler.steals"

STORE_HITS = "runner.store.hits"
STORE_MISSES = "runner.store.misses"
STORE_QUARANTINED = "runner.store.quarantined"
STORE_WRITES = "runner.store.writes"

ENGINE_JOBS = "sim.engine.jobs"
ENGINE_CLOCKS = "sim.engine.clocks"
ENGINE_STEADY_DETECTIONS = "sim.engine.steady_detections"

#: The full metrics contract, sorted by name.
METRIC_CONTRACT: tuple[MetricSpec, ...] = (
    MetricSpec(
        ANALYTIC_DECIDED, "counter", ("theorem",),
        "repro.runner.analytic.solve",
        "Closed-form decisions per certifying theorem "
        "(t1-single / t2-disjoint / t3-start-resolved).",
    ),
    MetricSpec(
        ARBITER_POLICY_JOBS, "counter", ("kind",),
        "repro.runner.backends.FastBackend",
        "Jobs with a non-default arbiter policy entering the scalar "
        "fast path (wfq ranking, token-bucket regulation, or both).",
    ),
    MetricSpec(
        ARBITER_VETOES, "counter", (),
        "repro.runner.backends.ReferenceBackend",
        "Regulator vetoes the reference engine recorded as REGULATED "
        "denials (a request held back by an exhausted token bucket).",
    ),
    MetricSpec(
        AUTO_DISPATCH, "counter", ("tier",),
        "repro.runner.analytic.AutoBackend",
        "Jobs the auto backend sent to each tier "
        "(analytic closed form vs. batch lockstep vs. fastsim "
        "fallback).",
    ),
    MetricSpec(
        BATCH_FALLBACK, "counter", ("reason",),
        "repro.runner.backends.BatchBackend",
        "Lanes the batch core handed back to the scalar fast engine "
        "(tail: sparse survivor wavefronts; policy: arbiter-policy "
        "jobs the vector core does not model).",
    ),
    MetricSpec(
        BATCH_JOBS, "counter", ("mode",),
        "repro.runner.batchsim.run_steady_batch/run_span_batch",
        "Lanes advanced in lockstep by the batch core, split steady "
        "vs. fixed-horizon span.",
    ),
    MetricSpec(
        BATCH_OCCUPANCY, "histogram", (),
        "repro.runner.batchsim._drive_steady",
        "Active-lane mask occupancy (percent of the current SoA "
        "population) sampled at each Brent anchor.",
    ),
    MetricSpec(
        BATCH_POPULATION, "histogram", (),
        "repro.runner.batchsim.run_steady_batch/run_span_batch",
        "Lanes per structure-of-arrays kernel group (pair-fixed and "
        "generic groups observe separately).",
    ),
    MetricSpec(
        BATCH_WAVES, "histogram", (),
        "repro.runner.batchsim._drive_steady",
        "Size of each retirement wave: lanes leaving the stepped "
        "population together (converged or bound-exhausted).",
    ),
    MetricSpec(
        BATCH_STEPS, "counter", ("mode",),
        "repro.runner.batchsim.run_steady_batch/run_span_batch",
        "Vectorized wavefronts executed (one per lockstep clock per "
        "walker).",
    ),
    MetricSpec(
        EXECUTOR_AUTOFLUSHES, "counter", (),
        "repro.runner.executor.SweepExecutor._finish_chunk",
        "Periodic crash-safety flushes of the on-disk cache (every "
        "flush_every executed chunks).",
    ),
    MetricSpec(
        EXECUTOR_CACHE_QUARANTINED, "counter", (),
        "repro.runner.executor.SweepExecutor._quarantine",
        "Corrupt/version-mismatched on-disk cache files moved aside to "
        "<path>.corrupt.",
    ),
    MetricSpec(
        EXECUTOR_CHUNK_JOBS, "histogram", (),
        "repro.runner.scheduling.ChunkRunner.observe_chunk",
        "Unique jobs per dispatched batch chunk (inline batches count "
        "as one chunk).",
    ),
    MetricSpec(
        EXECUTOR_DEDUPED, "counter", (),
        "repro.runner.executor.SweepExecutor.run_many",
        "Jobs folded onto an isomorphic twin within the same batch.",
    ),
    MetricSpec(
        EXECUTOR_DISK_LOADED, "counter", (),
        "repro.runner.executor.SweepExecutor.__init__",
        "Outcomes loaded from the on-disk cache at construction.",
    ),
    MetricSpec(
        EXECUTOR_EXECUTED, "counter", (),
        "repro.runner.executor.SweepExecutor.run_many",
        "Jobs actually simulated (after dedup and cache hits).",
    ),
    MetricSpec(
        EXECUTOR_FAILURES, "counter", (),
        "repro.runner.executor.SweepExecutor.run_many",
        "Jobs that still failed after retries and bisection isolation "
        "(one FailedOutcome each).",
    ),
    MetricSpec(
        EXECUTOR_MEMO_EVICTIONS, "counter", (),
        "repro.runner.executor.SweepExecutor.run_many",
        "Least-recently-used entries evicted from the in-process memo.",
    ),
    MetricSpec(
        EXECUTOR_MEMO_HITS, "counter", (),
        "repro.runner.executor.SweepExecutor.run_many",
        "Jobs served from the in-process memo (disk-loaded entries "
        "surface here once loaded).",
    ),
    MetricSpec(
        EXECUTOR_MEMO_SIZE, "gauge", (),
        "repro.runner.executor.SweepExecutor.run_many",
        "Entries in the in-process memo after the batch.",
    ),
    MetricSpec(
        EXECUTOR_POOL_REBUILDS, "counter", (),
        "repro.runner.scheduling.PoolScheduler / "
        "repro.runner.sharding.ShardScheduler",
        "Broken or timed-out process pools torn down and rebuilt "
        "mid-batch.",
    ),
    MetricSpec(
        EXECUTOR_RECOVERED, "counter", (),
        "repro.runner.executor.SweepExecutor.run_many",
        "Jobs that succeeded only after at least one failed dispatch "
        "(retry, pool rebuild, or bisection).",
    ),
    MetricSpec(
        EXECUTOR_RETRIES, "counter", (),
        "repro.runner.executor.SweepExecutor.run_many",
        "Chunk re-dispatches after a failure (retries and bisected "
        "halves).",
    ),
    MetricSpec(
        EXECUTOR_SUBMITTED, "counter", (),
        "repro.runner.executor.SweepExecutor.run_many",
        "Jobs submitted to run_many/run_one.",
    ),
    MetricSpec(
        FAST_CLOCKS, "counter", ("mode",),
        "repro.runner.backends.FastBackend",
        "Clocks the fast backend accounted: steady jobs contribute "
        "mu + lam, span jobs their fixed horizon.",
    ),
    MetricSpec(
        FAST_GRANTS, "counter", ("mode",),
        "repro.runner.backends.FastBackend",
        "Grants the fast backend reported: steady jobs contribute one "
        "period's grants, span jobs the whole-run total.",
    ),
    MetricSpec(
        FAST_JOBS, "counter", ("mode",),
        "repro.runner.backends.FastBackend",
        "Jobs run on the fast backend, split steady vs. fixed-horizon "
        "span.",
    ),
    MetricSpec(
        FASTSIM_STEADY_LAM, "histogram", (),
        "repro.runner.fastsim.find_steady_cycle / "
        "repro.runner.backends.BatchBackend",
        "Minimal steady-period lengths (Brent lambda) found by the "
        "cycle detector (scalar and batch lanes alike).",
    ),
    MetricSpec(
        FASTSIM_STEADY_MU, "histogram", (),
        "repro.runner.fastsim.find_steady_cycle / "
        "repro.runner.backends.BatchBackend",
        "Transient lengths (Brent mu) found by the cycle detector "
        "(scalar and batch lanes alike).",
    ),
    MetricSpec(
        SCHED_CHUNKS, "counter", ("scheduler",),
        "repro.runner.scheduling.ChunkRunner.observe_chunk",
        "Chunks dispatched by each scheduler (inline / pool / shard), "
        "stolen splits included.",
    ),
    MetricSpec(
        SCHED_SHARD_JOBS, "histogram", (),
        "repro.runner.sharding.ShardScheduler.execute",
        "Jobs hashed onto each shard's queue by the stable job-key "
        "partition (one observation per shard per batch).",
    ),
    MetricSpec(
        SCHED_STEALS, "counter", ("scheduler",),
        "repro.runner.scheduling.PoolScheduler / "
        "repro.runner.sharding.ShardScheduler",
        "Straggler chunks split (pool) or re-queued (shard) onto idle "
        "workers by the work-stealing scheduler.",
    ),
    MetricSpec(
        STORE_HITS, "counter", (),
        "repro.runner.store.ResultStore.get/get_many",
        "Result-store lookups served from a per-key payload file.",
    ),
    MetricSpec(
        STORE_MISSES, "counter", (),
        "repro.runner.store.ResultStore.get/get_many",
        "Result-store lookups that found no payload file.",
    ),
    MetricSpec(
        STORE_QUARANTINED, "counter", (),
        "repro.runner.store.ResultStore._load",
        "Corrupt result-store payload files moved aside to "
        "<file>.corrupt and treated as misses.",
    ),
    MetricSpec(
        STORE_WRITES, "counter", (),
        "repro.runner.store.ResultStore.put/put_many",
        "Payload files written to the result store (atomic temp-file "
        "plus os.replace).",
    ),
    MetricSpec(
        SERVE_BATCHES, "counter", (),
        "repro.serve.coalesce.Coalescer._drain",
        "Backend drain batches dispatched by the coalescer (each one "
        "SweepExecutor.run_many call over the queued unique jobs).",
    ),
    MetricSpec(
        SERVE_COALESCED, "counter", (),
        "repro.serve.coalesce.Coalescer.submit",
        "Requests folded onto an already in-flight computation of the "
        "same canonical job (the Appendix isomorphism is the dedup "
        "key).",
    ),
    MetricSpec(
        SERVE_QUEUE_DEPTH, "gauge", (),
        "repro.serve.coalesce.Coalescer.submit",
        "Canonical jobs queued for the next backend drain batch.",
    ),
    MetricSpec(
        SERVE_INFLIGHT, "gauge", (),
        "repro.serve.app.BandwidthService.dispatch",
        "Compute requests (/v1/beff, /v1/sweep) currently being "
        "served.",
    ),
    MetricSpec(
        SERVE_LATENCY, "histogram", ("endpoint",),
        "repro.serve.app.BandwidthService.dispatch",
        "Per-request service latency in integer microseconds, one "
        "series per endpoint (power-of-two buckets).",
    ),
    MetricSpec(
        SERVE_REQUESTS, "counter", ("endpoint", "status"),
        "repro.serve.app.BandwidthService.dispatch",
        "HTTP requests served, per endpoint and response status code.",
    ),
    MetricSpec(
        SERVE_SHED, "counter", (),
        "repro.serve.app.BandwidthService.dispatch",
        "Compute requests rejected with 429 + Retry-After because the "
        "in-flight cap was reached (load shedding).",
    ),
    MetricSpec(
        SERVE_LOOKUP, "counter", ("tier",),
        "repro.serve.lookup.LookupTier.probe",
        "Lookup-tier probes by resolution: analytic closed form, "
        "precomputed store entry, or miss (falls through to the "
        "simulation drain queue).",
    ),
    MetricSpec(
        ENGINE_CLOCKS, "counter", (),
        "repro.runner.backends.ReferenceBackend",
        "Clocks simulated by the reference engine through the runner.",
    ),
    MetricSpec(
        ENGINE_JOBS, "counter", (),
        "repro.runner.backends.ReferenceBackend",
        "Jobs run on the reference engine through the runner.",
    ),
    MetricSpec(
        ENGINE_STEADY_DETECTIONS, "counter", (),
        "repro.sim.engine.Engine.run_to_steady_state",
        "Steady-state detections performed by the reference engine "
        "(including legacy front ends).",
    ),
)

# ----------------------------------------------------------------------
# Span names
# ----------------------------------------------------------------------
SPAN_CLI = "cli.command"
SPAN_EXECUTOR_RUN_MANY = "executor.run_many"
SPAN_EXECUTOR_POOL = "executor.pool"
SPAN_EXECUTOR_RECOVERY = "executor.recovery"
SPAN_EXECUTOR_SHARD = "executor.shard"
SPAN_EXECUTOR_STEAL = "executor.steal"
SPAN_AUTO_RUN_BATCH = "backend.auto.run_batch"
SPAN_ENGINE_STEADY_DETECT = "engine.steady_detect"
SPAN_SERVE_REQUEST = "serve.request"
SPAN_SERVE_DRAIN = "serve.drain"

#: The full span contract, sorted by name.
SPAN_CONTRACT: tuple[SpanSpec, ...] = (
    SpanSpec(
        SPAN_AUTO_RUN_BATCH, ("jobs",),
        "repro.runner.analytic.AutoBackend.run_batch",
        "One batched tier dispatch through the auto backend.",
    ),
    SpanSpec(
        SPAN_CLI, ("command",),
        "repro.cli.main",
        "One repro-mem command dispatch, end to end.",
    ),
    SpanSpec(
        SPAN_ENGINE_STEADY_DETECT, ("start_cycle",),
        "repro.sim.engine.Engine.run_to_steady_state",
        "Brent detection phase of a reference-engine steady run "
        "(the statistics replay is outside the span).",
    ),
    SpanSpec(
        SPAN_EXECUTOR_POOL, ("chunks", "workers"),
        "repro.runner.scheduling.PoolScheduler.execute",
        "One process-pool fan-out over the batch's unique jobs.",
    ),
    SpanSpec(
        SPAN_EXECUTOR_RECOVERY, ("jobs", "attempt"),
        "repro.runner.scheduling.ChunkRunner.dispatch_inline",
        "One inline re-dispatch of previously failed work (retry or "
        "bisected half); emitted only on the failure path.",
    ),
    SpanSpec(
        SPAN_EXECUTOR_RUN_MANY, ("jobs",),
        "repro.runner.executor.SweepExecutor.run_many",
        "One executor batch: dedup, cache lookups, execution.",
    ),
    SpanSpec(
        SPAN_EXECUTOR_SHARD, ("chunks", "shards"),
        "repro.runner.sharding.ShardScheduler.execute",
        "One sharded fan-out: hash-partitioned queues drained by one "
        "worker process per shard over the shared result store.",
    ),
    SpanSpec(
        SPAN_EXECUTOR_STEAL, ("jobs", "scheduler"),
        "repro.runner.scheduling.PoolScheduler / "
        "repro.runner.sharding.ShardScheduler",
        "One work-stealing event: a queued straggler chunk split "
        "(pool) or migrated to an idle shard (shard).",
    ),
    SpanSpec(
        SPAN_SERVE_DRAIN, ("jobs",),
        "repro.serve.coalesce.Coalescer._drain",
        "One coalescer drain batch through the shared warm "
        "SweepExecutor (runs in a worker thread off the event loop).",
    ),
    SpanSpec(
        SPAN_SERVE_REQUEST, ("endpoint",),
        "repro.serve.app.BandwidthService.dispatch",
        "One HTTP request through the bandwidth-oracle service, "
        "route dispatch to response body.",
    ),
)


def metric_names() -> frozenset[str]:
    """Every contract metric name."""
    return frozenset(spec.name for spec in METRIC_CONTRACT)


def span_names() -> frozenset[str]:
    """Every contract span name."""
    return frozenset(spec.name for spec in SPAN_CONTRACT)
