"""Lightweight tracing spans over a monotonic clock.

This module is the repository's *only* sanctioned clock boundary: the
OBS001 lint rule forbids monotonic-clock reads anywhere else under
``repro``, so all wall-time attribution flows through these spans and
can be switched off centrally.  Durations are integer nanoseconds from
:func:`time.perf_counter_ns` — monotonic (DET001's wall-clock hazard
does not apply: span timings never feed simulation results) and exact.

Like the metrics registry, tracing is disabled by default: with no
active recorder, :func:`span` returns one shared no-op context manager
— no allocation, two method calls, nothing recorded::

    with span("executor.run_many", jobs=len(jobs)):
        ...

Enable with :func:`capture_spans` (scoped) or :func:`enable_tracing`.
Spans record their nesting depth at entry, so a recorder's ``spans``
list renders as a call tree.  Recorders are per-process: work fanned
out to pool workers traces in the worker, not the parent.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Span",
    "Stopwatch",
    "TraceRecorder",
    "span",
    "active_trace",
    "enable_tracing",
    "disable_tracing",
    "capture_spans",
]


class Stopwatch:
    """An explicit elapsed-time reading inside the clock boundary.

    Spans attribute time to *recorded* phases and vanish when tracing
    is off; some callers (the :mod:`repro.serve` request loop) need an
    elapsed reading unconditionally — per-request latency feeds a
    histogram whether or not a recorder is active.  ``Stopwatch`` is
    that reading, kept inside this module so OBS001's "one clock
    boundary" invariant holds: consumers receive integer durations,
    never the clock itself, and a duration can no more leak into a
    simulation result than a span timing can.

    >>> watch = Stopwatch()
    >>> ...                      # the timed region
    >>> watch.elapsed_us()       # exact integer microseconds
    """

    __slots__ = ("_start_ns",)

    def __init__(self) -> None:
        self._start_ns = time.perf_counter_ns()

    def restart(self) -> None:
        """Reset the reference point to now."""
        self._start_ns = time.perf_counter_ns()

    def elapsed_ns(self) -> int:
        """Integer nanoseconds since construction (or ``restart``)."""
        return time.perf_counter_ns() - self._start_ns

    def elapsed_us(self) -> int:
        """Integer microseconds since construction (floor division)."""
        return self.elapsed_ns() // 1000


class Span:
    """One finished (or in-flight) span: name, labels, timing, depth."""

    __slots__ = ("name", "labels", "start_ns", "end_ns", "depth")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        start_ns: int,
        depth: int,
    ) -> None:
        self.name = name
        self.labels = labels
        self.start_ns = start_ns
        self.end_ns: int | None = None
        self.depth = depth

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds; raises while the span is still open."""
        if self.end_ns is None:
            raise ValueError(f"span {self.name!r} has not finished")
        return self.end_ns - self.start_ns

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "depth": self.depth,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
        }


class _LiveSpan:
    """Context manager recording one span into a recorder."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "TraceRecorder", span_: Span) -> None:
        self._recorder = recorder
        self._span = span_

    def __enter__(self) -> Span:
        rec = self._recorder
        rec._depth += 1
        self._span.start_ns = time.perf_counter_ns()
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._span.end_ns = time.perf_counter_ns()
        self._recorder._depth -= 1


class _NullSpan:
    """The shared do-nothing span used while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Collects finished spans, in entry order, with nesting depth."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._depth = 0

    def span(self, name: str, **labels: object) -> _LiveSpan:
        s = Span(
            name,
            tuple(sorted((k, str(v)) for k, v in labels.items())),
            0,
            self._depth,
        )
        self.spans.append(s)
        return _LiveSpan(self, s)

    def finished(self) -> list[Span]:
        """Spans that have closed (open spans are skipped, not errors)."""
        return [s for s in self.spans if s.end_ns is not None]


# ----------------------------------------------------------------------
# The process-wide switch
# ----------------------------------------------------------------------
_ACTIVE: TraceRecorder | None = None


def active_trace() -> TraceRecorder | None:
    """The enabled recorder, or ``None`` (the default)."""
    return _ACTIVE


def span(name: str, **labels: object) -> "_LiveSpan | _NullSpan":
    """A context manager timing one span — a shared no-op when disabled."""
    rec = _ACTIVE
    if rec is None:
        return _NULL_SPAN
    return rec.span(name, **labels)


def enable_tracing(
    recorder: TraceRecorder | None = None,
) -> TraceRecorder:
    """Install ``recorder`` (or a fresh one) as the active recorder."""
    global _ACTIVE
    _ACTIVE = recorder if recorder is not None else TraceRecorder()
    return _ACTIVE


def disable_tracing() -> None:
    """Return to the no-op default."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def capture_spans(
    recorder: TraceRecorder | None = None,
) -> Iterator[TraceRecorder]:
    """Scoped enablement: activate a recorder, restore the old state."""
    global _ACTIVE
    prev = _ACTIVE
    rec = recorder if recorder is not None else TraceRecorder()
    _ACTIVE = rec
    try:
        yield rec
    finally:
        _ACTIVE = prev
