"""Unified simulation runner: jobs, backends, and sweep execution.

Every simulation in the repository flows through three layers:

``job``
    :class:`SimJob` — a frozen, hashable run description that
    canonicalizes equivalent jobs via the Appendix isomorphism — and
    :class:`SimOutcome`, the exact :class:`~fractions.Fraction` result.
``backends``
    :class:`SimBackend` protocol (per-job ``run`` plus batched
    ``run_batch``) with a tiered set of implementations: the
    ``reference`` object-per-port engine (ground truth, stats, traces),
    the ``fast`` flat-array engine with Brent steady-cycle detection
    (bit-identical steady results, orders of magnitude the throughput),
    the ``batch`` structure-of-arrays engine (whole populations stepped
    in NumPy lockstep, bit-identical to ``fast``), the strict
    ``analytic`` closed-form solver (Tier A: theorem-decided jobs
    only), and ``auto`` — closed form when the theory decides, the
    batch core for large undecided populations, fast simulation
    otherwise.  Select per call or via the ``REPRO_SIM_BACKEND``
    environment variable.
``executor``
    :class:`SweepExecutor` — deduplicates isomorphic jobs, memoizes
    outcomes in an LRU in-process cache and a crash-safe on-disk JSON
    cache (quarantine-on-corruption, merge-on-flush, periodic
    auto-flush), and hands placement to a scheduler.
``scheduling`` / ``sharding`` / ``store``
    The scheduler split: :class:`ChunkRunner` is the execution core;
    :class:`InlineScheduler`, :class:`PoolScheduler` (shared work queue
    with straggler-splitting work stealing) and :class:`ShardScheduler`
    (hash-partitioned workers exchanging results through a
    content-addressed :class:`ResultStore`) place its chunks.  All
    schedulers return bit-identical outcomes (see docs/RUNNER.md
    "Scheduling").
``resilience``
    :class:`RetryPolicy` — fault-tolerant sweep execution: bounded
    retries on a deterministic backoff schedule, pool rebuilds on
    ``BrokenProcessPool``/timeout, bisection isolation of poisoned
    jobs (surfaced as :class:`FailedOutcome` or, strictly, as
    :class:`SweepFailureError`), and graceful degradation to inline
    execution.

The historical front ends (:func:`repro.sim.pairs.simulate_pair`,
:func:`repro.sim.multi.simulate_multi`, the statespace detector) are
thin adapters over :func:`run`.
"""

from .analytic import solve
from .api import run
from .backends import (
    BACKEND_ENV_VAR,
    AnalyticBackend,
    AutoBackend,
    BatchBackend,
    FastBackend,
    ReferenceBackend,
    SimBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from .executor import ExecutorStats, SweepExecutor, default_executor
from .job import SimJob, SimOutcome, jobs_for_offsets
from .resilience import (
    FailedJobError,
    FailedOutcome,
    RetryPolicy,
    SweepFailureError,
)
from .regime import (
    ObservedRegime,
    full_rate_streams,
    is_conflict_free,
    observe_pair_regime,
)
from .scheduling import (
    ChunkRunner,
    InlineScheduler,
    PoolScheduler,
    Scheduler,
)
from .sharding import ShardScheduler, shard_of
from .store import ResultStore

__all__ = [
    "AnalyticBackend",
    "AutoBackend",
    "BACKEND_ENV_VAR",
    "BatchBackend",
    "ChunkRunner",
    "ExecutorStats",
    "FailedJobError",
    "FailedOutcome",
    "FastBackend",
    "InlineScheduler",
    "ObservedRegime",
    "PoolScheduler",
    "ReferenceBackend",
    "ResultStore",
    "RetryPolicy",
    "Scheduler",
    "ShardScheduler",
    "SimBackend",
    "SimJob",
    "SimOutcome",
    "SweepExecutor",
    "SweepFailureError",
    "available_backends",
    "default_executor",
    "full_rate_streams",
    "get_backend",
    "is_conflict_free",
    "jobs_for_offsets",
    "observe_pair_regime",
    "resolve_backend",
    "run",
    "shard_of",
    "solve",
]
