"""Unified simulation runner: jobs, backends, and sweep execution.

Every simulation in the repository flows through three layers:

``job``
    :class:`SimJob` — a frozen, hashable run description that
    canonicalizes equivalent jobs via the Appendix isomorphism — and
    :class:`SimOutcome`, the exact :class:`~fractions.Fraction` result.
``backends``
    :class:`SimBackend` protocol with two implementations: the
    ``reference`` object-per-port engine (ground truth, stats, traces)
    and the ``fast`` flat-array engine (bit-identical steady results,
    several times the throughput).  Select per call or via the
    ``REPRO_SIM_BACKEND`` environment variable.
``executor``
    :class:`SweepExecutor` — deduplicates isomorphic jobs, memoizes
    outcomes in-process and in an on-disk JSON cache, and fans out over
    ``concurrent.futures`` workers.

The historical front ends (:func:`repro.sim.pairs.simulate_pair`,
:func:`repro.sim.multi.simulate_multi`, the statespace detector) are
thin adapters over :func:`run`.
"""

from .api import run
from .backends import (
    BACKEND_ENV_VAR,
    FastBackend,
    ReferenceBackend,
    SimBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from .executor import ExecutorStats, SweepExecutor, default_executor
from .job import SimJob, SimOutcome, jobs_for_offsets
from .regime import (
    ObservedRegime,
    full_rate_streams,
    is_conflict_free,
    observe_pair_regime,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "ExecutorStats",
    "FastBackend",
    "ObservedRegime",
    "ReferenceBackend",
    "SimBackend",
    "SimJob",
    "SimOutcome",
    "SweepExecutor",
    "available_backends",
    "default_executor",
    "full_rate_streams",
    "get_backend",
    "is_conflict_free",
    "jobs_for_offsets",
    "observe_pair_regime",
    "resolve_backend",
    "run",
]
