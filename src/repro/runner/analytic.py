"""Tier A: closed-form steady-state answers, straight from the theory.

Large sweeps ask the same question millions of times — "what is the
exact steady state of these streams on this memory?" — and for a big
slice of the parameter space the paper already answers it in closed
form.  This module turns those theorems into a *solver*: given a
:class:`~repro.runner.job.SimJob`, :func:`solve` either returns a
:class:`~repro.runner.job.SimOutcome` **bit-identical to what the
simulation backends would produce** (same exact ``Fraction`` bandwidth,
same minimal period, same per-port grants over that period, same
transient length, same total cycles) or ``None`` — *undecided*, fall
through to simulation.  It never guesses: every decided case rests on a
certificate that pins the whole trajectory, and the property suite
cross-checks decided outcomes against both simulation backends
exhaustively on small machines.

Decided regimes
---------------
Single stream (Theorem 1 + §III-A)
    The return number ``r = m / gcd(m, d)`` fixes everything: a stream
    with ``r >= n_c`` runs at full rate with transient ``n_c - 1`` and
    period ``r``; one with ``r < n_c`` self-conflicts into an
    ``n_c``-clock period with ``r`` grants and transient ``r - 1``.
Bank-disjoint pair (Theorem 2)
    With ``f = gcd(m, d1, d2) > 1`` and start banks in different residue
    classes mod ``f``, the streams never touch a common bank; the joint
    steady state is the independent product of the single-stream forms
    (transient ``max``, period ``lcm``, grants scaled per stream).
Conflict-free pair (Theorem 3 machinery, start-resolved)
    Both streams full-rate and, for every skew ``|j| < n_c``, the
    congruence ``c + j·d1 ≡ 0 (mod gcd(m, d1 - d2))`` unsolvable — no
    clock ever sees a busy or simultaneous bank, so both streams run at
    rate 1 with transient ``n_c - 1`` and period ``lcm(r1, r2)``.

The barrier regime (Theorems 4-7) pins the steady *bandwidth* but not
the transient length for arbitrary starts, so barrier jobs are left to
the simulator — returning ``undecided`` is the honest answer whenever
the full outcome tuple is not certain.

Gates
-----
The certificates describe bank behaviour, so the solver only fires when
arbitration state cannot leak into the steady detector's state key:
priority rules with constant snapshots (any rule is constant for one
port except ``block-cyclic``; two-port jobs require ``fixed``) and
section topologies where path conflicts coincide with bank conflicts
(distinct CPUs, or one section per bank).
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Sequence

from ..core.arithmetic import lcm
from ..obs import metrics as _metrics
from ..obs import names as _names
from ..obs import trace as _trace
from .job import SimJob, SimOutcome

__all__ = ["solve", "AnalyticBackend", "AutoBackend"]


def _record_decided(theorem: str) -> None:
    """Count one closed-form decision (no-op unless metrics are on)."""
    reg = _metrics.active_metrics()
    if reg is not None:
        reg.counter(_names.ANALYTIC_DECIDED, theorem=theorem).inc()

#: Rules whose snapshot is constant when arbitrating a single port.
#: (``block-cyclic`` free-runs a clock counter even with no conflicts.)
_SINGLE_SAFE = frozenset(("fixed", "cyclic", "lru"))


def _single_form(m: int, n_c: int, d: int) -> tuple[int, int, int]:
    """``(transient, period, grants)`` of one infinite stream, exact.

    ``r = m / gcd(m, d)`` banks participate (Theorem 1; ``d = 0`` gives
    ``r = 1``).  ``r >= n_c`` — full rate: the state (pending bank +
    busy counters) first repeats with period ``r`` after the ``n_c - 1``
    clock busy-ramp.  ``r < n_c`` — the stream stalls on its own busy
    banks: ``r`` grants per ``n_c`` clocks, transient ``r - 1``.
    """
    r = m // gcd(m, d)
    if r >= n_c:
        return n_c - 1, r, r
    return r - 1, n_c, r


def _outcome(
    job: SimJob, mu: int, lam: int, grants: Sequence[int]
) -> SimOutcome | None:
    """Package a decided answer, honouring the job's cycle bound."""
    if mu + lam > job.max_cycles:
        # The simulator would exhaust its bound; let it raise its error.
        return None
    return SimOutcome(
        job=job,
        backend="analytic",
        bandwidth=Fraction(sum(grants), lam),
        period=lam,
        grants=tuple(grants),
        steady_start=mu,
        cycles=mu + lam,
    )


def _solve_single(job: SimJob) -> SimOutcome | None:
    if job.priority not in _SINGLE_SAFE:
        return None
    if job.intra_priority is not None and job.intra_priority not in _SINGLE_SAFE:
        return None
    _, d = job.streams[0]
    mu, lam, r = _single_form(job.banks, job.bank_cycle, d)
    out = _outcome(job, mu, lam, (r,))
    if out is not None:
        _record_decided("t1-single")
    return out


def _solve_pair(job: SimJob) -> SimOutcome | None:
    # Stateless arbitration only: any stateful rule's snapshot would
    # enter the detector's state key and stretch the reported period.
    if job.priority != "fixed" or job.intra_priority not in (None, "fixed"):
        return None
    # Section conflicts must coincide with bank conflicts: distinct CPUs
    # (no shared path) or one section per bank.
    if len(set(job.cpus)) != 2 and job.effective_sections != job.banks:
        return None
    m = job.banks
    n_c = job.bank_cycle
    (b1, d1), (b2, d2) = job.streams

    # Theorem 2 — bank-disjoint: gcd(m, d1, d2) = f > 1 splits the banks
    # into residue classes mod f that each stream can never leave.
    f = gcd(gcd(m, d1), d2)
    if f > 1 and (b2 - b1) % f != 0:
        mu1, lam1, r1 = _single_form(m, n_c, d1)
        mu2, lam2, r2 = _single_form(m, n_c, d2)
        lam = lcm(lam1, lam2)
        grants = ((lam // lam1) * r1, (lam // lam2) * r2)
        out = _outcome(job, max(mu1, mu2), lam, grants)
        if out is not None:
            _record_decided("t2-disjoint")
        return out

    # Conflict-free from these starts: both streams individually
    # full-rate, and no clock skew |j| < n_c ever lands the two streams
    # on one bank.  Assuming full rate, stream 2 at clock t and stream 1
    # at clock t - j collide iff c + t·(d2 - d1) + j·d1 ≡ 0 (mod m),
    # which has a solution in t iff c + j·d1 ≡ 0 (mod gcd(m, d1 - d2)).
    # Unsolvable for every relevant j ⇒ the full-rate assumption is
    # self-consistent and exact from clock 0.
    r1 = m // gcd(m, d1)
    r2 = m // gcd(m, d2)
    if r1 < n_c or r2 < n_c:
        return None
    c = (b2 - b1) % m
    g = gcd(m, d1 - d2)  # d1 == d2 -> gcd(m, 0) = m
    if all((c + j * d1) % g for j in range(-(n_c - 1), n_c)):
        lam = lcm(r1, r2)
        out = _outcome(job, n_c - 1, lam, (lam, lam))
        if out is not None:
            _record_decided("t3-start-resolved")
        return out

    # Possible conflicts (barrier or worse): leave to the simulator.
    return None


def _policy_safe(job: SimJob) -> bool:
    """Whether the job's arbiter policy leaves the closed forms exact.

    A ``wfq`` arbiter free-runs its schedule slot (the ``block-cyclic``
    problem: constant state is what the certificates assume), so any
    explicit arbiter is undecided.  Regulators are undecided too —
    *unless* every bucket is vacuous (``rate >= window``): such a bucket
    refills to its cap every clock, never vetoes, and contributes a
    constant snapshot, so the trajectory and the detector's answer are
    bit-identical to the unregulated job.  Anything else returns
    ``False`` and the solver honestly reports *undecided* — the
    never-wrong property test locks this in.
    """
    if job.arbiter is not None:
        return False
    if job.regulate:
        from ..sim.arbiter import regulation_is_vacuous

        return regulation_is_vacuous(job.regulate)
    return True


def solve(job: SimJob) -> SimOutcome | None:
    """Closed-form outcome of ``job``, or ``None`` when undecided.

    A non-``None`` return is exact and bit-identical to simulation;
    ``None`` means "the theory does not pin this job down" — never an
    approximation.
    """
    if not job.steady or job.trace:
        return None
    if not _policy_safe(job):
        return None
    n = len(job.streams)
    if n == 1:
        return _solve_single(job)
    if n == 2:
        return _solve_pair(job)
    return None


class AnalyticBackend:
    """The solver as a strict backend: raises on undecided jobs.

    Useful for probing coverage; sweeps want :class:`AutoBackend`,
    which falls back to simulation instead.
    """

    name = "analytic"
    #: Closed forms cost microseconds per job; big chunks amortise the
    #: dispatch overhead.
    preferred_chunk = 1024

    def run(self, job: SimJob) -> SimOutcome:
        out = solve(job)
        if out is None:
            raise ValueError(
                "job is not analytically decided; run it on the auto/fast "
                f"backend ({job.describe()})"
            )
        return out

    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimOutcome]:
        return [self.run(job) for job in jobs]


class AutoBackend:
    """Tier dispatch: closed form when the theory decides, then the
    lockstep batch core for large undecided populations, scalar fast
    simulation for the rest."""

    name = "auto"
    #: Large chunks keep the batch tier's lockstep populations wide.
    preferred_chunk = 2048

    def run(self, job: SimJob) -> SimOutcome:
        out = solve(job)
        reg = _metrics.active_metrics()
        if out is not None:
            if reg is not None:
                reg.counter(_names.AUTO_DISPATCH, tier="analytic").inc()
            return out
        if reg is not None:
            reg.counter(_names.AUTO_DISPATCH, tier="fastsim").inc()
        from .backends import get_backend

        return get_backend("fast").run(job)

    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimOutcome]:
        """Solve what the theory decides; the undecided rest goes to the
        lockstep batch core when the population is large enough to
        amortise its array setup, to scalar fast simulation otherwise.
        Trace jobs always run scalar (the batch core keeps no trace)."""
        from .backends import get_backend
        from .batchsim import BATCH_MIN_POPULATION

        with _trace.span(_names.SPAN_AUTO_RUN_BATCH, jobs=len(jobs)):
            out: list[SimOutcome | None] = []
            rest: list[int] = []
            for i, job in enumerate(jobs):
                o = solve(job)
                out.append(o)
                if o is None:
                    rest.append(i)
            batched = (
                len(rest) >= BATCH_MIN_POPULATION
                and not any(jobs[i].trace for i in rest)
            )
            reg = _metrics.active_metrics()
            if reg is not None:
                decided = len(jobs) - len(rest)
                if decided:
                    reg.counter(
                        _names.AUTO_DISPATCH, tier="analytic"
                    ).inc(decided)
                if rest:
                    tier = "batch" if batched else "fastsim"
                    reg.counter(
                        _names.AUTO_DISPATCH, tier=tier
                    ).inc(len(rest))
            if rest:
                sim = get_backend("batch" if batched else "fast")
                ran = sim.run_batch([jobs[i] for i in rest])
                for i, o in zip(rest, ran):
                    out[i] = o
            assert all(o is not None for o in out)
            return [o for o in out if o is not None]
