"""``run(job)`` — the one simulation entry point.

Every front end (``simulate_pair``, ``simulate_multi``, the statespace
detector, the sweeps, the CLI) is a thin adapter over this function.
"""

from __future__ import annotations

from .backends import SimBackend, resolve_backend
from .job import SimJob, SimOutcome

__all__ = ["run"]


def run(job: SimJob, *, backend: SimBackend | str | None = None) -> SimOutcome:
    """Execute one job and return its exact outcome.

    ``backend`` may be a name (``"reference"`` / ``"fast"``), a
    :class:`~repro.runner.backends.SimBackend` instance, or ``None`` to
    consult the ``REPRO_SIM_BACKEND`` environment variable (default:
    reference).  Trace jobs always run on the reference backend.
    """
    return resolve_backend(backend, job).run(job)
