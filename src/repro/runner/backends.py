"""Simulation backends: one protocol, two engines.

``reference``
    The object-per-port engine of :mod:`repro.sim.engine` — full
    fidelity: conflict statistics, trace recording, the works.  This is
    the semantic ground truth.
``fast``
    A flat-array re-implementation of the same two-stage arbitration:
    bank-busy countdowns and port positions live in plain integer lists,
    the bank→section table is precomputed, and no per-clock statistics
    are kept.  It produces bit-identical steady-state results (exact
    ``Fraction`` bandwidth, period, per-port grants, transient length) at
    a multiple of the reference throughput, and is cross-checked against
    the reference by ``tests/property/test_backend_equivalence.py`` on
    every CI run.

Backend selection: pass ``backend=`` to :func:`repro.runner.api.run`, or
set the ``REPRO_SIM_BACKEND`` environment variable (``reference`` /
``fast``).  Jobs that request a trace always run on the reference
backend — the fast path keeps no event log.
"""

from __future__ import annotations

import os
from fractions import Fraction
from typing import Protocol, runtime_checkable

from .job import SimJob, SimOutcome

__all__ = [
    "SimBackend",
    "ReferenceBackend",
    "FastBackend",
    "BACKEND_ENV_VAR",
    "available_backends",
    "get_backend",
    "resolve_backend",
]

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"


@runtime_checkable
class SimBackend(Protocol):
    """Anything that can turn a :class:`SimJob` into a :class:`SimOutcome`."""

    name: str

    def run(self, job: SimJob) -> SimOutcome:  # pragma: no cover - protocol
        ...


class ReferenceBackend:
    """The original object-per-port engine (semantic ground truth)."""

    name = "reference"

    def run(self, job: SimJob) -> SimOutcome:
        # Imported lazily: the runner is a lower layer than repro.sim's
        # front ends, which import the runner in turn.
        from ..core.stream import AccessStream
        from ..sim.engine import simulate_streams

        streams = [
            AccessStream(start_bank=b, stride=d, label=str(i + 1))
            for i, (b, d) in enumerate(job.streams)
        ]
        res = simulate_streams(
            job.config,
            streams,
            cpus=list(job.cpus),
            priority=job.priority,
            intra_priority=job.intra_priority,
            steady=job.steady,
            cycles=None if job.steady else job.cycles,
            trace=job.trace,
            max_cycles=job.max_cycles,
        )
        if job.steady:
            assert res.steady_bandwidth is not None
            assert res.steady_period is not None
            assert res.steady_grants is not None and res.steady_start is not None
            return SimOutcome(
                job=job,
                backend=self.name,
                bandwidth=res.steady_bandwidth,
                period=res.steady_period,
                grants=res.steady_grants,
                steady_start=res.steady_start,
                cycles=res.cycles,
                result=res,
            )
        return SimOutcome(
            job=job,
            backend=self.name,
            bandwidth=res.stats.effective_bandwidth() if res.cycles else Fraction(0),
            period=None,
            grants=tuple(res.stats.per_port_grants()),
            steady_start=None,
            cycles=res.cycles,
            result=res,
        )


class FastBackend:
    """Flat-array engine: same arbitration, no per-request objects.

    Per clock the reference engine pays for ``Port`` method calls, stats
    recording, trace hooks and a full-width bank tick; the fast path
    keeps four integer lists (bank busy countdowns, pending bank / stride
    per port, active-bank list) plus the precomputed bank→section table,
    and arbitrates straight on them.  The priority rules are the *same*
    tiny state machines as the reference (they are part of the simulated
    state), so winners — and therefore trajectories — match exactly.
    """

    name = "fast"

    def run(self, job: SimJob) -> SimOutcome:
        if job.trace:
            raise ValueError(
                "the fast backend keeps no trace; run trace jobs on the "
                "reference backend"
            )
        from ..memory.sections import section_map_for
        from ..sim.priority import make_priority

        cfg = job.config
        m = cfg.banks
        n_c = cfg.bank_cycle
        n = len(job.streams)
        smap = section_map_for(cfg)
        sect = [smap.section_of(j) for j in range(m)]
        cpu = list(job.cpus)
        pos = [b for b, _ in job.streams]
        stride = [d for _, d in job.streams]
        prio = make_priority(job.priority, n)
        intra = (
            prio
            if job.intra_priority is None
            else make_priority(job.intra_priority, n)
        )
        same_rule = intra is prio

        busy = [0] * m
        active: list[int] = []
        grants = [0] * n
        cycle = 0
        ports = list(range(n))

        def step() -> None:
            nonlocal cycle, active
            # Phase 1 — bank conflicts: active banks reject everyone.
            free = [p for p in ports if not busy[pos[p]]]
            # Phase 2 — section conflicts: per (cpu, path) at most one.
            if len(free) > 1:
                groups: dict[tuple[int, int], list[int]] = {}
                for p in free:
                    key = (cpu[p], sect[pos[p]])
                    g = groups.get(key)
                    if g is None:
                        groups[key] = [p]
                    else:
                        g.append(p)
                if len(groups) != len(free):
                    free = [
                        members[0]
                        if len(members) == 1
                        else intra.choose(members, cycle)
                        for members in groups.values()
                    ]
                # Phase 3 — simultaneous bank conflicts: per bank at most
                # one grant (cross-CPU by construction after phase 2).
                if len(free) > 1:
                    banks: dict[int, list[int]] = {}
                    for p in free:
                        b = pos[p]
                        g = banks.get(b)
                        if g is None:
                            banks[b] = [p]
                        else:
                            g.append(p)
                    if len(banks) != len(free):
                        free = [
                            members[0]
                            if len(members) == 1
                            else prio.choose(sorted(members), cycle)
                            for members in banks.values()
                        ]
            # Commit grants.
            for p in free:
                b = pos[p]
                busy[b] = n_c
                active.append(b)
                grants[p] += 1
                b += stride[p]
                pos[p] = b - m if b >= m else b
                prio.granted(p, cycle)
            # Clock edge.
            if active:
                nxt = []
                for b in active:
                    c = busy[b] - 1
                    busy[b] = c
                    if c:
                        nxt.append(b)
                active = nxt
            prio.tick(cycle)
            if not same_rule:
                intra.tick(cycle)
            cycle += 1

        if not job.steady:
            assert job.cycles is not None
            for _ in range(job.cycles):
                step()
            total = sum(grants)
            return SimOutcome(
                job=job,
                backend=self.name,
                bandwidth=Fraction(total, cycle) if cycle else Fraction(0),
                period=None,
                grants=tuple(grants),
                steady_start=None,
                cycles=cycle,
            )

        # Steady-state detection — the exact loop of
        # Engine.run_to_steady_state over the same state key.
        seen: dict[tuple, tuple[int, tuple[int, ...]]] = {}
        while cycle <= job.max_cycles:
            key = (tuple(busy), tuple(pos), prio.snapshot(), intra.snapshot())
            grants_now = tuple(grants)
            hit = seen.get(key)
            if hit is not None:
                cycle0, grants0 = hit
                period = cycle - cycle0
                per_port = tuple(
                    g1 - g0 for g0, g1 in zip(grants0, grants_now)
                )
                return SimOutcome(
                    job=job,
                    backend=self.name,
                    bandwidth=Fraction(sum(per_port), period),
                    period=period,
                    grants=per_port,
                    steady_start=cycle0,
                    cycles=cycle,
                )
            seen[key] = (cycle, grants_now)
            step()
        raise RuntimeError(
            f"no cyclic state within {job.max_cycles} cycles "
            "(state space exhausted the bound)"
        )


_INSTANCES: dict[str, SimBackend] = {}
_CLASSES: dict[str, type] = {
    ReferenceBackend.name: ReferenceBackend,
    FastBackend.name: FastBackend,
}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` / ``--backend``."""
    return tuple(sorted(_CLASSES))


def get_backend(name: str) -> SimBackend:
    """Shared backend instance for ``name`` (``reference`` / ``fast``)."""
    try:
        inst = _INSTANCES.get(name)
        if inst is None:
            inst = _INSTANCES[name] = _CLASSES[name]()
        return inst
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {available_backends()}"
        ) from None


def resolve_backend(
    backend: "SimBackend | str | None", job: SimJob | None = None
) -> SimBackend:
    """Resolve the backend for a run.

    Precedence: explicit argument > ``REPRO_SIM_BACKEND`` env var >
    ``reference``.  Trace jobs always resolve to the reference backend
    (the fast path keeps no event log).
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or ReferenceBackend.name
    if isinstance(backend, str):
        backend = get_backend(backend)
    if job is not None and job.trace and backend.name != ReferenceBackend.name:
        backend = get_backend(ReferenceBackend.name)
    return backend
