"""Simulation backends: one protocol, a tiered set of engines.

``reference``
    The object-per-port engine of :mod:`repro.sim.engine` — full
    fidelity: conflict statistics, trace recording, the works.  This is
    the semantic ground truth.
``fast``
    The flat-array core of :mod:`repro.runner.fastsim` — the same
    two-stage arbitration over plain integer lists, with Brent's
    cycle detection instead of a visited-state dictionary.  It produces
    bit-identical steady-state results (exact ``Fraction`` bandwidth,
    period, per-port grants, transient length) at a multiple of the
    reference throughput, and is cross-checked against the reference by
    ``tests/property/test_backend_equivalence.py`` on every CI run.
``analytic``
    The closed-form solver of :mod:`repro.runner.analytic` as a strict
    backend — raises on jobs the theory does not decide.
``batch``
    The lockstep structure-of-arrays core of
    :mod:`repro.runner.batchsim` — whole populations advanced as NumPy
    int64 state, bit-identical per job to the fast backend (which stays
    on as the scalar bit-exactness oracle and the tail fallback).
``auto``
    The production tier dispatch: closed form when a theorem certifies
    the outcome, batch lockstep for large undecided populations, fast
    simulation otherwise.

All backends also answer :meth:`SimBackend.run_batch`, which amortises
per-job setup (shared section tables, one dispatch) across a sweep
chunk — the executor's workers call it once per chunk.  Each backend
advertises a ``preferred_chunk`` hint: the chunk size below which
splitting a batch further stops paying (the executor sizes its worker
chunks with it).

Backend selection: pass ``backend=`` to :func:`repro.runner.api.run`, or
set the ``REPRO_SIM_BACKEND`` environment variable.  Jobs that request a
trace always run on the reference backend — the fast path keeps no
event log.
"""

from __future__ import annotations

import os
from dataclasses import replace
from fractions import Fraction
from typing import Protocol, Sequence, runtime_checkable

from ..memory.config import MemoryConfig
from ..obs import metrics as _metrics
from ..obs import names as _names
from .analytic import AnalyticBackend, AutoBackend
from .batchsim import SectCache, run_span_batch, run_steady_batch
from .fastsim import FlatSim, find_steady_cycle
from .job import SimJob, SimOutcome

__all__ = [
    "SimBackend",
    "ReferenceBackend",
    "FastBackend",
    "BatchBackend",
    "AnalyticBackend",
    "AutoBackend",
    "BACKEND_ENV_VAR",
    "available_backends",
    "get_backend",
    "resolve_backend",
]

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"


@runtime_checkable
class SimBackend(Protocol):
    """Anything that can turn a :class:`SimJob` into a :class:`SimOutcome`."""

    name: str
    #: Chunk-size hint for the executor: the largest chunk this backend
    #: still benefits from receiving whole (1 = per-job dispatch is
    #: as good as it gets).
    preferred_chunk: int

    def run(self, job: SimJob) -> SimOutcome:  # pragma: no cover - protocol
        ...

    def run_batch(
        self, jobs: Sequence[SimJob]
    ) -> list[SimOutcome]:  # pragma: no cover - protocol
        """Run many jobs in one call, amortising per-job setup."""
        ...


class ReferenceBackend:
    """The original object-per-port engine (semantic ground truth)."""

    name = "reference"
    preferred_chunk = 1

    def run(self, job: SimJob) -> SimOutcome:
        # Imported lazily: the runner is a lower layer than repro.sim's
        # front ends, which import the runner in turn.
        from ..core.stream import AccessStream
        from ..sim.engine import simulate_streams

        streams = [
            AccessStream(start_bank=b, stride=d, label=str(i + 1))
            for i, (b, d) in enumerate(job.streams)
        ]
        res = simulate_streams(
            job.config,
            streams,
            cpus=list(job.cpus),
            priority=job.priority,
            intra_priority=job.intra_priority,
            arbiter=job.arbiter,
            regulate=job.regulate,
            steady=job.steady,
            cycles=None if job.steady else job.cycles,
            trace=job.trace,
            max_cycles=job.max_cycles,
        )
        reg = _metrics.active_metrics()
        if reg is not None:
            reg.counter(_names.ENGINE_JOBS).inc()
            reg.counter(_names.ENGINE_CLOCKS).inc(res.cycles)
            vetoes = res.stats.summary().get("regulated_conflicts", 0)
            if vetoes:
                reg.counter(_names.ARBITER_VETOES).inc(vetoes)
        if job.steady:
            assert res.steady_bandwidth is not None
            assert res.steady_period is not None
            assert res.steady_grants is not None and res.steady_start is not None
            return SimOutcome(
                job=job,
                backend=self.name,
                bandwidth=res.steady_bandwidth,
                period=res.steady_period,
                grants=res.steady_grants,
                steady_start=res.steady_start,
                cycles=res.cycles,
                result=res,
            )
        return SimOutcome(
            job=job,
            backend=self.name,
            bandwidth=res.stats.effective_bandwidth() if res.cycles else Fraction(0),
            period=None,
            grants=tuple(res.stats.per_port_grants()),
            steady_start=None,
            cycles=res.cycles,
            result=res,
        )

    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimOutcome]:
        return [self.run(job) for job in jobs]


class FastBackend:
    """Flat-array engine: same arbitration, no per-request objects.

    Per clock the reference engine pays for ``Port`` method calls, stats
    recording, trace hooks and a full-width bank tick; the fast path
    keeps four integer lists (bank busy countdowns, pending bank / stride
    per port, active-bank list) plus the precomputed bank→section table,
    and arbitrates straight on them.  The priority rules are the *same*
    tiny state machines as the reference (they are part of the simulated
    state), so winners — and therefore trajectories — match exactly.
    """

    name = "fast"
    #: Shared section tables amortise across a few dozen jobs; beyond
    #: that the per-job Python stepping dominates either way.
    preferred_chunk = 32

    def run(self, job: SimJob) -> SimOutcome:
        return self._run_with_sect(job, None)

    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimOutcome]:
        """Run many jobs, sharing precomputed tables across the batch.

        Jobs with the same memory shape reuse one bank→section table —
        the per-job setup cost that dominates small steady runs in a
        sweep.
        """
        sect_cache: dict[MemoryConfig, list[int]] = {}
        out: list[SimOutcome] = []
        for job in jobs:
            cfg = job.config
            sect = sect_cache.get(cfg)
            if sect is None:
                from ..memory.sections import section_map_for

                smap = section_map_for(cfg)
                sect = [smap.section_of(j) for j in range(cfg.banks)]
                sect_cache[cfg] = sect
            out.append(self._run_with_sect(job, sect))
        return out

    def _run_with_sect(
        self, job: SimJob, sect: "list[int] | None"
    ) -> SimOutcome:
        if job.trace:
            raise ValueError(
                "the fast backend keeps no trace; run trace jobs on the "
                "reference backend"
            )
        reg = _metrics.active_metrics()
        if reg is not None and (job.arbiter is not None or job.regulate):
            kind = "wfq" if job.arbiter is not None else "regulated"
            if job.arbiter is not None and job.regulate:
                kind = "wfq+regulated"
            reg.counter(_names.ARBITER_POLICY_JOBS, kind=kind).inc()
        if not job.steady:
            assert job.cycles is not None
            sim = FlatSim.from_job(job, sect)
            sim.run_span(job.cycles)
            total = sum(sim.grants)
            if reg is not None:
                reg.counter(_names.FAST_JOBS, mode="span").inc()
                reg.counter(_names.FAST_CLOCKS, mode="span").inc(sim.cycle)
                reg.counter(_names.FAST_GRANTS, mode="span").inc(total)
            return SimOutcome(
                job=job,
                backend=self.name,
                bandwidth=Fraction(total, sim.cycle) if sim.cycle else Fraction(0),
                period=None,
                grants=tuple(sim.grants),
                steady_start=None,
                cycles=sim.cycle,
            )

        mu, lam, grants0, grants1 = find_steady_cycle(
            lambda: FlatSim.from_job(job, sect), job.max_cycles
        )
        per_port = tuple(g1 - g0 for g0, g1 in zip(grants0, grants1))
        if reg is not None:
            reg.counter(_names.FAST_JOBS, mode="steady").inc()
            reg.counter(_names.FAST_CLOCKS, mode="steady").inc(mu + lam)
            reg.counter(_names.FAST_GRANTS, mode="steady").inc(sum(per_port))
        return SimOutcome(
            job=job,
            backend=self.name,
            bandwidth=Fraction(sum(per_port), lam),
            period=lam,
            grants=per_port,
            steady_start=mu,
            cycles=mu + lam,
        )


class BatchBackend:
    """Lockstep structure-of-arrays engine over whole populations.

    The chunk handed to :meth:`run_batch` advances as one NumPy
    structure-of-arrays population (:mod:`repro.runner.batchsim`);
    converged lanes retire behind an active mask, and sparse survivor
    tails hand off to the scalar fast engine (which is also the
    bit-exactness oracle: per-job outcomes are identical by the
    property suite).  Error behaviour matches the sequential fast
    backend observably — the exception reported is the one the
    lowest-indexed failing job would have raised.
    """

    name = "batch"
    #: The SoA core amortises setup across the whole chunk; give it
    #: everything a worker can hold.
    preferred_chunk = 4096

    def run(self, job: SimJob) -> SimOutcome:
        return self.run_batch([job])[0]

    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimOutcome]:
        out: list[SimOutcome | None] = [None] * len(jobs)
        errors: dict[int, Exception] = {}
        steady_idx: list[int] = []
        span_idx: list[int] = []
        policy_idx: list[int] = []
        for i, job in enumerate(jobs):
            if job.trace:
                errors[i] = ValueError(
                    "the batch backend keeps no trace; run trace jobs on "
                    "the reference backend"
                )
            elif job.arbiter is not None or job.regulate:
                # Arbiter-policy jobs are not vectorized (the SoA core
                # encodes only the four priority rules); they run on the
                # scalar fast engine, relabeled — same outcome contract
                # as the sparse-tail fallback.
                policy_idx.append(i)
            elif job.steady:
                steady_idx.append(i)
            else:
                span_idx.append(i)
        sect_tables: SectCache = {}
        reg = _metrics.active_metrics()
        if policy_idx:
            if reg is not None:
                reg.counter(_names.BATCH_FALLBACK, reason="policy").inc(
                    len(policy_idx)
                )
            fast = get_backend(FastBackend.name)
            assert isinstance(fast, FastBackend)
            for i in policy_idx:
                try:
                    solo = fast._run_with_sect(jobs[i], None)
                except RuntimeError as exc:
                    errors[i] = exc
                else:
                    out[i] = replace(solo, backend=self.name)
        if steady_idx:
            results, exceeded, fallback, _stats = run_steady_batch(
                [jobs[i] for i in steady_idx], sect_tables
            )
            for k in exceeded:
                i = steady_idx[k]
                errors[i] = RuntimeError(
                    f"no cyclic state within {jobs[i].max_cycles} cycles "
                    "(state space exhausted the bound)"
                )
            if fallback:
                if reg is not None:
                    reg.counter(_names.BATCH_FALLBACK, reason="tail").inc(
                        len(fallback)
                    )
                fast = get_backend(FastBackend.name)
                assert isinstance(fast, FastBackend)
                for k in fallback:
                    i = steady_idx[k]
                    try:
                        solo = fast._run_with_sect(jobs[i], None)
                    except RuntimeError as exc:
                        errors[i] = exc
                    else:
                        out[i] = replace(solo, backend=self.name)
            for k, res in enumerate(results):
                if res is None:
                    continue
                i = steady_idx[k]
                per_port = tuple(
                    g1 - g0 for g0, g1 in zip(res.grants0, res.grants1)
                )
                if reg is not None:
                    reg.histogram(_names.FASTSIM_STEADY_MU).observe(res.mu)
                    reg.histogram(_names.FASTSIM_STEADY_LAM).observe(res.lam)
                out[i] = SimOutcome(
                    job=jobs[i],
                    backend=self.name,
                    bandwidth=Fraction(sum(per_port), res.lam),
                    period=res.lam,
                    grants=per_port,
                    steady_start=res.mu,
                    cycles=res.mu + res.lam,
                )
        if span_idx:
            grants_list, _span_stats = run_span_batch(
                [jobs[i] for i in span_idx], sect_tables
            )
            for k, grants in enumerate(grants_list):
                i = span_idx[k]
                cycles = jobs[i].cycles
                assert cycles is not None
                total = sum(grants)
                out[i] = SimOutcome(
                    job=jobs[i],
                    backend=self.name,
                    bandwidth=(
                        Fraction(total, cycles) if cycles else Fraction(0)
                    ),
                    period=None,
                    grants=grants,
                    steady_start=None,
                    cycles=cycles,
                )
        if errors:
            raise errors[min(errors)]
        done: list[SimOutcome] = []
        for o in out:
            assert o is not None
            done.append(o)
        return done


_INSTANCES: dict[str, SimBackend] = {}
_CLASSES: dict[str, type] = {
    ReferenceBackend.name: ReferenceBackend,
    FastBackend.name: FastBackend,
    BatchBackend.name: BatchBackend,
    AnalyticBackend.name: AnalyticBackend,
    AutoBackend.name: AutoBackend,
}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` / ``--backend``."""
    return tuple(sorted(_CLASSES))


def get_backend(name: str) -> SimBackend:
    """Shared backend instance for ``name`` (``reference`` / ``fast``)."""
    try:
        inst = _INSTANCES.get(name)
        if inst is None:
            inst = _INSTANCES[name] = _CLASSES[name]()
        return inst
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {available_backends()}"
        ) from None


def resolve_backend(
    backend: "SimBackend | str | None", job: SimJob | None = None
) -> SimBackend:
    """Resolve the backend for a run.

    Precedence: explicit argument > ``REPRO_SIM_BACKEND`` env var >
    ``reference``.  Trace jobs always resolve to the reference backend
    (the fast path keeps no event log).
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or ReferenceBackend.name
    if isinstance(backend, str):
        backend = get_backend(backend)
    if job is not None and job.trace and backend.name != ReferenceBackend.name:
        backend = get_backend(ReferenceBackend.name)
    return backend
