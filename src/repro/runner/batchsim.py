"""Lockstep structure-of-arrays simulation of whole job populations.

Tier B's :class:`~repro.runner.fastsim.FlatSim` steps one job at a time
over flat Python lists; the sweeps this repository actually runs (the
regime census, the start-space profiles, the planned bandwidth-oracle
precomputation) evaluate *thousands* of near-identical jobs.  This
module advances an entire population in lockstep as NumPy
structure-of-arrays state:

- bank busy-until clocks as one flat ``(jobs * m_max,)`` int64 array
  (row-offset indexed, so a gather/scatter touches every lane at once),
- per-port positions, strides, CPU owners and grant counters as
  ``(n_max, jobs)`` int64 arrays,
- priority-rule state vectorized per rule kind (fixed / rotating /
  LRU) — the same tiny state machines as
  :mod:`repro.sim.priority`, expressed as per-lane tick counters and
  last-grant timestamps,
- per-lane Brent steady-cycle detection sharing one global anchor
  schedule (anchors at cumulative steps ``2^k - 1``, exactly the
  power-of-two re-rooting of :func:`repro.runner.fastsim.
  find_steady_cycle`), with an active-lane mask so converged lanes
  retire from the stepped population without stalling the rest.

Bit-identity contract: for every lane the reported ``(mu, lam,
per-port grants)`` triple — and the ``RuntimeError`` raised when
``mu + lam`` exceeds ``max_cycles`` — is exactly what the fast backend
computes for that job alone.  ``tests/property/test_batch_equivalence``
locks this over randomized mixed populations.

Exactness discipline: all state arrays are ``int64`` (or ``bool_``)
and every operation on them is integer arithmetic — no float dtype
ever appears, so grant counts and periods convert losslessly to the
exact ``Fraction`` bandwidths at the backend boundary.  The reprolint
``EXACT001`` rule enforces this mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np
from numpy.typing import NDArray

from ..memory.config import MemoryConfig
from ..obs import metrics as _metrics
from ..obs import names as _names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .job import SimJob

__all__ = [
    "BATCH_MIN_POPULATION",
    "run_span_batch",
    "run_steady_batch",
]

IntArray = NDArray[np.int64]
BoolArray = NDArray[np.bool_]

#: Shared bank→section tables, keyed by the memory shape triple so a
#: lookup never has to construct a :class:`MemoryConfig`.
SectCache = dict[tuple[int, "int | None", str], IntArray]

#: Smallest analytic-undecided population for which the ``auto`` tier
#: routes to the batch core: below this the SoA setup cost outweighs
#: the vectorized stepping (measured on the census shapes).
BATCH_MIN_POPULATION = 96

#: Tail handoff: once fewer than ``max(_TAIL_MIN_LANES, J//16)`` lanes
#: survive after ``_TAIL_MIN_STEPS`` lockstep steps, the stragglers run
#: individually on :class:`~repro.runner.fastsim.FlatSim` instead of
#: dragging near-empty vector wavefronts along.
_TAIL_MIN_LANES = 32
_TAIL_MIN_STEPS = 1024

#: Priority-rule kind codes.  ``cyclic`` is ``block-cyclic:1`` — the
#: two rules share choose offset *and* snapshot once the tick counter
#: is kept raw (CyclicPriority stores ``ticks % n``, which equals
#: ``ticks % (1·n)``).
_FIXED = 0
_ROT = 1
_LRU = 2

#: Last-grant sentinel for padding ports (lanes with fewer than
#: ``n_max`` streams).  It must sort *after* every live port's
#: ``(last_grant, port)`` key so padded LRU ranks are a constant suffix
#: and full-width rank equality coincides with real-width equality.
_LRU_PAD = 1 << 40


def _rule_code(name: str) -> tuple[int, int]:
    """``(kind, block)`` for a priority-rule name."""
    if name == "fixed":
        return _FIXED, 1
    if name == "cyclic":
        return _ROT, 1
    if name == "lru":
        return _LRU, 1
    if name.startswith("block-cyclic:"):
        return _ROT, int(name.split(":", 1)[1])
    raise ValueError(f"invalid priority spec {name!r}")


def _sect_table(job: "SimJob", cache: SectCache) -> IntArray:
    """Shared bank→section table for one memory shape."""
    key = (job.banks, job.sections, job.section_mapping)
    table = cache.get(key)
    if table is None:
        from ..memory.sections import section_map_for

        smap = section_map_for(job.config)
        table = np.array(
            [smap.section_of(j) for j in range(job.banks)], dtype=np.int64
        )
        cache[key] = table
    return table


def _pair_fixed_job(job: "SimJob") -> bool:
    """Whether a job fits the specialised two-port fixed-rule kernel
    (the same shape :class:`FlatSim` special-cases)."""
    return (
        len(job.streams) == 2
        and job.priority == "fixed"
        and job.intra_priority in (None, "fixed")
    )


@dataclass(frozen=True)
class LaneSteady:
    """One lane's steady answer: minimal transient, minimal period and
    the cumulative per-port grants after ``mu`` and ``mu + lam`` clocks
    (identical to :func:`repro.runner.fastsim.find_steady_cycle`)."""

    mu: int
    lam: int
    grants0: tuple[int, ...]
    grants1: tuple[int, ...]


@dataclass
class BatchStats:
    """Counters the batch drivers accumulate for ``repro.obs``.

    ``lanes`` — jobs advanced in lockstep; ``steps`` — vectorized
    wavefronts executed; ``waves`` — size of each retirement wave;
    ``populations`` — lanes per SoA group; ``occupancy`` — active-mask
    occupancy (percent) sampled at each anchor.
    """

    lanes: int = 0
    steps: int = 0
    waves: list[int] = field(default_factory=list)
    populations: list[int] = field(default_factory=list)
    occupancy: list[int] = field(default_factory=list)


class BatchSim:
    """A population of jobs as structure-of-arrays lockstep state.

    All per-lane state lives in ``(n_max, J)`` / ``(J,)`` / flat
    ``(J * m_max,)`` int64 arrays; one :meth:`step` call advances every
    lane selected by its boolean ``act`` mask through the exact
    three-phase arbitration of :class:`~repro.runner.fastsim.FlatSim`.
    """

    def __init__(
        self,
        jobs: Sequence["SimJob"],
        sect_tables: SectCache | None = None,
    ) -> None:
        if not jobs:
            raise ValueError("need at least one job")
        if sect_tables is None:
            sect_tables = {}
        J = len(jobs)
        n_max = max(len(job.streams) for job in jobs)
        m_max = max(job.banks for job in jobs)
        self.J = J
        self.n_max = n_max
        self.m_max = m_max

        # Bulk column construction: one Python list comprehension per
        # field, then a single array conversion (per-element scalar
        # stores would dominate the whole setup for census-sized
        # populations).
        self.m_arr = np.array([job.banks for job in jobs], dtype=np.int64)
        self.n_c_arr = np.array(
            [job.bank_cycle for job in jobs], dtype=np.int64
        )
        self.n_arr = np.array(
            [len(job.streams) for job in jobs], dtype=np.int64
        )
        self.t = np.zeros(J, dtype=np.int64)
        self.pos = np.array(
            [
                [
                    job.streams[p][0] % job.banks
                    if p < len(job.streams)
                    else 0
                    for job in jobs
                ]
                for p in range(n_max)
            ],
            dtype=np.int64,
        )
        self.stride = np.array(
            [
                [
                    job.streams[p][1] % job.banks
                    if p < len(job.streams)
                    else 0
                    for job in jobs
                ]
                for p in range(n_max)
            ],
            dtype=np.int64,
        )
        self.cpu = np.array(
            [
                [
                    job.cpus[p] if p < len(job.cpus) else 0
                    for job in jobs
                ]
                for p in range(n_max)
            ],
            dtype=np.int64,
        )
        self.live = np.arange(n_max, dtype=np.int64)[:, None] < self.n_arr
        self.grants = np.zeros((n_max, J), dtype=np.int64)
        prio_codes = [_rule_code(job.priority) for job in jobs]
        intra_codes = [
            prio_codes[j]
            if job.intra_priority is None
            else _rule_code(job.intra_priority)
            for j, job in enumerate(jobs)
        ]
        self.prio_kind = np.array(
            [k for k, _ in prio_codes], dtype=np.int64
        )
        self.prio_block = np.array(
            [b for _, b in prio_codes], dtype=np.int64
        )
        self.prio_off = np.zeros(J, dtype=np.int64)
        self.intra_kind = np.array(
            [k for k, _ in intra_codes], dtype=np.int64
        )
        self.intra_block = np.array(
            [b for _, b in intra_codes], dtype=np.int64
        )
        self.intra_off = np.zeros(J, dtype=np.int64)
        self.same_rule = np.array(
            [job.intra_priority is None for job in jobs], dtype=np.bool_
        )
        self.prio_last = np.where(
            self.live, np.int64(-1), np.int64(_LRU_PAD)
        )
        self.intra_last = self.prio_last.copy()
        self._busy_flat = np.zeros(J * m_max, dtype=np.int64)
        # Group lanes by memory shape so each distinct section table is
        # broadcast once instead of copied per lane.
        sect2d = np.zeros((J, m_max), dtype=np.int64)
        shape_lanes: dict[tuple[int, "int | None", str], list[int]] = {}
        for j, job in enumerate(jobs):
            shape_lanes.setdefault(
                (job.banks, job.sections, job.section_mapping), []
            ).append(j)
        for key, lanes in shape_lanes.items():
            table = _sect_table(jobs[lanes[0]], sect_tables)
            sect2d[lanes, : key[0]] = table
        self._sect_flat = sect2d.ravel()
        # Lanes whose intra rule is "the same instance as prio" compare
        # and arbitrate section conflicts with the prio keys directly;
        # their separate intra state is inert (kind degraded to fixed).
        self._eff_ikind = np.where(self.same_rule, _FIXED, self.intra_kind)
        self._ro = np.arange(J, dtype=np.int64) * m_max
        self._pidx = np.arange(n_max, dtype=np.int64).reshape(n_max, 1)
        self._any_lru = bool((self.prio_kind == _LRU).any())
        self._all_same_rule = bool(self.same_rule.all())
        self._static_all = bool(
            (self.prio_kind == _FIXED).all()
            and (self._eff_ikind == _FIXED).all()
        )
        self._pair2 = bool(n_max == 2 and (self.n_arr == 2).all())
        self._pair_fixed = self._pair2 and self._static_all
        if self._pair2:
            self._same01 = self.cpu[0] == self.cpu[1]
            self._pair_any_same_cpu = bool(self._same01.any())
        # Ordered port pairs, pairwise "a better contender beats me"
        # elimination: reproduces the grouped min-by-key choice because
        # rule keys are strict total orders.  Section conflicts only
        # arise within a CPU, simultaneous bank conflicts only across
        # CPUs (same bank implies same section, so same-CPU same-bank
        # pairs die in phase 2) — each phase iterates only the pairs
        # that can matter anywhere in the population.
        self._pairs2: list[tuple[int, int, BoolArray]] = []
        self._pairs3: list[tuple[int, int, BoolArray]] = []
        for p in range(n_max):
            for q in range(n_max):
                if p == q:
                    continue
                both = self.live[p] & self.live[q]
                if not both.any():
                    continue
                cpu_eq = both & (self.cpu[p] == self.cpu[q])
                if cpu_eq.any():
                    self._pairs2.append((p, q, cpu_eq))
                cpu_ne = both & ~cpu_eq
                if cpu_ne.any():
                    self._pairs3.append((p, q, cpu_ne))
        # Populations without rotating/LRU rules have constant keys.
        self._prio_static = bool((self.prio_kind == _FIXED).all())
        self._intra_static = bool((self._eff_ikind == _FIXED).all())
        self._kfix = (
            np.broadcast_to(self._pidx, (n_max, J))
            if (self._prio_static or self._intra_static)
            else None
        )
        self._pos0 = self.pos.copy()
        self._plast0 = self.prio_last.copy()
        self._ilast0 = self.intra_last.copy()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def clone_start(self) -> "BatchSim":
        """Second walker over the same population, at the start state.

        Read-only tables are shared; mutable state is fresh.
        """
        new = BatchSim.__new__(BatchSim)
        new.J = self.J
        new.n_max = self.n_max
        new.m_max = self.m_max
        new.m_arr = self.m_arr
        new.n_c_arr = self.n_c_arr
        new.n_arr = self.n_arr
        new.stride = self.stride
        new.cpu = self.cpu
        new.live = self.live
        new.prio_kind = self.prio_kind
        new.prio_block = self.prio_block
        new.intra_kind = self.intra_kind
        new.intra_block = self.intra_block
        new.same_rule = self.same_rule
        new._eff_ikind = self._eff_ikind
        new._sect_flat = self._sect_flat
        new._ro = self._ro
        new._pidx = self._pidx
        new._any_lru = self._any_lru
        new._all_same_rule = self._all_same_rule
        new._static_all = self._static_all
        new._pair2 = self._pair2
        new._pair_fixed = self._pair_fixed
        if self._pair2:
            new._same01 = self._same01
            new._pair_any_same_cpu = self._pair_any_same_cpu
        new._pairs2 = self._pairs2
        new._pairs3 = self._pairs3
        new._prio_static = self._prio_static
        new._intra_static = self._intra_static
        new._kfix = self._kfix
        new._pos0 = self._pos0
        new._plast0 = self._plast0
        new._ilast0 = self._ilast0
        new.t = np.zeros(self.J, dtype=np.int64)
        new.pos = self._pos0.copy()
        new.grants = np.zeros((self.n_max, self.J), dtype=np.int64)
        new.prio_off = np.zeros(self.J, dtype=np.int64)
        new.intra_off = np.zeros(self.J, dtype=np.int64)
        new.prio_last = self._plast0.copy()
        new.intra_last = self._ilast0.copy()
        new._busy_flat = np.zeros(self.J * self.m_max, dtype=np.int64)
        return new

    def compact(self, keep: BoolArray) -> None:
        """Drop retired lanes, keeping the survivors contiguous.

        Vector step cost is O(J) whether lanes are active or not;
        compacting at anchor boundaries keeps wavefronts dense.  The
        caller must re-slice any per-lane bookkeeping (original-index
        map, per-lane bounds) with the same mask.
        """
        Jn = int(keep.sum())
        for name in (
            "m_arr",
            "n_c_arr",
            "n_arr",
            "t",
            "prio_kind",
            "prio_block",
            "prio_off",
            "intra_kind",
            "intra_block",
            "intra_off",
            "same_rule",
            "_eff_ikind",
        ):
            setattr(self, name, getattr(self, name)[keep])
        for name in (
            "pos",
            "stride",
            "cpu",
            "live",
            "grants",
            "prio_last",
            "intra_last",
            "_pos0",
            "_plast0",
            "_ilast0",
        ):
            setattr(self, name, getattr(self, name)[:, keep])
        self._sect_flat = (
            self._sect_flat.reshape(self.J, self.m_max)[keep].ravel()
        )
        self._busy_flat = (
            self._busy_flat.reshape(self.J, self.m_max)[keep].ravel()
        )
        self.J = Jn
        self._ro = np.arange(Jn, dtype=np.int64) * self.m_max
        if self._pair2:
            self._same01 = self._same01[keep]
            self._pair_any_same_cpu = bool(self._same01.any())
        self._pairs2 = [
            (p, q, mask[keep]) for p, q, mask in self._pairs2
        ]
        self._pairs3 = [
            (p, q, mask[keep]) for p, q, mask in self._pairs3
        ]
        if self._kfix is not None:
            self._kfix = np.broadcast_to(self._pidx, (self.n_max, Jn))
        self._all_same_rule = bool(self.same_rule.all())
        self._any_lru = bool((self.prio_kind == _LRU).any())

    # ------------------------------------------------------------------
    # One clock period for every lane selected by ``act``
    # ------------------------------------------------------------------
    def step(self, act: BoolArray) -> None:
        if self._pair_fixed:
            self._step_pair_fixed(act)
        elif self._pair2:
            self._step_pair_generic(act)
        else:
            self._step_generic(act)

    def _step_pair_fixed(self, act: BoolArray) -> None:
        """Two streams, fixed rules: every branch of the generic step
        resolved at construction time (bit-identical trajectories)."""
        t = self.t
        busy = self._busy_flat
        b0 = self.pos[0]
        b1 = self.pos[1]
        flat0 = b0 + self._ro
        flat1 = b1 + self._ro
        f0 = act & (busy[flat0] <= t)
        f1 = act & (busy[flat1] <= t)
        if self._pair_any_same_cpu:
            coll = np.where(
                self._same01,
                self._sect_flat[flat0] == self._sect_flat[flat1],
                b0 == b1,
            )
        else:
            coll = b0 == b1
        # Section conflict (same CPU) or simultaneous bank conflict
        # (across CPUs): fixed priority grants port 0.
        f1 &= ~(f0 & coll)
        until = t + self.n_c_arr
        busy[flat0[f0]] = until[f0]
        busy[flat1[f1]] = until[f1]
        self.grants[0] += f0
        self.grants[1] += f1
        m = self.m_arr
        nb0 = b0 + self.stride[0]
        nb0 = np.where(nb0 >= m, nb0 - m, nb0)
        self.pos[0] = np.where(f0, nb0, b0)
        nb1 = b1 + self.stride[1]
        nb1 = np.where(nb1 >= m, nb1 - m, nb1)
        self.pos[1] = np.where(f1, nb1, b1)
        self.t = t + act

    def _step_pair_generic(self, act: BoolArray) -> None:
        """Two streams, arbitrary rules: 1-D row kernel with the
        pairwise winner decision resolved per rule kind (no 2-D
        temporaries, no generic key build)."""
        t = self.t
        busy = self._busy_flat
        b0 = self.pos[0]
        b1 = self.pos[1]
        flat0 = b0 + self._ro
        flat1 = b1 + self._ro
        f0 = act & (busy[flat0] <= t)
        f1 = act & (busy[flat1] <= t)
        both = f0 & f1
        if both.any():
            if self._pair_any_same_cpu:
                sect_conf = both & self._same01 & (
                    self._sect_flat[flat0] == self._sect_flat[flat1]
                )
                bank_conf = both & ~self._same01 & (b0 == b1)
            else:
                sect_conf = np.zeros_like(both)
                bank_conf = both & (b0 == b1)
            if sect_conf.any() or bank_conf.any():
                w1p = self._pair_port1_wins(
                    self.prio_kind, self.prio_off, self.prio_block,
                    self.prio_last,
                )
                if self._all_same_rule:
                    w1s = w1p
                else:
                    w1i = self._pair_port1_wins(
                        self._eff_ikind, self.intra_off,
                        self.intra_block, self.intra_last,
                    )
                    w1s = np.where(self.same_rule, w1p, w1i)
                f0 &= ~(sect_conf & w1s) & ~(bank_conf & w1p)
                f1 &= ~(sect_conf & ~w1s) & ~(bank_conf & ~w1p)
        until = t + self.n_c_arr
        busy[flat0[f0]] = until[f0]
        busy[flat1[f1]] = until[f1]
        self.grants[0] += f0
        self.grants[1] += f1
        if self._any_lru:
            lruk = self.prio_kind == _LRU
            self.prio_last[0] = np.where(f0 & lruk, t, self.prio_last[0])
            self.prio_last[1] = np.where(f1 & lruk, t, self.prio_last[1])
        m = self.m_arr
        nb0 = b0 + self.stride[0]
        nb0 = np.where(nb0 >= m, nb0 - m, nb0)
        self.pos[0] = np.where(f0, nb0, b0)
        nb1 = b1 + self.stride[1]
        nb1 = np.where(nb1 >= m, nb1 - m, nb1)
        self.pos[1] = np.where(f1, nb1, b1)
        self.prio_off += act
        self.intra_off += act
        self.t = t + act

    def _pair_port1_wins(
        self, kind: IntArray, off: IntArray, block: IntArray, last: IntArray
    ) -> BoolArray:
        """Whether port 1 beats port 0 under each lane's rule (two-port
        populations only): a rotating rule favours port 1 exactly when
        its offset phase is 1, LRU when port 1's last grant is older.
        Fixed lanes stay False — port 0 wins."""
        w1 = np.zeros(self.J, dtype=np.bool_)
        rot = kind == _ROT
        if rot.any():
            w1 |= rot & (((off // block) % 2) == 1)
        lru = kind == _LRU
        if lru.any():
            w1 |= lru & (last[1] < last[0])
        return w1

    def _step_generic(self, act: BoolArray) -> None:
        pos = self.pos
        flat = pos + self._ro
        # Phase 1 — bank conflicts: active banks reject everyone.
        free = self.live & act & (self._busy_flat[flat] <= self.t)
        if int(free.sum(axis=0).max(initial=0)) > 1:
            g = self._arbitrate(free, flat)
        else:
            g = free
        # Commit grants.
        until = self.t + self.n_c_arr
        gp, gj = np.nonzero(g)
        self._busy_flat[flat[gp, gj]] = until[gj]
        self.grants += g
        if self._any_lru:
            upd = g & (self.prio_kind == _LRU)
            self.prio_last = np.where(upd, self.t, self.prio_last)
        newpos = pos + self.stride
        newpos = np.where(newpos >= self.m_arr, newpos - self.m_arr, newpos)
        self.pos = np.where(g, newpos, pos)
        # Clock edge.
        self.prio_off += act
        self.intra_off += act
        self.t = self.t + act

    def _arbitrate(self, free: BoolArray, flat: IntArray) -> BoolArray:
        """Phases 2 and 3 of the arbitration, pairwise-vectorized.

        Rule keys are strict total orders (ties broken by port index,
        exactly the ascending-order ``min`` of the rule objects), so "p
        loses iff some co-contender has a smaller key" selects the same
        unique winner per group as the engine's grouped ``choose``.
        """
        if self._prio_static:
            assert self._kfix is not None
            kp = self._kfix
        else:
            kp = self._keys(
                self.prio_kind, self.prio_off, self.prio_block,
                self.prio_last,
            )
        if self._all_same_rule or (self._prio_static and self._intra_static):
            ik = kp
        elif self._intra_static:
            assert self._kfix is not None
            ik = np.where(self.same_rule, kp, self._kfix)
        else:
            ki = self._keys(
                self._eff_ikind,
                self.intra_off,
                self.intra_block,
                self.intra_last,
            )
            ik = np.where(self.same_rule, kp, ki)
        # Phase 2 — section conflicts: per (cpu, path) at most one.
        sv = self._sect_flat[flat]
        lose = np.zeros_like(free)
        for p, q, cpu_eq in self._pairs2:
            lose[p] |= (
                free[p]
                & free[q]
                & cpu_eq
                & (sv[p] == sv[q])
                & (ik[q] < ik[p])
            )
        w = free & ~lose
        # Phase 3 — simultaneous bank conflicts: per bank at most one
        # (cross-CPU only: same-CPU same-bank pairs died in phase 2,
        # because the section is a function of the bank).
        lose2 = np.zeros_like(free)
        for p, q, cpu_ne in self._pairs3:
            lose2[p] |= (
                w[p]
                & w[q]
                & cpu_ne
                & (flat[p] == flat[q])
                & (kp[q] < kp[p])
            )
        return w & ~lose2

    def _keys(
        self, kind: IntArray, off: IntArray, block: IntArray, last: IntArray
    ) -> IntArray:
        """Composite arbitration keys, smaller wins (strict total order).

        fixed: port index; rotating: distance from the favoured port,
        then port; LRU: last-grant clock, then port.
        """
        rot = kind == _ROT
        if rot.all():
            offset = (off // block) % self.n_arr
            prim = (self._pidx - offset) % self.n_arr
            return prim * self.n_max + self._pidx
        prim = np.zeros((self.n_max, self.J), dtype=np.int64)
        if rot.any():
            offset = (off // block) % self.n_arr
            prim = np.where(rot, (self._pidx - offset) % self.n_arr, prim)
        lru = kind == _LRU
        if lru.any():
            prim = np.where(lru, last + 1, prim)
        return prim * self.n_max + self._pidx

    # ------------------------------------------------------------------
    # State identity (for cycle detection)
    # ------------------------------------------------------------------
    def _busy_rem(self, cols: IntArray | None = None) -> IntArray:
        """Busy-until clocks as clock-invariant remaining counters."""
        busy2 = self._busy_flat.reshape(self.J, self.m_max)
        if cols is None:
            rem = busy2 - self.t[:, None]
        else:
            rem = busy2[cols] - self.t[cols, None]
        return np.maximum(rem, 0)

    def _snap_sub(
        self,
        kind: IntArray,
        off: IntArray,
        block: IntArray,
        last: IntArray,
        n: IntArray,
    ) -> IntArray:
        """Rule-state snapshots for a lane subset, one column per lane.

        Rotating rules: the phase within one full rotation (row 0).
        LRU rules: last-grant ranks over all ``n_max`` rows — padding
        ports carry a constant maximal sentinel, so full-width rank
        equality coincides with the engine's real-width rank equality.
        """
        out = np.zeros((self.n_max, kind.shape[0]), dtype=np.int64)
        rot = kind == _ROT
        if rot.any():
            out[0, rot] = off[rot] % (block[rot] * n[rot])
        lru = kind == _LRU
        if lru.any():
            keys = (last + 1) * self.n_max + self._pidx
            order = np.argsort(keys, axis=0, kind="stable")
            ranks = np.zeros_like(keys)
            np.put_along_axis(
                ranks, order, np.broadcast_to(self._pidx, keys.shape), axis=0
            )
            out[:, lru] = ranks[:, lru]
        return out

    def snap_cols(self, cols: IntArray) -> tuple[IntArray, IntArray]:
        """(prio, intra) rule snapshots for the selected lanes."""
        sp = self._snap_sub(
            self.prio_kind[cols],
            self.prio_off[cols],
            self.prio_block[cols],
            self.prio_last[:, cols],
            self.n_arr[cols],
        )
        si = self._snap_sub(
            self._eff_ikind[cols],
            self.intra_off[cols],
            self.intra_block[cols],
            self.intra_last[:, cols],
            self.n_arr[cols],
        )
        return sp, si

    def snapshot_state(
        self,
    ) -> tuple[IntArray, IntArray, IntArray | None, IntArray | None]:
        """Full comparable state of every lane (the detector's anchor)."""
        a_pos = self.pos.copy()
        a_busy = self._busy_rem()
        if self._static_all:
            return a_pos, a_busy, None, None
        cols = np.arange(self.J, dtype=np.int64)
        a_sp, a_si = self.snap_cols(cols)
        return a_pos, a_busy, a_sp, a_si

    def match_anchor(
        self,
        anchor: tuple[IntArray, IntArray, IntArray | None, IntArray | None],
        active: BoolArray,
    ) -> IntArray:
        """Active lanes whose live state equals their anchor column.

        Positions discriminate almost every clock, so the O(m) busy
        normalisation and the rule snapshots only run on the rare
        position collision.
        """
        a_pos, a_busy, a_sp, a_si = anchor
        pm = active & (self.pos == a_pos).all(axis=0)
        cols = np.nonzero(pm)[0]
        if cols.size == 0:
            return cols
        ok = (self._busy_rem(cols) == a_busy[cols]).all(axis=1)
        if not self._static_all:
            assert a_sp is not None and a_si is not None
            sp, si = self.snap_cols(cols)
            ok &= (sp == a_sp[:, cols]).all(axis=0)
            ok &= (si == a_si[:, cols]).all(axis=0)
        return cols[ok]

    def meet_cols(self, other: "BatchSim", active: BoolArray) -> IntArray:
        """Active lanes where the two walkers are in the same state
        (the walkers may sit at different per-lane clocks)."""
        pm = active & (self.pos == other.pos).all(axis=0)
        cols = np.nonzero(pm)[0]
        if cols.size == 0:
            return cols
        ok = (self._busy_rem(cols) == other._busy_rem(cols)).all(axis=1)
        if not self._static_all:
            sp_a, si_a = self.snap_cols(cols)
            sp_b, si_b = other.snap_cols(cols)
            ok &= (sp_a == sp_b).all(axis=0)
            ok &= (si_a == si_b).all(axis=0)
        return cols[ok]

    def lane_grants(self, col: int) -> tuple[int, ...]:
        """Cumulative per-port grants of one lane."""
        n = int(self.n_arr[col])
        return tuple(self.grants[:n, col].tolist())


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def _compact_anchor(
    anchor: tuple[IntArray, IntArray, IntArray | None, IntArray | None],
    keep: BoolArray,
) -> tuple[IntArray, IntArray, IntArray | None, IntArray | None]:
    """Anchor columns restricted to the kept lanes."""
    a_pos, a_busy, a_sp, a_si = anchor
    return (
        a_pos[:, keep],
        a_busy[keep],
        None if a_sp is None else a_sp[:, keep],
        None if a_si is None else a_si[:, keep],
    )


def _drive_steady(
    jobs: Sequence["SimJob"],
    sect_tables: SectCache,
    stats: BatchStats,
) -> tuple[list[LaneSteady | None], list[int], list[int]]:
    """Brent's detection over one homogeneous SoA group.

    Returns per-job answers plus the sub-indices of lanes that
    exhausted their ``max_cycles`` bound and of lanes handed to the
    scalar tail fallback.
    """
    J0 = len(jobs)
    stats.lanes += J0
    stats.populations.append(J0)
    mc0 = np.array([job.max_cycles for job in jobs], dtype=np.int64)
    lam_arr = np.full(J0, -1, dtype=np.int64)
    errors: list[int] = []
    fallback: list[int] = []
    tail_floor = max(_TAIL_MIN_LANES, J0 // 16)

    # Phase 1 — find each lane's minimal period lam.  One global anchor
    # schedule (cumulative steps 2^k - 1) reproduces FlatSim's
    # power-of-two re-rooting for every lane simultaneously; a lane that
    # walks ``3·max_cycles + 5`` steps without matching its anchor has
    # exhausted its bound.
    sim = BatchSim(jobs, sect_tables)
    mc = mc0
    limit = 3 * mc + 4
    orig = np.arange(J0, dtype=np.int64)
    active = np.ones(sim.J, dtype=np.bool_)
    anchor = sim.snapshot_state()
    anchor_step = 0
    next_anchor = 1
    s = 0
    while True:
        nact = int(active.sum())
        if nact == 0:
            break
        if s >= _TAIL_MIN_STEPS and nact < tail_floor:
            fallback.extend(int(i) for i in orig[active])
            break
        # Keep wavefronts dense: drop retired lanes whenever they are
        # the majority.  The anchor columns compact alongside, so this
        # is safe mid-window.
        if 2 * nact < sim.J:
            sim.compact(active)
            anchor = _compact_anchor(anchor, active)
            mc = mc[active]
            limit = limit[active]
            orig = orig[active]
            active = np.ones(sim.J, dtype=np.bool_)
        if s == next_anchor:
            anchor = sim.snapshot_state()
            anchor_step = s
            next_anchor = 2 * next_anchor + 1
            stats.occupancy.append((nact * 100) // sim.J)
        sim.step(active)
        s += 1
        stats.steps += 1
        cols = sim.match_anchor(anchor, active)
        if cols.size:
            lam = s - anchor_step
            oc = orig[cols]
            bad = lam > mc[cols]
            errors.extend(int(i) for i in oc[bad])
            lam_arr[oc[~bad]] = lam
            active[cols] = False
            stats.waves.append(int(cols.size))
        over = active & (s >= limit + 1)
        if over.any():
            errors.extend(int(i) for i in orig[over])
            active &= ~over
            stats.waves.append(int(over.sum()))

    # Phase 2 — find each lane's minimal transient mu: a lead walker
    # warmed up lam steps and a trail walker from the start advance in
    # lockstep until their states coincide.
    results: list[LaneSteady | None] = [None] * J0
    ph2 = [i for i in range(J0) if lam_arr[i] >= 0]
    if not ph2:
        return results, errors, fallback
    orig2 = np.array(ph2, dtype=np.int64)
    trail = BatchSim([jobs[i] for i in ph2], sect_tables)
    lead = trail.clone_start()
    lam2 = lam_arr[orig2]
    mc2 = mc0[orig2]
    warm = int(lam2.max())
    for k in range(warm):
        lead.step(lam2 > k)
        stats.steps += 1
    active = np.ones(trail.J, dtype=np.bool_)
    s = 0
    while True:
        nact = int(active.sum())
        if nact == 0:
            break
        if s >= _TAIL_MIN_STEPS and nact < tail_floor:
            fallback.extend(int(i) for i in orig2[active])
            break
        if 2 * nact < trail.J:
            trail.compact(active)
            lead.compact(active)
            orig2 = orig2[active]
            lam2 = lam2[active]
            mc2 = mc2[active]
            active = np.ones(trail.J, dtype=np.bool_)
        cols = trail.meet_cols(lead, active)
        if cols.size:
            for c in cols:
                ci = int(c)
                results[int(orig2[ci])] = LaneSteady(
                    mu=s,
                    lam=int(lam2[ci]),
                    grants0=trail.lane_grants(ci),
                    grants1=lead.lane_grants(ci),
                )
            active[cols] = False
            stats.waves.append(int(cols.size))
        over = active & (s + lam2 >= mc2)
        if over.any():
            errors.extend(int(i) for i in orig2[over])
            active &= ~over
            stats.waves.append(int(over.sum()))
        if not active.any():
            break
        trail.step(active)
        lead.step(active)
        s += 1
        stats.steps += 2
    return results, errors, fallback


def _split_groups(jobs: Sequence["SimJob"]) -> list[list[int]]:
    """Population split by kernel: pair-fixed, pair-generic, generic.

    Keeping the two-port lanes apart from wider ones lets the 1-D pair
    kernels run without padded rows dragging the wavefront shape."""
    pf: list[int] = []
    pg: list[int] = []
    gen: list[int] = []
    for i, job in enumerate(jobs):
        if _pair_fixed_job(job):
            pf.append(i)
        elif len(job.streams) == 2:
            pg.append(i)
        else:
            gen.append(i)
    return [idx for idx in (pf, pg, gen) if idx]


def run_steady_batch(
    jobs: Sequence["SimJob"],
    sect_tables: SectCache | None = None,
) -> tuple[list[LaneSteady | None], list[int], list[int], BatchStats]:
    """Steady answers for a population, advanced in lockstep.

    Returns ``(results, exceeded, fallback, stats)``: per-job
    :class:`LaneSteady` (``None`` where undecided), the indices whose
    ``mu + lam`` exceeded ``max_cycles`` (the backend raises the
    engine's ``RuntimeError`` for the first of them), and the indices
    handed to the scalar tail fallback.
    """
    if sect_tables is None:
        sect_tables = {}
    for job in jobs:
        if job.arbiter is not None or job.regulate:
            raise ValueError(
                "the batch core vectorizes only the priority rules; "
                "arbiter-policy jobs take the BatchBackend fallback"
            )
    results: list[LaneSteady | None] = [None] * len(jobs)
    errors: list[int] = []
    fallback: list[int] = []
    stats = BatchStats()
    for idx in _split_groups(jobs):
        sub = [jobs[i] for i in idx]
        res_sub, err_sub, fb_sub = _drive_steady(sub, sect_tables, stats)
        for k, i in enumerate(idx):
            results[i] = res_sub[k]
        errors.extend(idx[k] for k in err_sub)
        fallback.extend(idx[k] for k in fb_sub)
    _emit("steady", stats)
    return results, sorted(errors), sorted(fallback), stats


def run_span_batch(
    jobs: Sequence["SimJob"],
    sect_tables: SectCache | None = None,
) -> tuple[list[tuple[int, ...]], BatchStats]:
    """Fixed-horizon grants for a population, advanced in lockstep.

    Lanes with shorter horizons freeze (their clocks stop) while longer
    ones run on; per-lane grants match a solo :class:`FlatSim` span run
    bit for bit.
    """
    if sect_tables is None:
        sect_tables = {}
    for job in jobs:
        if job.arbiter is not None or job.regulate:
            raise ValueError(
                "the batch core vectorizes only the priority rules; "
                "arbiter-policy jobs take the BatchBackend fallback"
            )
    results: list[tuple[int, ...]] = [()] * len(jobs)
    stats = BatchStats()
    for idx in _split_groups(jobs):
        sub = [jobs[i] for i in idx]
        stats.lanes += len(sub)
        stats.populations.append(len(sub))
        sim = BatchSim(sub, sect_tables)
        cyc = np.array([job.cycles for job in sub], dtype=np.int64)
        top = int(cyc.max())
        for s in range(top):
            sim.step(cyc > s)
            stats.steps += 1
        for k, i in enumerate(idx):
            results[i] = sim.lane_grants(k)
    _emit("span", stats)
    return results, stats


def _emit(mode: str, stats: BatchStats) -> None:
    """Feed the batch-core counters/histograms (no-op when metrics are
    off — one None check per batch, nothing per wavefront)."""
    reg = _metrics.active_metrics()
    if reg is None:
        return
    reg.counter(_names.BATCH_JOBS, mode=mode).inc(stats.lanes)
    reg.counter(_names.BATCH_STEPS, mode=mode).inc(stats.steps)
    for v in stats.populations:
        reg.histogram(_names.BATCH_POPULATION).observe(v)
    for v in stats.waves:
        reg.histogram(_names.BATCH_WAVES).observe(v)
    for v in stats.occupancy:
        reg.histogram(_names.BATCH_OCCUPANCY).observe(v)
