"""The execution layer: deduplicated, memoized, parallel job sweeps.

Every analysis in this repository fans out hundreds-to-thousands of
near-identical steady-state runs (start-offset sweeps, pair sweeps,
Monte-Carlo environments, theorem validation).  :class:`SweepExecutor`
gives them one shared engine room:

* **dedup** — jobs canonicalize through the Appendix isomorphism
  (:meth:`repro.runner.job.SimJob.cache_key`), so isomorphic jobs run
  once;
* **memoization** — outcomes cache in-process and, optionally, in an
  on-disk JSON file keyed by the canonical job hash (exact ``Fraction``
  values survive the round trip).  The disk cache is crash-safe:
  corrupt/truncated/version-mismatched files are quarantined to
  ``<path>.corrupt`` instead of raising, flushes *merge* with the
  entries already on disk (LRU eviction never deletes persisted
  results) and publish through a unique temp file + ``os.replace`` (a
  killed or concurrent flusher can never leave a torn file), and with
  a cache path configured the executor auto-flushes every
  ``flush_every`` executed chunks, so a killed process loses at most
  one chunk of work;
* **scheduling** — *what runs where* is delegated to a
  :class:`~repro.runner.scheduling.Scheduler` over the
  :class:`~repro.runner.scheduling.ChunkRunner` execution core:
  ``inline`` (in-process), ``pool`` (local process fan-out with a
  shared work queue and straggler-splitting work stealing) or
  ``shard`` (hash-partitioned workers over a content-addressed
  :class:`~repro.runner.store.ResultStore`); see docs/RUNNER.md
  "Scheduling".  With ``store_path`` set the store doubles as a third
  cache level shared between processes and sweeps;
* **fault tolerance** — with a :class:`~repro.runner.resilience.
  RetryPolicy` attached, crashed pools are rebuilt, failed or timed-out
  chunks retried on a deterministic backoff schedule and bisected to
  isolate poisoned jobs, and a repeatedly dying pool degrades to inline
  execution; see docs/RUNNER.md "Failure semantics".

Outcomes returned by the executor never carry the engine-level
``result`` object (stats/trace); use :func:`repro.runner.api.run`
directly when you need those.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Sequence, cast

from ..obs import metrics as _metrics
from ..obs import names as _names
from ..obs import trace as _trace
from .api import run
from .job import SimJob, SimOutcome
from .resilience import (
    FailedOutcome,
    RetryPolicy,
    SweepFailureError,
    chaos_crash_point,
)
from .scheduling import (
    ChunkRunner,
    InlineScheduler,
    PoolScheduler,
    Scheduler,
)
from .scheduling import _Chunk as _Chunk
from .scheduling import chunk_size as _chunk_size_impl
from .scheduling import preferred_chunk as _preferred_chunk_impl
from .sharding import ShardScheduler
from .store import ResultStore

__all__ = ["ExecutorStats", "SweepExecutor", "default_executor"]

_CACHE_VERSION = 1

#: Scheduler names accepted by :class:`SweepExecutor`.
_SCHEDULER_NAMES = ("inline", "pool", "shard")


@dataclass
class ExecutorStats:
    """Work accounting for one executor (monotonic counters)."""

    submitted: int = 0
    #: served from the in-process, on-disk, or shared-store cache
    hits: int = 0
    #: duplicates folded onto another job in the same batch
    deduped: int = 0
    #: jobs actually simulated
    executed: int = 0
    #: least-recently-used entries dropped from the in-process memo
    evictions: int = 0
    #: chunk re-dispatches after a failure (retries and bisected halves)
    retries: int = 0
    #: jobs that still failed once isolated (one FailedOutcome each)
    failures: int = 0
    #: jobs that succeeded only after at least one failed dispatch
    recovered: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "hits": self.hits,
            "deduped": self.deduped,
            "executed": self.executed,
            "evictions": self.evictions,
            "retries": self.retries,
            "failures": self.failures,
            "recovered": self.recovered,
        }


#: ExecutorStats field -> contract metric name (published as deltas).
_STAT_METRICS = (
    ("submitted", _names.EXECUTOR_SUBMITTED),
    ("hits", _names.EXECUTOR_MEMO_HITS),
    ("deduped", _names.EXECUTOR_DEDUPED),
    ("executed", _names.EXECUTOR_EXECUTED),
    ("evictions", _names.EXECUTOR_MEMO_EVICTIONS),
    ("retries", _names.EXECUTOR_RETRIES),
    ("failures", _names.EXECUTOR_FAILURES),
    ("recovered", _names.EXECUTOR_RECOVERED),
)


def _preferred_chunk(backend: str | None) -> int:
    """The dispatched backend's advertised chunk-size hint (``1`` when
    the backend does not advertise one)."""
    return _preferred_chunk_impl(backend)


def _chunk_size(n_items: int, workers: int, preferred: int) -> int:
    """Pooled chunk size honouring the backend's ``preferred_chunk``
    (see :func:`repro.runner.scheduling.chunk_size`)."""
    return _chunk_size_impl(n_items, workers, preferred)


def _execute_payload(args: tuple[SimJob, str | None]) -> dict:
    """Process-pool worker: run one job, return its JSON-safe payload."""
    job, backend = args
    return run(job, backend=backend).to_payload()


def _execute_payload_batch(
    args: tuple[list[SimJob], str | None]
) -> list[dict]:
    """Process-pool worker: run one job chunk through the backend's
    batch entry point (one pickle round trip, shared per-shape tables)."""
    jobs, backend = args
    from .backends import resolve_backend

    chaos_crash_point(jobs)
    return [o.to_payload() for o in resolve_backend(backend).run_batch(jobs)]


class SweepExecutor:
    """Run batches of :class:`SimJob` with dedup, caching and workers.

    Parameters
    ----------
    backend:
        Backend name forwarded to :func:`repro.runner.api.run` (``None``
        keeps the env-var/default resolution).
    workers:
        Process count for fan-out; ``1`` (default) runs inline.
    cache_path:
        Optional JSON file for the on-disk outcome cache.  Loaded at
        construction (corrupt files are quarantined, never fatal),
        written by :meth:`flush` (or on context exit) and auto-flushed
        every ``flush_every`` executed chunks.
    max_memo:
        Bound on the in-process cache; least-recently-used entries are
        evicted first (a hit refreshes recency).  Eviction never
        removes entries already persisted on disk.
    retry:
        Optional :class:`~repro.runner.resilience.RetryPolicy` enabling
        fault-tolerant execution (retries, pool recovery, bisection
        isolation, inline degradation).  ``None`` (default) keeps the
        historical fail-fast behaviour: the first backend/pool error
        propagates.
    flush_every:
        With a ``cache_path``, flush the cache after this many executed
        chunks (default 1: a killed process loses at most one chunk of
        results).  ``None`` disables auto-flush.
    scheduler:
        Placement policy: ``"inline"``, ``"pool"``, ``"shard"``, a
        :class:`~repro.runner.scheduling.Scheduler` instance, or
        ``None`` (default) to pick automatically — ``shard`` when
        ``shards`` is set, ``pool`` when ``workers > 1``, ``inline``
        otherwise.  All schedulers return bit-identical outcomes.
    shards:
        Hash-partition the job space over this many shard workers
        (implies the ``shard`` scheduler when ``scheduler`` is None).
    store_path:
        Directory for a shared content-addressed
        :class:`~repro.runner.store.ResultStore`.  Probed before
        execution (shared hits are cache hits, not executions) and
        populated by every scheduler, so concurrent sweeps — and the
        shard workers themselves — exchange results through it.
    store:
        An already-constructed :class:`~repro.runner.store.ResultStore`
        to share verbatim — the :mod:`repro.serve` service hands its
        lookup tier and its warm executor the *same* store instance so
        precomputed entries and fresh results flow through one
        directory.  Mutually exclusive with ``store_path``.
    """

    def __init__(
        self,
        *,
        backend: str | None = None,
        workers: int = 1,
        cache_path: str | os.PathLike[str] | None = None,
        max_memo: int = 200_000,
        retry: RetryPolicy | None = None,
        flush_every: int | None = 1,
        scheduler: str | Scheduler | None = None,
        shards: int | None = None,
        store_path: str | os.PathLike[str] | None = None,
        store: ResultStore | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("worker count must be positive")
        if max_memo < 1:
            raise ValueError("max_memo must be positive")
        if flush_every is not None and flush_every < 1:
            raise ValueError("flush_every must be positive (or None)")
        if shards is not None and shards < 1:
            raise ValueError("shard count must be positive")
        if isinstance(scheduler, str) and scheduler not in _SCHEDULER_NAMES:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; "
                f"pick one of {_SCHEDULER_NAMES}"
            )
        self.backend = backend
        self.workers = workers
        self.max_memo = max_memo
        self.retry = retry
        self.flush_every = flush_every
        self.scheduler = scheduler
        self.shards = shards
        self.stats = ExecutorStats()
        self._memo: dict[str, dict] = {}
        if store is not None and store_path is not None:
            raise ValueError("pass either store= or store_path=, not both")
        self._cache_path = Path(cache_path) if cache_path is not None else None
        self._store = (
            store
            if store is not None
            else ResultStore(store_path)
            if store_path is not None
            else None
        )
        self._publish_to_store = False
        self._dirty = False
        self._chunks_since_flush = 0
        if self._cache_path is not None:
            entries = self._read_disk_entries()
            if entries:
                self._memo.update(entries)
                reg = _metrics.active_metrics()
                if reg is not None:
                    reg.counter(_names.EXECUTOR_DISK_LOADED).inc(len(entries))

    # ------------------------------------------------------------------
    def run_one(self, job: SimJob, *, backend: str | None = None) -> SimOutcome:
        """Run (or recall) a single job."""
        return self.run_many([job], backend=backend)[0]

    def run_many(
        self,
        jobs: Sequence[SimJob] | Iterable[SimJob],
        *,
        backend: str | None = None,
    ) -> list[SimOutcome]:
        """Run a batch, returning outcomes in input order.

        Trace jobs bypass the cache entirely (their value is the event
        log, which the cache does not carry).

        With a non-strict :class:`RetryPolicy` attached, jobs that
        still fail after retries and bisection isolation come back as
        :class:`~repro.runner.resilience.FailedOutcome` stand-ins (check
        ``outcome.failed``); under a strict policy the batch raises
        :class:`~repro.runner.resilience.SweepFailureError` instead.
        """
        jobs = list(jobs)
        # Observability is off by default: one None check per *batch*,
        # nothing per job (docs/OBSERVABILITY.md, CI overhead gate).
        stats0 = (
            self.stats.as_dict()
            if _metrics.active_metrics() is not None
            else None
        )
        with _trace.span(_names.SPAN_EXECUTOR_RUN_MANY, jobs=len(jobs)):
            out = self._run_batch(jobs, backend)
        reg = _metrics.active_metrics()
        if reg is not None and stats0 is not None:
            s1 = self.stats.as_dict()
            for stat_field, name in _STAT_METRICS:
                delta = s1[stat_field] - stats0[stat_field]
                if delta:
                    reg.counter(name).inc(delta)
            reg.gauge(_names.EXECUTOR_MEMO_SIZE).set(len(self._memo))
        return out

    def peek(self, job: SimJob) -> SimOutcome | None:
        """Probe the caches for ``job`` without ever executing it.

        Checks the in-process memo, then the shared store (a store hit
        is promoted into the memo).  Returns ``None`` on a miss — and
        always for trace jobs, which are uncacheable.  This is the
        cheap-path probe of the :mod:`repro.serve` lookup tier: the
        event loop may call it inline because it never blocks on a
        simulation.
        """
        if job.trace:
            return None
        key = job.cache_key()
        if key in self._memo:
            payload = self._memo.pop(key)
            self._memo[key] = payload  # LRU refresh
            return SimOutcome.from_payload(job, payload)
        if self._store is not None:
            payload = self._store.get(key)
            if payload is not None:
                self._insert({key: payload})
                return SimOutcome.from_payload(job, payload)
        return None

    def _run_batch(
        self, jobs: list[SimJob], backend: str | None
    ) -> list[SimOutcome]:
        backend = backend if backend is not None else self.backend
        self.stats.submitted += len(jobs)

        keys: list[str | None] = []
        fresh: dict[str, SimJob] = {}
        # Hits are held locally as well as re-queued at the memo's MRU
        # end: this batch's own eviction can then never invalidate them.
        held: dict[str, dict] = {}
        for job in jobs:
            if job.trace:
                keys.append(None)  # uncacheable
                continue
            key = job.cache_key()
            keys.append(key)
            if key in held:
                self.stats.hits += 1
            elif key in self._memo:
                self.stats.hits += 1
                # LRU refresh: re-insert at the most-recently-used end.
                payload = self._memo.pop(key)
                self._memo[key] = payload
                held[key] = payload
            elif key in fresh:
                self.stats.deduped += 1
            else:
                fresh[key] = job

        ran, failed = self._execute(fresh, backend) if fresh else ({}, {})

        out: list[SimOutcome] = []
        for job, key in zip(jobs, keys):
            if key is None:
                self.stats.executed += 1
                out.append(run(job, backend=backend))
                continue
            # Explicit membership checks: a falsy-but-present payload
            # must resolve from its actual source, never fall through.
            if key in failed:
                out.append(cast(SimOutcome, replace(failed[key], job=job)))
            elif key in ran:
                out.append(SimOutcome.from_payload(job, ran[key]))
            elif key in held:
                out.append(SimOutcome.from_payload(job, held[key]))
            else:
                out.append(SimOutcome.from_payload(job, self._memo[key]))
        return out

    # ------------------------------------------------------------------
    # Execution: scheduling delegated, caching and failure policy here
    # ------------------------------------------------------------------
    def _resolve_scheduler(self) -> Scheduler:
        """The placement policy for this batch (resolved per call, so
        mutating ``workers``/``shards`` between batches is honoured)."""
        sched = self.scheduler
        if sched is not None and not isinstance(sched, str):
            return sched
        if sched is None:
            if self.shards is not None:
                sched = "shard"
            elif self.workers > 1:
                sched = "pool"
            else:
                sched = "inline"
        if sched == "inline":
            return InlineScheduler()
        if sched == "pool":
            return PoolScheduler(self.workers)
        shards = self.shards if self.shards is not None else self.workers
        return ShardScheduler(shards, store=self._store)

    def _execute(
        self, fresh: dict[str, SimJob], backend: str | None
    ) -> tuple[dict[str, dict], dict[str, FailedOutcome]]:
        """Run every fresh job, returning payloads and isolated failures."""
        items: _Chunk = list(fresh.items())
        ran: dict[str, dict] = {}
        failed: dict[str, FailedOutcome] = {}
        if self._store is not None and items:
            # The shared store is a third cache level: results another
            # executor (or a previous sharded sweep) already published
            # count as hits, not executions.
            served = self._store.get_many(key for key, _ in items)
            if served:
                self.stats.hits += len(served)
                self._dirty = True
                self._insert(dict(served))
                ran.update(served)
                items = [(k, j) for k, j in items if k not in served]
        self.stats.executed += len(items)
        if items:
            scheduler = self._resolve_scheduler()
            # Shard workers publish to the store themselves; any other
            # scheduler publishes from the banking callback.
            self._publish_to_store = (
                self._store is not None
                and getattr(scheduler, "name", "") != "shard"
            )
            runner = ChunkRunner(
                backend=backend,
                retry=self.retry,
                stats=self.stats,
                on_chunk=self._finish_chunk,
            )
            scheduled_ran, failed = scheduler.execute(items, runner)
            ran.update(scheduled_ran)

        if failed and self.retry is not None and self.retry.strict:
            self.flush()  # persist the work that did succeed
            raise SweepFailureError(list(failed.values()))
        return ran, failed

    def _finish_chunk(
        self,
        chunk: _Chunk,
        payloads: list[dict],
        ran: dict[str, dict] | None = None,
    ) -> None:
        """Bank one completed chunk: memoize, account, maybe auto-flush."""
        chunk_map = {key: payload for (key, _), payload in zip(chunk, payloads)}
        if ran is not None:
            ran.update(chunk_map)
        self._dirty = True
        self._insert(chunk_map)
        if self._store is not None and self._publish_to_store:
            self._store.put_many(chunk_map)
        self._chunks_since_flush += 1
        if (
            self._cache_path is not None
            and self.flush_every is not None
            and self._chunks_since_flush >= self.flush_every
        ):
            self.flush()
            reg = _metrics.active_metrics()
            if reg is not None:
                reg.counter(_names.EXECUTOR_AUTOFLUSHES).inc()

    def _insert(self, payloads: dict[str, dict]) -> None:
        """Insert fresh payloads with LRU eviction, oldest first,
        *before* inserting: fresh results must land at the MRU end and
        survive their own chunk."""
        room = max(self.max_memo - len(payloads), 0)
        while len(self._memo) > room:
            self._memo.pop(next(iter(self._memo)))
            self.stats.evictions += 1
        self._memo.update(payloads)
        while len(self._memo) > self.max_memo:
            self._memo.pop(next(iter(self._memo)))
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # The on-disk cache: crash-safe load, merge-on-flush
    # ------------------------------------------------------------------
    def _read_disk_entries(self) -> dict[str, dict]:
        """Entries currently on disk; corrupt files quarantine to
        ``<path>.corrupt`` (with a warning) and read as empty."""
        path = self._cache_path
        if path is None or not path.exists():
            return {}
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            self._quarantine(f"unreadable cache file ({exc})")
            return {}
        if not isinstance(data, dict) or data.get("version") != _CACHE_VERSION:
            version = data.get("version") if isinstance(data, dict) else None
            self._quarantine(
                f"cache version {version!r} does not match {_CACHE_VERSION}"
            )
            return {}
        entries = data.get("entries")
        if not isinstance(entries, dict):
            self._quarantine("cache entries are not an object")
            return {}
        return entries

    def _quarantine(self, reason: str) -> None:
        """Move a bad cache file aside; the executor starts empty."""
        path = self._cache_path
        assert path is not None
        target = path.with_suffix(path.suffix + ".corrupt")
        try:
            path.replace(target)
            where = f"quarantined to {target}"
        except OSError as exc:
            where = f"could not quarantine ({exc})"
        warnings.warn(
            f"on-disk outcome cache {path}: {reason}; {where}; "
            "starting with an empty cache",
            RuntimeWarning,
            stacklevel=4,
        )
        reg = _metrics.active_metrics()
        if reg is not None:
            reg.counter(_names.EXECUTOR_CACHE_QUARANTINED).inc()

    def flush(self) -> None:
        """Write the on-disk cache (no-op without ``cache_path``).

        Merges with the entries already on disk before the atomic
        replace: entries evicted from the in-process memo (or written
        by another executor) are never clobbered.  The write lands in
        a *unique* temp file published via ``os.replace``, so a flusher
        killed mid-write — or several executors flushing the same path
        concurrently — can never leave a torn cache file behind.
        """
        if self._cache_path is None or not self._dirty:
            return
        self._cache_path.parent.mkdir(parents=True, exist_ok=True)
        entries = self._read_disk_entries()
        entries.update(self._memo)
        body = json.dumps(
            {"version": _CACHE_VERSION, "entries": entries},
            separators=(",", ":"),
        )
        fd, tmp = tempfile.mkstemp(
            prefix=self._cache_path.name,
            suffix=".tmp",
            dir=self._cache_path.parent,
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(body)
            os.replace(tmp, self._cache_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._dirty = False
        self._chunks_since_flush = 0

    def clear(self) -> None:
        """Drop the in-process cache (the disk file is untouched)."""
        self._memo.clear()

    def __len__(self) -> int:
        return len(self._memo)

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.flush()


_DEFAULT: SweepExecutor | None = None


def default_executor() -> SweepExecutor:
    """The process-wide executor library internals share.

    In-memory cache only, inline execution, the tiered ``auto`` backend
    (closed form where a theorem decides, fast simulation otherwise).
    Front ends use it when no explicit executor is passed, so repeated
    sweeps (validation + benchmarks + reports over the same pairs) each
    pay for a simulation at most once per process.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SweepExecutor(backend="auto")
    return _DEFAULT
