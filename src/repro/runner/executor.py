"""The execution layer: deduplicated, memoized, parallel job sweeps.

Every analysis in this repository fans out hundreds-to-thousands of
near-identical steady-state runs (start-offset sweeps, pair sweeps,
Monte-Carlo environments, theorem validation).  :class:`SweepExecutor`
gives them one shared engine room:

* **dedup** — jobs canonicalize through the Appendix isomorphism
  (:meth:`repro.runner.job.SimJob.cache_key`), so isomorphic jobs run
  once;
* **memoization** — outcomes cache in-process and, optionally, in an
  on-disk JSON file keyed by the canonical job hash (exact ``Fraction``
  values survive the round trip).  The disk cache is crash-safe:
  corrupt/truncated/version-mismatched files are quarantined to
  ``<path>.corrupt`` instead of raising, flushes *merge* with the
  entries already on disk (LRU eviction never deletes persisted
  results), and with a cache path configured the executor auto-flushes
  every ``flush_every`` executed chunks, so a killed process loses at
  most one chunk of work;
* **fan-out** — with ``workers > 1`` unique jobs spread over a
  ``concurrent.futures`` process pool in per-worker chunks, one
  :meth:`~repro.runner.backends.SimBackend.run_batch` call (and one
  pickle round trip) per chunk;
* **fault tolerance** — with a :class:`~repro.runner.resilience.
  RetryPolicy` attached, crashed pools are rebuilt, failed or timed-out
  chunks retried on a deterministic backoff schedule and bisected to
  isolate poisoned jobs, and a repeatedly dying pool degrades to inline
  execution; see docs/RUNNER.md "Failure semantics".

Outcomes returned by the executor never carry the engine-level
``result`` object (stats/trace); use :func:`repro.runner.api.run`
directly when you need those.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Sequence, cast

from ..obs import metrics as _metrics
from ..obs import names as _names
from ..obs import trace as _trace
from .api import run
from .job import SimJob, SimOutcome
from .resilience import (
    FailedOutcome,
    RetryPolicy,
    SweepFailureError,
    chaos_crash_point,
    sleep_ms,
)

__all__ = ["ExecutorStats", "SweepExecutor", "default_executor"]

_CACHE_VERSION = 1


@dataclass
class ExecutorStats:
    """Work accounting for one executor (monotonic counters)."""

    submitted: int = 0
    #: served from the in-process or on-disk cache
    hits: int = 0
    #: duplicates folded onto another job in the same batch
    deduped: int = 0
    #: jobs actually simulated
    executed: int = 0
    #: least-recently-used entries dropped from the in-process memo
    evictions: int = 0
    #: chunk re-dispatches after a failure (retries and bisected halves)
    retries: int = 0
    #: jobs that still failed once isolated (one FailedOutcome each)
    failures: int = 0
    #: jobs that succeeded only after at least one failed dispatch
    recovered: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "hits": self.hits,
            "deduped": self.deduped,
            "executed": self.executed,
            "evictions": self.evictions,
            "retries": self.retries,
            "failures": self.failures,
            "recovered": self.recovered,
        }


#: ExecutorStats field -> contract metric name (published as deltas).
_STAT_METRICS = (
    ("submitted", _names.EXECUTOR_SUBMITTED),
    ("hits", _names.EXECUTOR_MEMO_HITS),
    ("deduped", _names.EXECUTOR_DEDUPED),
    ("executed", _names.EXECUTOR_EXECUTED),
    ("evictions", _names.EXECUTOR_MEMO_EVICTIONS),
    ("retries", _names.EXECUTOR_RETRIES),
    ("failures", _names.EXECUTOR_FAILURES),
    ("recovered", _names.EXECUTOR_RECOVERED),
)

#: One unit of dispatchable work: a chunk of (cache_key, job) pairs.
_Chunk = list[tuple[str, SimJob]]


@dataclass
class _ChunkTask:
    """One chunk's dispatch state while a batch is being recovered."""

    chunk: _Chunk
    #: dispatches of this exact chunk so far (0 = not yet dispatched)
    attempt: int = 0
    #: True once any dispatch covering these jobs has failed
    troubled: bool = False
    #: last failure description (becomes FailedOutcome.error)
    error: str = ""


def _preferred_chunk(backend: str | None) -> int:
    """The dispatched backend's advertised chunk-size hint (``1`` when
    the backend does not advertise one)."""
    from .backends import resolve_backend

    return getattr(resolve_backend(backend), "preferred_chunk", 1)


def _chunk_size(n_items: int, workers: int, preferred: int) -> int:
    """Pooled chunk size honouring the backend's ``preferred_chunk``.

    The base split (ceil of four chunks per worker) balances per-job
    Python dispatch against pool latency hiding.  Backends that batch
    internally — the SoA ``batch`` core above all — advertise a larger
    ``preferred_chunk``; the split then widens up to that hint, but
    never past one chunk per worker (all workers stay busy).
    """
    base = -(-n_items // (4 * workers))
    if preferred > base:
        return min(preferred, -(-n_items // workers))
    return base


def _execute_payload(args: tuple[SimJob, str | None]) -> dict:
    """Process-pool worker: run one job, return its JSON-safe payload."""
    job, backend = args
    return run(job, backend=backend).to_payload()


def _execute_payload_batch(
    args: tuple[list[SimJob], str | None]
) -> list[dict]:
    """Process-pool worker: run one job chunk through the backend's
    batch entry point (one pickle round trip, shared per-shape tables)."""
    jobs, backend = args
    from .backends import resolve_backend

    chaos_crash_point(jobs)
    return [o.to_payload() for o in resolve_backend(backend).run_batch(jobs)]


class SweepExecutor:
    """Run batches of :class:`SimJob` with dedup, caching and workers.

    Parameters
    ----------
    backend:
        Backend name forwarded to :func:`repro.runner.api.run` (``None``
        keeps the env-var/default resolution).
    workers:
        Process count for fan-out; ``1`` (default) runs inline.
    cache_path:
        Optional JSON file for the on-disk outcome cache.  Loaded at
        construction (corrupt files are quarantined, never fatal),
        written by :meth:`flush` (or on context exit) and auto-flushed
        every ``flush_every`` executed chunks.
    max_memo:
        Bound on the in-process cache; least-recently-used entries are
        evicted first (a hit refreshes recency).  Eviction never
        removes entries already persisted on disk.
    retry:
        Optional :class:`~repro.runner.resilience.RetryPolicy` enabling
        fault-tolerant execution (retries, pool recovery, bisection
        isolation, inline degradation).  ``None`` (default) keeps the
        historical fail-fast behaviour: the first backend/pool error
        propagates.
    flush_every:
        With a ``cache_path``, flush the cache after this many executed
        chunks (default 1: a killed process loses at most one chunk of
        results).  ``None`` disables auto-flush.
    """

    def __init__(
        self,
        *,
        backend: str | None = None,
        workers: int = 1,
        cache_path: str | os.PathLike[str] | None = None,
        max_memo: int = 200_000,
        retry: RetryPolicy | None = None,
        flush_every: int | None = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("worker count must be positive")
        if max_memo < 1:
            raise ValueError("max_memo must be positive")
        if flush_every is not None and flush_every < 1:
            raise ValueError("flush_every must be positive (or None)")
        self.backend = backend
        self.workers = workers
        self.max_memo = max_memo
        self.retry = retry
        self.flush_every = flush_every
        self.stats = ExecutorStats()
        self._memo: dict[str, dict] = {}
        self._cache_path = Path(cache_path) if cache_path is not None else None
        self._dirty = False
        self._chunks_since_flush = 0
        if self._cache_path is not None:
            entries = self._read_disk_entries()
            if entries:
                self._memo.update(entries)
                reg = _metrics.active_metrics()
                if reg is not None:
                    reg.counter(_names.EXECUTOR_DISK_LOADED).inc(len(entries))

    # ------------------------------------------------------------------
    def run_one(self, job: SimJob, *, backend: str | None = None) -> SimOutcome:
        """Run (or recall) a single job."""
        return self.run_many([job], backend=backend)[0]

    def run_many(
        self,
        jobs: Sequence[SimJob] | Iterable[SimJob],
        *,
        backend: str | None = None,
    ) -> list[SimOutcome]:
        """Run a batch, returning outcomes in input order.

        Trace jobs bypass the cache entirely (their value is the event
        log, which the cache does not carry).

        With a non-strict :class:`RetryPolicy` attached, jobs that
        still fail after retries and bisection isolation come back as
        :class:`~repro.runner.resilience.FailedOutcome` stand-ins (check
        ``outcome.failed``); under a strict policy the batch raises
        :class:`~repro.runner.resilience.SweepFailureError` instead.
        """
        jobs = list(jobs)
        # Observability is off by default: one None check per *batch*,
        # nothing per job (docs/OBSERVABILITY.md, CI overhead gate).
        stats0 = (
            self.stats.as_dict()
            if _metrics.active_metrics() is not None
            else None
        )
        with _trace.span(_names.SPAN_EXECUTOR_RUN_MANY, jobs=len(jobs)):
            out = self._run_batch(jobs, backend)
        reg = _metrics.active_metrics()
        if reg is not None and stats0 is not None:
            s1 = self.stats.as_dict()
            for stat_field, name in _STAT_METRICS:
                delta = s1[stat_field] - stats0[stat_field]
                if delta:
                    reg.counter(name).inc(delta)
            reg.gauge(_names.EXECUTOR_MEMO_SIZE).set(len(self._memo))
        return out

    def _run_batch(
        self, jobs: list[SimJob], backend: str | None
    ) -> list[SimOutcome]:
        backend = backend if backend is not None else self.backend
        self.stats.submitted += len(jobs)

        keys: list[str | None] = []
        fresh: dict[str, SimJob] = {}
        # Hits are held locally as well as re-queued at the memo's MRU
        # end: this batch's own eviction can then never invalidate them.
        held: dict[str, dict] = {}
        for job in jobs:
            if job.trace:
                keys.append(None)  # uncacheable
                continue
            key = job.cache_key()
            keys.append(key)
            if key in held:
                self.stats.hits += 1
            elif key in self._memo:
                self.stats.hits += 1
                # LRU refresh: re-insert at the most-recently-used end.
                payload = self._memo.pop(key)
                self._memo[key] = payload
                held[key] = payload
            elif key in fresh:
                self.stats.deduped += 1
            else:
                fresh[key] = job

        ran, failed = self._execute(fresh, backend) if fresh else ({}, {})

        out: list[SimOutcome] = []
        for job, key in zip(jobs, keys):
            if key is None:
                self.stats.executed += 1
                out.append(run(job, backend=backend))
                continue
            # Explicit membership checks: a falsy-but-present payload
            # must resolve from its actual source, never fall through.
            if key in failed:
                out.append(cast(SimOutcome, replace(failed[key], job=job)))
            elif key in ran:
                out.append(SimOutcome.from_payload(job, ran[key]))
            elif key in held:
                out.append(SimOutcome.from_payload(job, held[key]))
            else:
                out.append(SimOutcome.from_payload(job, self._memo[key]))
        return out

    # ------------------------------------------------------------------
    # Execution: chunking, fan-out, failure recovery
    # ------------------------------------------------------------------
    def _execute(
        self, fresh: dict[str, SimJob], backend: str | None
    ) -> tuple[dict[str, dict], dict[str, FailedOutcome]]:
        """Run every fresh job, returning payloads and isolated failures."""
        items = list(fresh.items())
        self.stats.executed += len(items)
        pooled = self.workers > 1 and len(items) > 1
        if pooled:
            size = _chunk_size(
                len(items), self.workers, _preferred_chunk(backend)
            )
        else:
            size = len(items)
        chunks: list[_Chunk] = [
            items[i : i + size] for i in range(0, len(items), size)
        ]
        reg = _metrics.active_metrics()
        if reg is not None:
            hist = reg.histogram(_names.EXECUTOR_CHUNK_JOBS)
            for chunk in chunks:
                hist.observe(len(chunk))

        ran: dict[str, dict] = {}
        failed: dict[str, FailedOutcome] = {}
        if pooled:
            self._execute_pooled(chunks, backend, ran, failed)
        else:
            self._execute_inline(chunks, backend, ran, failed)

        if failed and self.retry is not None and self.retry.strict:
            self.flush()  # persist the work that did succeed
            raise SweepFailureError(list(failed.values()))
        return ran, failed

    def _dispatch_inline(
        self, task: _ChunkTask, backend: str | None
    ) -> list[dict]:
        """One in-process chunk execution (recovery dispatches traced)."""
        jobs = [job for _, job in task.chunk]
        if not task.troubled and task.attempt == 0:
            return _execute_payload_batch((jobs, backend))
        with _trace.span(
            _names.SPAN_EXECUTOR_RECOVERY,
            jobs=len(jobs),
            attempt=task.attempt,
        ):
            return _execute_payload_batch((jobs, backend))

    def _execute_inline(
        self,
        chunks: Sequence[_Chunk],
        backend: str | None,
        ran: dict[str, dict],
        failed: dict[str, FailedOutcome],
        troubled: bool = False,
    ) -> None:
        """Run chunks in-process, with retry + bisection under a policy."""
        policy = self.retry
        for chunk in chunks:
            if policy is None:
                # Historical fail-fast path: errors propagate untouched.
                jobs = [job for _, job in chunk]
                payloads = _execute_payload_batch((jobs, backend))
                self._finish_chunk(chunk, payloads, ran)
                continue
            task = _ChunkTask(chunk, troubled=troubled)
            while True:
                if task.troubled or task.attempt > 0:
                    self.stats.retries += 1
                    sleep_ms(policy.backoff_ms(max(task.attempt, 1)))
                try:
                    payloads = self._dispatch_inline(task, backend)
                except Exception as exc:  # noqa: BLE001 - isolation layer
                    task.troubled = True
                    task.error = f"{type(exc).__name__}: {exc}"
                    if task.attempt < policy.max_retries:
                        task.attempt += 1
                        continue
                    if len(task.chunk) > 1:
                        mid = len(task.chunk) // 2
                        halves = [task.chunk[:mid], task.chunk[mid:]]
                        self._execute_inline(
                            halves, backend, ran, failed, troubled=True
                        )
                    else:
                        self._record_failure(task, failed)
                    break
                else:
                    self._finish_chunk(task.chunk, payloads, ran)
                    if task.troubled:
                        self.stats.recovered += len(task.chunk)
                    break

    def _execute_pooled(
        self,
        chunks: Sequence[_Chunk],
        backend: str | None,
        ran: dict[str, dict],
        failed: dict[str, FailedOutcome],
    ) -> None:
        """Fan chunks over a process pool, rebuilding it on failure."""
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
        from concurrent.futures import TimeoutError as FuturesTimeout

        policy = self.retry
        with _trace.span(
            _names.SPAN_EXECUTOR_POOL,
            chunks=len(chunks),
            workers=self.workers,
        ):
            if policy is None:
                # Historical fail-fast path: one map, errors propagate.
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    results = pool.map(
                        _execute_payload_batch,
                        [([j for _, j in c], backend) for c in chunks],
                    )
                    for chunk, payloads in zip(chunks, results):
                        self._finish_chunk(chunk, payloads, ran)
                return

            pending = [_ChunkTask(chunk) for chunk in chunks]
            rebuilds = 0
            reg = _metrics.active_metrics()
            pool = ProcessPoolExecutor(max_workers=self.workers)
            try:
                while pending:
                    if rebuilds > policy.degrade_after:
                        # The pool keeps dying: stop trusting it and run
                        # the remainder inline (retry/bisection intact).
                        for task in pending:
                            self._execute_inline(
                                [task.chunk], backend, ran, failed,
                                troubled=task.troubled,
                            )
                        return
                    delay = 0
                    for task in pending:
                        if task.troubled or task.attempt > 0:
                            self.stats.retries += 1
                            delay = max(
                                delay, policy.backoff_ms(max(task.attempt, 1))
                            )
                    sleep_ms(delay)
                    futures = []
                    submit_failed: list[_ChunkTask] = []
                    for task in pending:
                        try:
                            fut = pool.submit(
                                _execute_payload_batch,
                                ([j for _, j in task.chunk], backend),
                            )
                        except (BrokenExecutor, RuntimeError) as exc:
                            # The pool died between rounds: requeue the
                            # rest and rebuild below.
                            task.error = (
                                f"worker pool broke at submit: "
                                f"{type(exc).__name__}: {exc}"
                            )
                            submit_failed.append(task)
                            continue
                        futures.append((fut, task))
                    pending = []
                    broken_at_submit = bool(submit_failed)
                    for task in submit_failed:
                        self._requeue(task, policy, pending, failed)
                    broken = broken_at_submit
                    for fut, task in futures:
                        if broken:
                            # Pool already condemned: salvage chunks that
                            # finished cleanly, requeue everything else.
                            fut.cancel()
                            payloads = None
                            if fut.done() and not fut.cancelled():
                                try:
                                    payloads = fut.result()
                                except Exception:  # noqa: BLE001
                                    payloads = None
                            if payloads is not None:
                                self._finish_chunk(task.chunk, payloads, ran)
                                if task.troubled:
                                    self.stats.recovered += len(task.chunk)
                            else:
                                task.error = task.error or "lost with broken pool"
                                self._requeue(task, policy, pending, failed)
                            continue
                        try:
                            payloads = fut.result(timeout=policy.chunk_timeout)
                        except FuturesTimeout:
                            broken = True
                            task.error = (
                                f"chunk timed out after "
                                f"{policy.chunk_timeout}s"
                            )
                            self._requeue(task, policy, pending, failed)
                        except BrokenExecutor as exc:
                            broken = True
                            task.error = (
                                f"worker pool broke: "
                                f"{type(exc).__name__}: {exc}"
                            )
                            self._requeue(task, policy, pending, failed)
                        except Exception as exc:  # noqa: BLE001 - job error
                            # The chunk itself raised inside a healthy
                            # worker: retry/bisect just this chunk.
                            task.error = f"{type(exc).__name__}: {exc}"
                            self._requeue(task, policy, pending, failed)
                        else:
                            self._finish_chunk(task.chunk, payloads, ran)
                            if task.troubled:
                                self.stats.recovered += len(task.chunk)
                    if broken:
                        rebuilds += 1
                        if reg is not None:
                            reg.counter(_names.EXECUTOR_POOL_REBUILDS).inc()
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(max_workers=self.workers)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)

    def _requeue(
        self,
        task: _ChunkTask,
        policy: RetryPolicy,
        pending: list[_ChunkTask],
        failed: dict[str, FailedOutcome],
    ) -> None:
        """Route a failed chunk: retry, bisect, or record the failure."""
        task.troubled = True
        if task.attempt < policy.max_retries:
            task.attempt += 1
            pending.append(task)
        elif len(task.chunk) > 1:
            # Retry budget exhausted for the whole chunk: split it to
            # corner the poisoned job(s); each half gets a fresh budget.
            mid = len(task.chunk) // 2
            for half in (task.chunk[:mid], task.chunk[mid:]):
                pending.append(
                    _ChunkTask(half, troubled=True, error=task.error)
                )
        else:
            self._record_failure(task, failed)

    def _record_failure(
        self, task: _ChunkTask, failed: dict[str, FailedOutcome]
    ) -> None:
        """An isolated singleton chunk is out of options: record it."""
        key, job = task.chunk[0]
        self.stats.failures += 1
        failed[key] = FailedOutcome(
            job=job,
            error=task.error or "unknown failure",
            attempts=task.attempt + 1,
        )

    def _finish_chunk(
        self,
        chunk: _Chunk,
        payloads: list[dict],
        ran: dict[str, dict] | None = None,
    ) -> None:
        """Bank one completed chunk: memoize, account, maybe auto-flush."""
        chunk_map = {key: payload for (key, _), payload in zip(chunk, payloads)}
        if ran is not None:
            ran.update(chunk_map)
        self._dirty = True
        self._insert(chunk_map)
        self._chunks_since_flush += 1
        if (
            self._cache_path is not None
            and self.flush_every is not None
            and self._chunks_since_flush >= self.flush_every
        ):
            self.flush()
            reg = _metrics.active_metrics()
            if reg is not None:
                reg.counter(_names.EXECUTOR_AUTOFLUSHES).inc()

    def _insert(self, payloads: dict[str, dict]) -> None:
        """Insert fresh payloads with LRU eviction, oldest first,
        *before* inserting: fresh results must land at the MRU end and
        survive their own chunk."""
        room = max(self.max_memo - len(payloads), 0)
        while len(self._memo) > room:
            self._memo.pop(next(iter(self._memo)))
            self.stats.evictions += 1
        self._memo.update(payloads)
        while len(self._memo) > self.max_memo:
            self._memo.pop(next(iter(self._memo)))
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # The on-disk cache: crash-safe load, merge-on-flush
    # ------------------------------------------------------------------
    def _read_disk_entries(self) -> dict[str, dict]:
        """Entries currently on disk; corrupt files quarantine to
        ``<path>.corrupt`` (with a warning) and read as empty."""
        path = self._cache_path
        if path is None or not path.exists():
            return {}
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            self._quarantine(f"unreadable cache file ({exc})")
            return {}
        if not isinstance(data, dict) or data.get("version") != _CACHE_VERSION:
            version = data.get("version") if isinstance(data, dict) else None
            self._quarantine(
                f"cache version {version!r} does not match {_CACHE_VERSION}"
            )
            return {}
        entries = data.get("entries")
        if not isinstance(entries, dict):
            self._quarantine("cache entries are not an object")
            return {}
        return entries

    def _quarantine(self, reason: str) -> None:
        """Move a bad cache file aside; the executor starts empty."""
        path = self._cache_path
        assert path is not None
        target = path.with_suffix(path.suffix + ".corrupt")
        try:
            path.replace(target)
            where = f"quarantined to {target}"
        except OSError as exc:
            where = f"could not quarantine ({exc})"
        warnings.warn(
            f"on-disk outcome cache {path}: {reason}; {where}; "
            "starting with an empty cache",
            RuntimeWarning,
            stacklevel=4,
        )
        reg = _metrics.active_metrics()
        if reg is not None:
            reg.counter(_names.EXECUTOR_CACHE_QUARANTINED).inc()

    def flush(self) -> None:
        """Write the on-disk cache (no-op without ``cache_path``).

        Merges with the entries already on disk before the atomic
        replace: entries evicted from the in-process memo (or written
        by another executor) are never clobbered.
        """
        if self._cache_path is None or not self._dirty:
            return
        self._cache_path.parent.mkdir(parents=True, exist_ok=True)
        entries = self._read_disk_entries()
        entries.update(self._memo)
        tmp = self._cache_path.with_suffix(self._cache_path.suffix + ".tmp")
        tmp.write_text(
            json.dumps(
                {"version": _CACHE_VERSION, "entries": entries},
                separators=(",", ":"),
            )
        )
        tmp.replace(self._cache_path)
        self._dirty = False
        self._chunks_since_flush = 0

    def clear(self) -> None:
        """Drop the in-process cache (the disk file is untouched)."""
        self._memo.clear()

    def __len__(self) -> int:
        return len(self._memo)

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.flush()


_DEFAULT: SweepExecutor | None = None


def default_executor() -> SweepExecutor:
    """The process-wide executor library internals share.

    In-memory cache only, inline execution, the tiered ``auto`` backend
    (closed form where a theorem decides, fast simulation otherwise).
    Front ends use it when no explicit executor is passed, so repeated
    sweeps (validation + benchmarks + reports over the same pairs) each
    pay for a simulation at most once per process.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SweepExecutor(backend="auto")
    return _DEFAULT
