"""The execution layer: deduplicated, memoized, parallel job sweeps.

Every analysis in this repository fans out hundreds-to-thousands of
near-identical steady-state runs (start-offset sweeps, pair sweeps,
Monte-Carlo environments, theorem validation).  :class:`SweepExecutor`
gives them one shared engine room:

* **dedup** — jobs canonicalize through the Appendix isomorphism
  (:meth:`repro.runner.job.SimJob.cache_key`), so isomorphic jobs run
  once;
* **memoization** — outcomes cache in-process and, optionally, in an
  on-disk JSON file keyed by the canonical job hash (exact ``Fraction``
  values survive the round trip);
* **fan-out** — with ``workers > 1`` unique jobs spread over a
  ``concurrent.futures`` process pool in per-worker chunks, one
  :meth:`~repro.runner.backends.SimBackend.run_batch` call (and one
  pickle round trip) per chunk.

Outcomes returned by the executor never carry the engine-level
``result`` object (stats/trace); use :func:`repro.runner.api.run`
directly when you need those.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..obs import metrics as _metrics
from ..obs import names as _names
from ..obs import trace as _trace
from .api import run
from .job import SimJob, SimOutcome

__all__ = ["ExecutorStats", "SweepExecutor", "default_executor"]

_CACHE_VERSION = 1


@dataclass
class ExecutorStats:
    """Work accounting for one executor (monotonic counters)."""

    submitted: int = 0
    #: served from the in-process or on-disk cache
    hits: int = 0
    #: duplicates folded onto another job in the same batch
    deduped: int = 0
    #: jobs actually simulated
    executed: int = 0
    #: least-recently-used entries dropped from the in-process memo
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "hits": self.hits,
            "deduped": self.deduped,
            "executed": self.executed,
            "evictions": self.evictions,
        }


#: ExecutorStats field -> contract metric name (published as deltas).
_STAT_METRICS = (
    ("submitted", _names.EXECUTOR_SUBMITTED),
    ("hits", _names.EXECUTOR_MEMO_HITS),
    ("deduped", _names.EXECUTOR_DEDUPED),
    ("executed", _names.EXECUTOR_EXECUTED),
    ("evictions", _names.EXECUTOR_MEMO_EVICTIONS),
)


def _execute_payload(args: tuple[SimJob, str | None]) -> dict:
    """Process-pool worker: run one job, return its JSON-safe payload."""
    job, backend = args
    return run(job, backend=backend).to_payload()


def _execute_payload_batch(
    args: tuple[list[SimJob], str | None]
) -> list[dict]:
    """Process-pool worker: run one job chunk through the backend's
    batch entry point (one pickle round trip, shared per-shape tables)."""
    jobs, backend = args
    from .backends import resolve_backend

    return [o.to_payload() for o in resolve_backend(backend).run_batch(jobs)]


class SweepExecutor:
    """Run batches of :class:`SimJob` with dedup, caching and workers.

    Parameters
    ----------
    backend:
        Backend name forwarded to :func:`repro.runner.api.run` (``None``
        keeps the env-var/default resolution).
    workers:
        Process count for fan-out; ``1`` (default) runs inline.
    cache_path:
        Optional JSON file for the on-disk outcome cache.  Loaded lazily
        at construction, written by :meth:`flush` (or on context exit).
    max_memo:
        Bound on the in-process cache; least-recently-used entries are
        evicted first (a hit refreshes recency).
    """

    def __init__(
        self,
        *,
        backend: str | None = None,
        workers: int = 1,
        cache_path: str | os.PathLike | None = None,
        max_memo: int = 200_000,
    ) -> None:
        if workers < 1:
            raise ValueError("worker count must be positive")
        if max_memo < 1:
            raise ValueError("max_memo must be positive")
        self.backend = backend
        self.workers = workers
        self.max_memo = max_memo
        self.stats = ExecutorStats()
        self._memo: dict[str, dict] = {}
        self._cache_path = Path(cache_path) if cache_path is not None else None
        self._dirty = False
        if self._cache_path is not None and self._cache_path.exists():
            data = json.loads(self._cache_path.read_text())
            if data.get("version") == _CACHE_VERSION:
                entries = data.get("entries", {})
                self._memo.update(entries)
                reg = _metrics.active_metrics()
                if reg is not None and entries:
                    reg.counter(_names.EXECUTOR_DISK_LOADED).inc(len(entries))

    # ------------------------------------------------------------------
    def run_one(self, job: SimJob, *, backend: str | None = None) -> SimOutcome:
        """Run (or recall) a single job."""
        return self.run_many([job], backend=backend)[0]

    def run_many(
        self,
        jobs: Sequence[SimJob] | Iterable[SimJob],
        *,
        backend: str | None = None,
    ) -> list[SimOutcome]:
        """Run a batch, returning outcomes in input order.

        Trace jobs bypass the cache entirely (their value is the event
        log, which the cache does not carry).
        """
        jobs = list(jobs)
        # Observability is off by default: one None check per *batch*,
        # nothing per job (docs/OBSERVABILITY.md, CI overhead gate).
        stats0 = (
            self.stats.as_dict()
            if _metrics.active_metrics() is not None
            else None
        )
        with _trace.span(_names.SPAN_EXECUTOR_RUN_MANY, jobs=len(jobs)):
            out = self._run_batch(jobs, backend)
        reg = _metrics.active_metrics()
        if reg is not None and stats0 is not None:
            s1 = self.stats.as_dict()
            for stat_field, name in _STAT_METRICS:
                delta = s1[stat_field] - stats0[stat_field]
                if delta:
                    reg.counter(name).inc(delta)
            reg.gauge(_names.EXECUTOR_MEMO_SIZE).set(len(self._memo))
        return out

    def _run_batch(
        self, jobs: list[SimJob], backend: str | None
    ) -> list[SimOutcome]:
        backend = backend if backend is not None else self.backend
        self.stats.submitted += len(jobs)

        keys: list[str | None] = []
        fresh: dict[str, SimJob] = {}
        # Hits are held locally as well as re-queued at the memo's MRU
        # end: this batch's own eviction can then never invalidate them.
        held: dict[str, dict] = {}
        for job in jobs:
            if job.trace:
                keys.append(None)  # uncacheable
                continue
            key = job.cache_key()
            keys.append(key)
            if key in held:
                self.stats.hits += 1
            elif key in self._memo:
                self.stats.hits += 1
                # LRU refresh: re-insert at the most-recently-used end.
                payload = self._memo.pop(key)
                self._memo[key] = payload
                held[key] = payload
            elif key in fresh:
                self.stats.deduped += 1
            else:
                fresh[key] = job

        ran = self._execute(fresh, backend) if fresh else {}

        out: list[SimOutcome] = []
        for job, key in zip(jobs, keys):
            if key is None:
                self.stats.executed += 1
                out.append(run(job, backend=backend))
            else:
                payload = ran.get(key) or held.get(key) or self._memo[key]
                out.append(SimOutcome.from_payload(job, payload))
        return out

    # ------------------------------------------------------------------
    def _execute(
        self, fresh: dict[str, SimJob], backend: str | None
    ) -> dict[str, dict]:
        items = list(fresh.items())
        self.stats.executed += len(items)
        unique = [job for _, job in items]
        reg = _metrics.active_metrics()
        if self.workers == 1 or len(items) == 1:
            if reg is not None:
                reg.histogram(_names.EXECUTOR_CHUNK_JOBS).observe(len(unique))
            payloads = _execute_payload_batch((unique, backend))
        else:
            from concurrent.futures import ProcessPoolExecutor

            # One batch per worker chunk: ceil division so the tail jobs
            # are spread over the chunks instead of dangling one by one
            # (the old floor division degenerated to chunks of a single
            # job for batches smaller than 4 x workers).
            size = -(-len(unique) // (4 * self.workers))
            chunks = [
                unique[i : i + size] for i in range(0, len(unique), size)
            ]
            if reg is not None:
                hist = reg.histogram(_names.EXECUTOR_CHUNK_JOBS)
                for chunk in chunks:
                    hist.observe(len(chunk))
            with _trace.span(
                _names.SPAN_EXECUTOR_POOL,
                chunks=len(chunks),
                workers=self.workers,
            ):
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    payloads = [
                        payload
                        for chunk_payloads in pool.map(
                            _execute_payload_batch,
                            [(chunk, backend) for chunk in chunks],
                        )
                        for payload in chunk_payloads
                    ]
        ran = {key: payload for (key, _), payload in zip(items, payloads)}
        self._dirty = True
        # LRU eviction, oldest first, *before* inserting: fresh results
        # must land at the MRU end and survive their own batch.
        room = max(self.max_memo - len(ran), 0)
        while len(self._memo) > room:
            self._memo.pop(next(iter(self._memo)))
            self.stats.evictions += 1
        self._memo.update(ran)
        while len(self._memo) > self.max_memo:
            self._memo.pop(next(iter(self._memo)))
            self.stats.evictions += 1
        return ran

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write the on-disk cache (no-op without ``cache_path``)."""
        if self._cache_path is None or not self._dirty:
            return
        self._cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._cache_path.with_suffix(self._cache_path.suffix + ".tmp")
        tmp.write_text(
            json.dumps(
                {"version": _CACHE_VERSION, "entries": self._memo},
                separators=(",", ":"),
            )
        )
        tmp.replace(self._cache_path)
        self._dirty = False

    def clear(self) -> None:
        """Drop the in-process cache (the disk file is untouched)."""
        self._memo.clear()

    def __len__(self) -> int:
        return len(self._memo)

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.flush()


_DEFAULT: SweepExecutor | None = None


def default_executor() -> SweepExecutor:
    """The process-wide executor library internals share.

    In-memory cache only, inline execution, the tiered ``auto`` backend
    (closed form where a theorem decides, fast simulation otherwise).
    Front ends use it when no explicit executor is passed, so repeated
    sweeps (validation + benchmarks + reports over the same pairs) each
    pay for a simulation at most once per process.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SweepExecutor(backend="auto")
    return _DEFAULT
