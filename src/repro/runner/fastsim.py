"""Flat-array simulation core and O(1)-memory steady-state detection.

This module is Tier B of the runner's execution pipeline: a re-usable,
allocation-light implementation of the engine's two-stage arbitration
(bank busy → per-CPU section path → cross-CPU simultaneous bank) over
plain integer lists, plus Brent's cycle-detection algorithm for finding
the steady state without the historical ``seen`` dictionary.

The dictionary detector hashed a full-width state tuple *every clock*
and kept every visited state alive — O(cycles × state-width) memory and
an O(state-width) tuple build per clock.  Brent's algorithm keeps one
anchor snapshot (re-taken at powers of two) and compares the live state
against it with short-circuiting C-level list equality; memory is O(1)
in the run length and the per-clock cost is dominated by the arbitration
itself.

Bit-identity contract (relied on by the backends and locked by
``tests/property``): for the same start state the detector reports
exactly the first-repeat answer of the dictionary version — the minimal
transient ``mu`` (first clock of the periodic regime), the minimal
period ``lam``, per-port grants over ``[mu, mu+lam)``, and a total of
``mu + lam`` simulated clocks; jobs whose ``mu + lam`` exceeds
``max_cycles`` raise the same ``RuntimeError``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from ..obs import metrics as _metrics
from ..obs import names as _names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.arbiter import ArbiterPolicy
    from ..sim.priority import PriorityRule
    from .job import SimJob

__all__ = ["FlatSim", "find_steady_cycle"]


def _record_steady(mu: int, lam: int) -> None:
    """Feed the detector's answer to the mu/lam histograms (no-op when
    metrics are off — one None check per steady job, nothing per clock)."""
    reg = _metrics.active_metrics()
    if reg is not None:
        reg.histogram(_names.FASTSIM_STEADY_MU).observe(mu)
        reg.histogram(_names.FASTSIM_STEADY_LAM).observe(lam)

#: One full comparable state: positions, priority snapshots, bank
#: countdowns.  Positions lead because they discriminate fastest.
StateKey = tuple[list[int], tuple, tuple, list[int]]


class FlatSim:
    """One workload's state in flat integer lists, steppable per clock.

    Semantically identical to :class:`repro.sim.engine.Engine` for
    infinite constant-stride streams (the property suite cross-checks
    every steady outcome); keeps no statistics, no trace, and allocates
    nothing per clock on the conflict-free path.
    """

    __slots__ = (
        "m",
        "n_c",
        "n",
        "sect",
        "cpu",
        "pos",
        "stride",
        "prio",
        "intra",
        "policy",
        "same_rule",
        "static_rules",
        "busy",
        "grants",
        "cycle",
        "ports",
        "step",
        "_pair_same_cpu",
    )

    #: Per-instance dispatch: the specialised or generic step function.
    step: Callable[[], None]

    def __init__(
        self,
        *,
        m: int,
        n_c: int,
        sect: Sequence[int],
        cpus: Sequence[int],
        positions: Sequence[int],
        strides: Sequence[int],
        prio: "PriorityRule | None" = None,
        intra: "PriorityRule | None" = None,
        policy: "ArbiterPolicy | None" = None,
        busy: Sequence[int] | None = None,
        start_cycle: int = 0,
    ) -> None:
        from ..sim.priority import FixedPriority

        self.m = m
        self.n_c = n_c
        self.n = len(positions)
        self.sect = list(sect)
        self.cpu = list(cpus)
        self.pos = [b % m for b in positions]
        self.stride = [d % m for d in strides]
        self.policy = policy
        if policy is not None:
            # Generic arbiter-policy path: the policy subsumes both
            # rules; state identity compares its snapshot.
            if prio is not None or intra is not None:
                raise ValueError("pass either policy= or prio=/intra=")
            self.prio = None
            self.intra = None
            self.same_rule = True
            self.static_rules = False
        else:
            if prio is None:
                raise ValueError("need prio= (or policy=)")
            self.prio = prio
            self.intra = prio if intra is None else intra
            self.same_rule = self.intra is prio
            # Rules whose snapshot is statically empty need no state
            # compare.
            self.static_rules = isinstance(prio, FixedPriority) and (
                self.same_rule or isinstance(self.intra, FixedPriority)
            )
        # Banks are tracked as absolute busy-until clocks (bank ``b`` is
        # free at clock ``t`` iff ``busy[b] <= t``), not countdowns: a
        # grant writes one timestamp and the per-clock decrement sweep
        # of the countdown representation disappears entirely.  ``busy``
        # arrives as engine-style countdown counters.
        self.busy = (
            [0] * m
            if busy is None
            else [start_cycle + c if c else 0 for c in busy]
        )
        self.grants = [0] * self.n
        # Absolute clock fed to the priority rules: rules cloned from a
        # mid-run engine carry timestamps in the engine's numbering.
        self.cycle = start_cycle
        self.ports = list(range(self.n))
        # Sweeps overwhelmingly run two fixed-priority streams; that
        # shape gets a branch-only step with no dicts and no rule calls
        # (fixed rules are pure ``min`` — port 0 wins every tie).
        self._pair_same_cpu = self.n == 2 and self.cpu[0] == self.cpu[1]
        if self.policy is not None:
            self.step = self._step_policy
        elif self.n == 2 and self.static_rules:
            self.step = self._step_pair_fixed
        else:
            self.step = self._step_generic

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_job(cls, job: "SimJob", sect: Sequence[int] | None = None) -> "FlatSim":
        """Fresh simulation of ``job`` from its start state.

        ``sect`` lets batch drivers share one precomputed bank→section
        table across every job with the same memory shape.
        """
        from ..memory.sections import section_map_for
        from ..sim.priority import make_priority

        m = job.banks
        if sect is None:
            smap = section_map_for(job.config)
            sect = [smap.section_of(j) for j in range(m)]
        n = len(job.streams)
        if job.arbiter is not None or job.regulate:
            from ..sim.arbiter import make_arbiter

            return cls(
                m=m,
                n_c=job.bank_cycle,
                sect=sect,
                cpus=job.cpus,
                positions=[b for b, _ in job.streams],
                strides=[d for _, d in job.streams],
                policy=make_arbiter(
                    n,
                    m,
                    priority=job.priority,
                    intra_priority=job.intra_priority,
                    arbiter=job.arbiter,
                    regulate=job.regulate,
                ),
            )
        prio = make_priority(job.priority, n)
        intra = (
            prio
            if job.intra_priority is None
            else make_priority(job.intra_priority, n)
        )
        return cls(
            m=m,
            n_c=job.bank_cycle,
            sect=sect,
            cpus=job.cpus,
            positions=[b for b, _ in job.streams],
            strides=[d for _, d in job.streams],
            prio=prio,
            intra=intra,
        )

    def clone_start(self) -> "FlatSim":
        """Cheap structural copy of this (never-stepped) template.

        Only valid for static rules, whose objects are stateless and can
        be shared between walkers; read-only tables (``sect``, ``cpu``,
        ``stride``) are shared, mutable state is copied.
        """
        new = FlatSim.__new__(FlatSim)
        new.m = self.m
        new.n_c = self.n_c
        new.n = self.n
        new.sect = self.sect
        new.cpu = self.cpu
        new.pos = self.pos.copy()
        new.stride = self.stride
        new.prio = self.prio
        new.intra = self.intra
        new.policy = None
        new.same_rule = self.same_rule
        new.static_rules = self.static_rules
        new.busy = self.busy.copy()
        new.grants = self.grants.copy()
        new.cycle = self.cycle
        new.ports = self.ports
        new._pair_same_cpu = self._pair_same_cpu
        new.step = (
            new._step_pair_fixed
            if new.n == 2 and new.static_rules
            else new._step_generic
        )
        return new

    # ------------------------------------------------------------------
    # One clock period — the exact three-phase arbitration of
    # Engine.step(), on flat state.
    # ------------------------------------------------------------------
    def _step_pair_fixed(self) -> None:
        """Two streams, fixed rules: the generic step with every branch
        resolved at construction time (bit-identical trajectory)."""
        busy = self.busy
        pos = self.pos
        t = self.cycle
        b0 = pos[0]
        b1 = pos[1]
        g0 = busy[b0] <= t
        g1 = busy[b1] <= t
        if (
            g0
            and g1
            and (
                b0 == b1
                if not self._pair_same_cpu
                else self.sect[b0] == self.sect[b1]
            )
        ):
            # Section conflict (same CPU) or simultaneous bank conflict
            # (across CPUs): fixed priority grants port 0.
            g1 = False
        until = t + self.n_c
        m = self.m
        if g0:
            busy[b0] = until
            self.grants[0] += 1
            b0 += self.stride[0]
            pos[0] = b0 - m if b0 >= m else b0
        if g1:
            busy[b1] = until
            self.grants[1] += 1
            b1 += self.stride[1]
            pos[1] = b1 - m if b1 >= m else b1
        self.cycle = t + 1

    def _step_policy(self) -> None:
        """Arbiter-policy step: the generic three-phase arbitration
        with the policy ranking contenders and (when regulated) vetoing
        admissions — the flat mirror of ``Engine.step`` on a policy."""
        busy = self.busy
        pos = self.pos
        cycle = self.cycle
        pol = self.policy
        # Phase 1 — bank conflicts: active banks reject everyone.
        free = [p for p in self.ports if busy[pos[p]] <= cycle]
        # Phase 1b — regulator vetoes.
        if pol.regulated and free:
            free = [p for p in free if pol.admit(p, pos[p], cycle)]
        # Phase 2 — section conflicts: per (cpu, path) at most one.
        if len(free) > 1:
            cpu = self.cpu
            sect = self.sect
            groups: dict[tuple[int, int], list[int]] = {}
            for p in free:
                key = (cpu[p], sect[pos[p]])
                g = groups.get(key)
                if g is None:
                    groups[key] = [p]
                else:
                    g.append(p)
            if len(groups) != len(free):
                free = [
                    members[0]
                    if len(members) == 1
                    else pol.rank_section(members, cycle)
                    for members in groups.values()
                ]
            # Phase 3 — simultaneous bank conflicts: per bank at most
            # one grant (cross-CPU by construction after phase 2).
            if len(free) > 1:
                banks: dict[int, list[int]] = {}
                for p in free:
                    b = pos[p]
                    g = banks.get(b)
                    if g is None:
                        banks[b] = [p]
                    else:
                        g.append(p)
                if len(banks) != len(free):
                    free = [
                        members[0]
                        if len(members) == 1
                        else pol.rank_bank(sorted(members), b, cycle)
                        for b, members in banks.items()
                    ]
        # Commit grants.
        m = self.m
        until = cycle + self.n_c
        stride = self.stride
        grants = self.grants
        for p in free:
            b = pos[p]
            busy[b] = until
            grants[p] += 1
            pol.granted(p, b, cycle)
            b += stride[p]
            pos[p] = b - m if b >= m else b
        # Clock edge.
        pol.tick(cycle)
        self.cycle = cycle + 1

    def _step_generic(self) -> None:
        busy = self.busy
        pos = self.pos
        cycle = self.cycle
        # Phase 1 — bank conflicts: active banks reject everyone.
        free = [p for p in self.ports if busy[pos[p]] <= cycle]
        # Phase 2 — section conflicts: per (cpu, path) at most one.
        if len(free) > 1:
            cpu = self.cpu
            sect = self.sect
            groups: dict[tuple[int, int], list[int]] = {}
            for p in free:
                key = (cpu[p], sect[pos[p]])
                g = groups.get(key)
                if g is None:
                    groups[key] = [p]
                else:
                    g.append(p)
            if len(groups) != len(free):
                intra = self.intra
                free = [
                    members[0]
                    if len(members) == 1
                    else intra.choose(members, cycle)
                    for members in groups.values()
                ]
            # Phase 3 — simultaneous bank conflicts: per bank at most
            # one grant (cross-CPU by construction after phase 2).
            if len(free) > 1:
                banks: dict[int, list[int]] = {}
                for p in free:
                    b = pos[p]
                    g = banks.get(b)
                    if g is None:
                        banks[b] = [p]
                    else:
                        g.append(p)
                if len(banks) != len(free):
                    prio = self.prio
                    free = [
                        members[0]
                        if len(members) == 1
                        else prio.choose(sorted(members), cycle)
                        for members in banks.values()
                    ]
        # Commit grants.
        m = self.m
        until = cycle + self.n_c
        stride = self.stride
        grants = self.grants
        prio = self.prio
        for p in free:
            b = pos[p]
            busy[b] = until
            grants[p] += 1
            b += stride[p]
            pos[p] = b - m if b >= m else b
            prio.granted(p, cycle)
        # Clock edge.
        prio.tick(cycle)
        if not self.same_rule:
            self.intra.tick(cycle)
        self.cycle = cycle + 1

    def run_span(self, clocks: int) -> None:
        """Advance a fixed number of clock periods."""
        if self.n == 2 and self.static_rules:
            self._run_span_pair(clocks)
            return
        step = self.step
        for _ in range(clocks):
            step()

    def _run_span_pair(self, clocks: int) -> None:
        """Fused two-port fixed loop: one frame for the whole span, all
        hot state carried in integer locals and written back on exit."""
        busy = self.busy
        sect = self.sect
        s0, s1 = self.stride
        n_c = self.n_c
        m = self.m
        same_cpu = self._pair_same_cpu
        b0, b1 = self.pos
        c0, c1 = self.grants
        t = self.cycle
        for _ in range(clocks):
            g0 = busy[b0] <= t
            g1 = busy[b1] <= t
            if (
                g0
                and g1
                and (sect[b0] == sect[b1] if same_cpu else b0 == b1)
            ):
                g1 = False
            until = t + n_c
            if g0:
                busy[b0] = until
                c0 += 1
                b0 += s0
                if b0 >= m:
                    b0 -= m
            if g1:
                busy[b1] = until
                c1 += 1
                b1 += s1
                if b1 >= m:
                    b1 -= m
            t += 1
        self.pos[0] = b0
        self.pos[1] = b1
        self.grants[0] = c0
        self.grants[1] = c1
        self.cycle = t

    # ------------------------------------------------------------------
    # Bulk detector loops
    # ------------------------------------------------------------------
    def walk_until_match(self, key: StateKey, window: int) -> int:
        """Step up to ``window`` clocks, checking for ``key`` after each.

        Returns the number of steps taken when the state matched, or
        ``-1`` when the window closed without a match (the walker then
        sits exactly ``window`` steps further on).
        """
        if self.n == 2 and self.static_rules:
            return self._walk_until_match_pair(key, window)
        step = self.step
        matches = self.matches
        for taken in range(1, window + 1):
            step()
            if matches(key):
                return taken
        return -1

    def _walk_until_match_pair(self, key: StateKey, window: int) -> int:
        """Fused step-and-compare for the two-port fixed shape.

        The position compare is the only per-clock check (fixed rules
        have empty snapshots); the O(m) busy normalisation runs on the
        rare position collision.
        """
        busy = self.busy
        sect = self.sect
        s0, s1 = self.stride
        n_c = self.n_c
        m = self.m
        same_cpu = self._pair_same_cpu
        k0, k1 = key[0]
        kbusy = key[3]
        b0, b1 = self.pos
        c0, c1 = self.grants
        t = self.cycle
        taken = 0
        found = -1
        while taken < window:
            g0 = busy[b0] <= t
            g1 = busy[b1] <= t
            if (
                g0
                and g1
                and (sect[b0] == sect[b1] if same_cpu else b0 == b1)
            ):
                g1 = False
            until = t + n_c
            if g0:
                busy[b0] = until
                c0 += 1
                b0 += s0
                if b0 >= m:
                    b0 -= m
            if g1:
                busy[b1] = until
                c1 += 1
                b1 += s1
                if b1 >= m:
                    b1 -= m
            t += 1
            taken += 1
            if (
                b0 == k0
                and b1 == k1
                and [u - t if u > t else 0 for u in busy] == kbusy
            ):
                found = taken
                break
        self.pos[0] = b0
        self.pos[1] = b1
        self.grants[0] = c0
        self.grants[1] = c1
        self.cycle = t
        return found

    # ------------------------------------------------------------------
    # State identity (for cycle detection)
    # ------------------------------------------------------------------
    def _busy_counters(self) -> list[int]:
        """Busy-until clocks as clock-invariant remaining counters."""
        t = self.cycle
        return [u - t if u > t else 0 for u in self.busy]

    def key(self) -> StateKey:
        """Copy of the full comparable state (the detector's anchor)."""
        if self.policy is not None:
            return (
                self.pos.copy(),
                self.policy.snapshot(),
                (),
                self._busy_counters(),
            )
        return (
            self.pos.copy(),
            self.prio.snapshot(),
            self.intra.snapshot(),
            self._busy_counters(),
        )

    def matches(self, key: StateKey) -> bool:
        """Whether the live state equals an anchor (short-circuiting).

        Positions discriminate almost every clock, so the O(m) busy
        normalisation only happens on the rare position collision.
        """
        if self.pos != key[0]:
            return False
        if self.policy is not None:
            if self.policy.snapshot() != key[1]:
                return False
        elif not self.static_rules and (
            self.prio.snapshot() != key[1]
            or self.intra.snapshot() != key[2]
        ):
            return False
        return self._busy_counters() == key[3]

    def same_state(self, other: "FlatSim") -> bool:
        """Whether two walkers of one workload are in the same state
        (the walkers may sit at different absolute clocks)."""
        if self.pos != other.pos:
            return False
        if self.policy is not None:
            if self.policy.snapshot() != other.policy.snapshot():
                return False
        elif not self.static_rules and (
            self.prio.snapshot() != other.prio.snapshot()
            or self.intra.snapshot() != other.intra.snapshot()
        ):
            return False
        return self._busy_counters() == other._busy_counters()


def _meet_pair(trail: FlatSim, lead: FlatSim, mu_limit: int) -> int:
    """Fused phase-2 meeting loop for the two-port fixed shape.

    Steps both walkers in lockstep until their (clock-normalised)
    states coincide, returning the step count ``mu`` — or ``-1`` once
    ``mu_limit`` lockstep steps passed without a meeting.  Both sims
    are left at the exit state (positions, grants, clock written back).
    """
    busy_a = trail.busy
    busy_b = lead.busy
    sect = trail.sect
    s0, s1 = trail.stride
    n_c = trail.n_c
    m = trail.m
    same_cpu = trail._pair_same_cpu
    a0, a1 = trail.pos
    b0, b1 = lead.pos
    ca0, ca1 = trail.grants
    cb0, cb1 = lead.grants
    ta = trail.cycle
    tb = lead.cycle
    mu = 0
    while True:
        if (
            a0 == b0
            and a1 == b1
            and [u - ta if u > ta else 0 for u in busy_a]
            == [u - tb if u > tb else 0 for u in busy_b]
        ):
            break
        if mu >= mu_limit:
            mu = -1
            break
        g0 = busy_a[a0] <= ta
        g1 = busy_a[a1] <= ta
        if (
            g0
            and g1
            and (sect[a0] == sect[a1] if same_cpu else a0 == a1)
        ):
            g1 = False
        until = ta + n_c
        if g0:
            busy_a[a0] = until
            ca0 += 1
            a0 += s0
            if a0 >= m:
                a0 -= m
        if g1:
            busy_a[a1] = until
            ca1 += 1
            a1 += s1
            if a1 >= m:
                a1 -= m
        ta += 1
        g0 = busy_b[b0] <= tb
        g1 = busy_b[b1] <= tb
        if (
            g0
            and g1
            and (sect[b0] == sect[b1] if same_cpu else b0 == b1)
        ):
            g1 = False
        until = tb + n_c
        if g0:
            busy_b[b0] = until
            cb0 += 1
            b0 += s0
            if b0 >= m:
                b0 -= m
        if g1:
            busy_b[b1] = until
            cb1 += 1
            b1 += s1
            if b1 >= m:
                b1 -= m
        tb += 1
        mu += 1
    trail.pos[0] = a0
    trail.pos[1] = a1
    trail.grants[0] = ca0
    trail.grants[1] = ca1
    trail.cycle = ta
    lead.pos[0] = b0
    lead.pos[1] = b1
    lead.grants[0] = cb0
    lead.grants[1] = cb1
    lead.cycle = tb
    return mu


def find_steady_cycle(
    make: Callable[[], FlatSim], max_cycles: int
) -> tuple[int, int, tuple[int, ...], tuple[int, ...]]:
    """Brent's algorithm over fresh walkers from ``make()``.

    Returns ``(mu, lam, grants_at_mu, grants_at_mu_plus_lam)`` where
    ``mu`` is the minimal transient, ``lam`` the minimal period and the
    grant tuples are cumulative per-port grants after ``mu`` and
    ``mu + lam`` clocks — everything the backends need to report the
    exact steady outcome of the historical first-repeat detector.

    Raises the detector's ``RuntimeError`` iff ``mu + lam > max_cycles``
    (phase 1 is bounded by ``3·max_cycles + 4`` steps, which Brent never
    exceeds while ``mu + lam <= max_cycles``).
    """

    def exhausted() -> RuntimeError:
        return RuntimeError(
            f"no cyclic state within {max_cycles} cycles "
            "(state space exhausted the bound)"
        )

    if max_cycles < 0:
        raise exhausted()

    # Static-rule workloads spawn walkers by cheap structural copy of
    # one never-stepped template instead of re-deriving the job thrice.
    template = make()
    if template.static_rules:
        make = template.clone_start
        hare = make()
    else:
        hare = template

    # Phase 1 — find the minimal period lam.  The anchor ("tortoise")
    # re-roots at every power of two; transient states never recur, so
    # the first match is at distance exactly lam.  Each power-of-two
    # window runs as one fused walk-and-compare span; the global step
    # budget (never hit while mu + lam <= max_cycles) caps the windows.
    limit = 3 * max_cycles + 4
    power = 1
    total = 0
    while True:
        anchor = hare.key()
        window = min(power, limit + 1 - total)
        took = hare.walk_until_match(anchor, window)
        if took >= 0:
            lam = took
            break
        total += window
        if window < power:
            raise exhausted()
        power <<= 1
    if lam > max_cycles:
        raise exhausted()

    # Phase 2 — find the minimal transient mu: walk two fresh walkers
    # lam apart until they meet; the meeting point is the first state of
    # the periodic regime, and the walkers' grant counters are exactly
    # the cumulative grants after mu and mu + lam clocks.
    lead = make()
    lead.run_span(lam)
    trail = make()
    if trail.n == 2 and trail.static_rules:
        mu = _meet_pair(trail, lead, max_cycles - lam)
        if mu < 0:
            raise exhausted()
        _record_steady(mu, lam)
        return mu, lam, tuple(trail.grants), tuple(lead.grants)
    mu = 0
    while not trail.same_state(lead):
        if mu + lam >= max_cycles:
            raise exhausted()
        trail.step()
        lead.step()
        mu += 1
    _record_steady(mu, lam)
    return mu, lam, tuple(trail.grants), tuple(lead.grants)
