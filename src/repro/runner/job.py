"""The job layer: one hashable description per simulation run.

Every analysis in the repository ultimately asks the same question —
"what does this set of infinite constant-stride streams do to this
memory?" — and :class:`SimJob` is the one canonical way to ask it.  A job
freezes the memory shape, the stream specs, the CPU placement and the
priority rules; :class:`SimOutcome` carries the exact :class:`~fractions.
Fraction` steady-state answer.

Jobs canonicalize through the paper's Appendix isomorphism: a bank
renumbering ``j -> k·j (mod m)`` with ``gcd(k, m) = 1`` (plus a start-bank
translation) maps a job onto an equivalent one without changing any
conflict behaviour, so equivalent jobs share one cache entry in the
:class:`~repro.runner.executor.SweepExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import TYPE_CHECKING, Iterable, Sequence

from ..core.isomorphism import stabilizer_units
from ..memory.config import MemoryConfig
from .regime import ObservedRegime, full_rate_streams, is_conflict_free, observe_pair_regime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import SimulationResult

__all__ = ["SimJob", "SimOutcome", "jobs_for_offsets"]


@dataclass(frozen=True)
class SimJob:
    """A frozen, hashable description of one simulation run.

    Parameters
    ----------
    banks, bank_cycle, sections, section_mapping:
        The memory shape (see :class:`repro.memory.config.MemoryConfig`).
    streams:
        One ``(start_bank, stride)`` spec per port, already reduced
        modulo ``banks`` (use :meth:`from_specs` to normalise raw specs).
        All job streams are the analytical *infinite* streams.
    cpus:
        Owning CPU per port; section conflicts arise within a CPU,
        simultaneous bank conflicts across CPUs.
    priority, intra_priority:
        Rule names as accepted by :func:`repro.sim.priority.make_priority`.
        ``intra_priority=None`` means "the same rule *instance* arbitrates
        both conflict kinds" (the paper's presentation), which for
        stateful rules is *not* equivalent to naming the rule twice.
    arbiter:
        Optional arbiter-policy spec replacing the two-rule wiring
        (``"wfq:W0,W1,..."`` — see :mod:`repro.sim.arbiter`); ``None``
        keeps the classic priority/intra_priority arbitration.
    regulate:
        Token-bucket regulator specs (``"stream=1/3"``,
        ``"bank:0=1/4"``, ...) wrapped around whichever policy results.
        Empty means unregulated.
    steady:
        Detect the cyclic state and report its exact bandwidth (default).
        ``steady=False`` requires ``cycles`` — a fixed-horizon run.
    cycles:
        Fixed clock horizon for ``steady=False`` jobs.
    max_cycles:
        Safety bound for steady-state detection.
    trace:
        Record a cycle-by-cycle trace (reference backend only).
    """

    banks: int
    bank_cycle: int
    streams: tuple[tuple[int, int], ...]
    cpus: tuple[int, ...]
    sections: int | None = None
    section_mapping: str = "cyclic"
    priority: str = "fixed"
    intra_priority: str | None = None
    arbiter: str | None = None
    regulate: tuple[str, ...] = ()
    steady: bool = True
    cycles: int | None = None
    max_cycles: int = 1_000_000
    trace: bool = False

    def __post_init__(self) -> None:
        # MemoryConfig performs the full shape validation.
        cfg = MemoryConfig(
            banks=self.banks,
            bank_cycle=self.bank_cycle,
            sections=self.sections,
            section_mapping=self.section_mapping,
        )
        if not self.streams:
            raise ValueError("a job needs at least one stream")
        if len(self.cpus) != len(self.streams):
            raise ValueError(
                f"cpus ({len(self.cpus)}) and streams "
                f"({len(self.streams)}) must align"
            )
        for b, d in self.streams:
            if not (0 <= b < cfg.banks and 0 <= d < cfg.banks):
                raise ValueError(
                    f"stream spec ({b}, {d}) not reduced modulo m={cfg.banks}; "
                    "build jobs via SimJob.from_specs()"
                )
        for c in self.cpus:
            if c < 0:
                raise ValueError("cpu ids must be non-negative")
        # Spec strings fail at job construction, not deep inside a
        # backend (and therefore with HTTP 400, not 500, on the wire).
        from ..sim.priority import parse_priority

        parse_priority(self.priority)
        if self.intra_priority is not None:
            parse_priority(self.intra_priority)
        if self.arbiter is not None or self.regulate:
            from ..sim.arbiter import canonical_arbiter, validate_regulation

            canonical_arbiter(self.arbiter, len(self.streams))
            if not isinstance(self.regulate, tuple):
                raise ValueError(
                    "regulate must be a tuple of spec strings; "
                    "build jobs via SimJob.from_specs()"
                )
            validate_regulation(
                self.regulate, len(self.streams), self.banks
            )
        if self.steady and self.cycles is not None:
            raise ValueError("pass either steady=True or cycles=, not both")
        if not self.steady and self.cycles is None:
            raise ValueError("fixed-horizon jobs need cycles=")
        if self.cycles is not None and self.cycles < 0:
            raise ValueError("cycle count must be non-negative")
        if self.max_cycles <= 0:
            raise ValueError("max_cycles must be positive")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_specs(
        cls,
        config: MemoryConfig,
        specs: Sequence[tuple[int, int]],
        *,
        cpus: Sequence[int] | None = None,
        priority: str = "fixed",
        intra_priority: str | None = None,
        arbiter: str | None = None,
        regulate: Sequence[str] = (),
        steady: bool = True,
        cycles: int | None = None,
        max_cycles: int = 1_000_000,
        trace: bool = False,
    ) -> "SimJob":
        """Build a job from raw ``(start_bank, stride)`` specs.

        Starts and strides are reduced modulo ``config.banks``; ``cpus``
        defaults to one CPU per stream (no section bottlenecks).
        """
        m = config.banks
        if cpus is None:
            cpus = range(len(specs))
        return cls(
            banks=config.banks,
            bank_cycle=config.bank_cycle,
            sections=config.sections,
            section_mapping=config.section_mapping,
            streams=tuple((b % m, d % m) for b, d in specs),
            cpus=tuple(cpus),
            priority=priority,
            intra_priority=intra_priority,
            arbiter=arbiter,
            regulate=tuple(regulate),
            steady=steady,
            cycles=cycles,
            max_cycles=max_cycles,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def config(self) -> MemoryConfig:
        """The memory shape as a :class:`MemoryConfig`."""
        return MemoryConfig(
            banks=self.banks,
            bank_cycle=self.bank_cycle,
            sections=self.sections,
            section_mapping=self.section_mapping,
        )

    @property
    def n_ports(self) -> int:
        return len(self.streams)

    @property
    def effective_sections(self) -> int:
        return self.banks if self.sections is None else self.sections

    # ------------------------------------------------------------------
    # Canonicalization (Appendix isomorphism)
    # ------------------------------------------------------------------
    def _renumbering_safe(self) -> bool:
        """Whether bank renumberings preserve this job's conflicts.

        A unit renumbering ``j -> k·j`` (and a translation ``j -> j + c``)
        preserves bank-busy structure always, and the same-section
        relation exactly when the mapping is the paper's cyclic
        ``k = j mod s`` (``j1 ≡ j2 (mod s)`` is invariant because
        ``gcd(k, s) = 1`` follows from ``s | m``) or when ``s = m``
        (sections degenerate to banks).  Cheung & Smith's consecutive
        grouping is *not* renumbering-invariant.

        A regulator pinned to a specific bank (``bank:IDX=...``) also
        breaks the symmetry — renumbering moves the throttled bank;
        uniform and per-stream regulators are invariant.
        """
        if self.section_mapping != "cyclic" and self.effective_sections != self.banks:
            return False
        if self.regulate:
            from ..sim.arbiter import regulation_renumbering_safe

            return regulation_renumbering_safe(self.regulate)
        return True

    def canonical(self) -> "SimJob":
        """The canonical representative of this job's isomorphism class.

        Applies every admissible renumbering ``j -> k·(j - b0)`` (unit
        ``k``, translation to put stream 1 at bank 0) and keeps the
        lexicographically smallest stream tuple.  Port order, CPU
        placement and priority rules are untouched — they are not part of
        the bank-address symmetry.  Jobs whose section mapping breaks the
        symmetry canonicalize to themselves (modulo field normalisation).

        The returned job always has ``trace=False`` and the default
        ``max_cycles`` — neither affects the steady outcome — and
        ``sections`` resolved to its effective value, so it is a pure
        cache identity.
        """
        m = self.banks
        arbiter = self.arbiter
        regulate = self.regulate
        if arbiter is not None or regulate:
            from ..sim.arbiter import canonical_arbiter, canonical_regulation

            arbiter = canonical_arbiter(arbiter, len(self.streams))
            regulate = canonical_regulation(regulate)
        base = replace(
            self,
            sections=self.effective_sections,
            arbiter=arbiter,
            regulate=regulate,
            trace=False,
            max_cycles=1_000_000,
        )
        if not self._renumbering_safe():
            return base
        b0, d0 = self.streams[0]
        # Lexicographic minimisation: stream 1 becomes (0, k·d0), which is
        # minimal exactly for the units mapping d0 to gcd(m, d0) — so only
        # that (cached) stabiliser coset needs scanning, not all of U(m).
        best: tuple[tuple[int, int], ...] | None = None
        for k in stabilizer_units(m, d0):
            cand = tuple(
                (((b - b0) * k) % m, (d * k) % m) for b, d in self.streams
            )
            if best is None or cand < best:
                best = cand
        assert best is not None
        return replace(base, streams=best)

    def cache_key(self) -> str:
        """Stable string identity of the canonical job (cache key)."""
        c = self.canonical()
        mode = "steady" if c.steady else f"cycles={c.cycles}"
        streams = ",".join(f"{b}:{d}" for b, d in c.streams)
        cpus = ",".join(str(x) for x in c.cpus)
        intra = c.intra_priority if c.intra_priority is not None else "~"
        key = (
            f"m{c.banks}c{c.bank_cycle}s{c.effective_sections}"
            f"@{c.section_mapping}|{streams}|cpu{cpus}"
            f"|{c.priority}/{intra}|{mode}"
        )
        # Policy segments only when non-default, so every pre-arbiter
        # cache key (and on-disk cache entry) stays byte-identical.
        if c.arbiter is not None:
            key += f"|arb:{c.arbiter}"
        if c.regulate:
            key += f"|reg:{';'.join(c.regulate)}"
        return key

    def describe(self) -> str:
        """One-line human summary for logs and benchmark headers."""
        streams = " ".join(f"{b}:{d}" for b, d in self.streams)
        return f"{self.config.describe()}; streams {streams}; cpus {self.cpus}"


@dataclass(frozen=True, eq=False)
class SimOutcome:
    """Exact result of running a :class:`SimJob`.

    For steady jobs ``bandwidth`` is the exact steady-state ``b_eff``
    (a :class:`~fractions.Fraction`), ``grants`` the per-port grant
    counts over one ``period``, and ``steady_start`` the first clock of
    the periodic regime.  For fixed-horizon jobs ``bandwidth`` is the
    whole-run average, ``grants`` the whole-run per-port counts, and
    ``period``/``steady_start`` are ``None``.
    """

    job: SimJob
    backend: str
    bandwidth: Fraction
    period: int | None
    grants: tuple[int, ...]
    steady_start: int | None
    cycles: int
    #: Full engine result (stats, optional trace).  Populated only by the
    #: reference backend; ``None`` for fast-backend and cached outcomes.
    result: "SimulationResult | None" = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def failed(self) -> bool:
        """Executor failure discriminator — always ``False`` on a real
        outcome; ``True`` on the :class:`~repro.runner.resilience.
        FailedOutcome` stand-in a non-strict retry policy returns."""
        return False

    @property
    def bandwidth_float(self) -> float:
        return float(self.bandwidth)

    @property
    def full_rate_streams(self) -> int:
        """How many streams run at one grant per clock (steady jobs)."""
        if self.period is None:
            raise ValueError("full-rate accounting needs a steady outcome")
        return full_rate_streams(self.period, self.grants)

    @property
    def conflict_free(self) -> bool:
        if self.period is None:
            raise ValueError("conflict-freeness needs a steady outcome")
        return is_conflict_free(self.period, self.grants)

    @property
    def pair_regime(self) -> ObservedRegime:
        """Observed regime for two-stream steady jobs."""
        if self.period is None:
            raise ValueError("regime observation needs a steady outcome")
        return observe_pair_regime(self.period, self.grants)

    # ------------------------------------------------------------------
    # Cache (JSON) serialisation — numbers only, exact
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-safe dict capturing the exact numeric outcome."""
        return {
            "backend": self.backend,
            "bandwidth": f"{self.bandwidth.numerator}/{self.bandwidth.denominator}",
            "period": self.period,
            "grants": list(self.grants),
            "steady_start": self.steady_start,
            "cycles": self.cycles,
        }

    @classmethod
    def from_payload(cls, job: SimJob, payload: dict) -> "SimOutcome":
        """Rebuild an outcome for ``job`` from a cached payload.

        Valid for any job in the payload's isomorphism class: the
        Appendix renumbering preserves per-port grants, period and
        transient length exactly.
        """
        num, den = payload["bandwidth"].split("/")
        return cls(
            job=job,
            backend=f"cache:{payload['backend']}",
            bandwidth=Fraction(int(num), int(den)),
            period=payload["period"],
            grants=tuple(payload["grants"]),
            steady_start=payload["steady_start"],
            cycles=payload["cycles"],
        )


def jobs_for_offsets(
    config: MemoryConfig,
    d1: int,
    d2: int,
    offsets: Iterable[int],
    *,
    same_cpu: bool = False,
    priority: str = "fixed",
    arbiter: str | None = None,
    regulate: Sequence[str] = (),
    max_cycles: int = 1_000_000,
) -> list[SimJob]:
    """One steady pair job per relative start offset (a common sweep)."""
    cpus = (0, 0) if same_cpu else (0, 1)
    return [
        SimJob.from_specs(
            config,
            [(0, d1), (off, d2)],
            cpus=cpus,
            priority=priority,
            arbiter=arbiter,
            regulate=regulate,
            max_cycles=max_cycles,
        )
        for off in offsets
    ]
