"""Steady-state regime observation shared by every simulation front end.

Reading a regime off a steady period is pure arithmetic on the per-port
grant counts: a stream runs at *full rate* when it collects one grant per
clock of the period.  This logic used to be copied between
:mod:`repro.sim.pairs` (``_observe_regime``) and :mod:`repro.sim.multi`
(``full_rate_streams`` / ``conflict_free``); the runner layer owns the
single canonical implementation now and both front ends delegate here.
"""

from __future__ import annotations

import enum

__all__ = [
    "ObservedRegime",
    "full_rate_streams",
    "is_conflict_free",
    "observe_pair_regime",
]


class ObservedRegime(enum.Enum):
    """Steady-state behaviour read off a simulated pair."""

    CONFLICT_FREE = "conflict-free"        # both streams full rate
    BARRIER_ON_2 = "barrier-on-2"          # stream 1 full rate, 2 delayed
    BARRIER_ON_1 = "barrier-on-1"          # inverted barrier (Fig. 6)
    MUTUAL = "mutual"                      # both delayed (double conflict)


def full_rate_streams(period: int, grants: tuple[int, ...]) -> int:
    """How many streams run at one grant per clock over the period."""
    if period <= 0:
        raise ValueError("period must be positive")
    return sum(1 for g in grants if g == period)


def is_conflict_free(period: int, grants: tuple[int, ...]) -> bool:
    """Whether *every* stream runs at full rate over the period."""
    if period <= 0:
        raise ValueError("period must be positive")
    return all(g == period for g in grants)


def observe_pair_regime(period: int, grants: tuple[int, ...]) -> ObservedRegime:
    """Classify a two-stream steady state by its per-port grant counts."""
    if len(grants) != 2:
        raise ValueError(f"pair regime needs exactly 2 grant counts, got {len(grants)}")
    g1, g2 = grants
    full1 = g1 == period
    full2 = g2 == period
    if full1 and full2:
        return ObservedRegime.CONFLICT_FREE
    if full1:
        return ObservedRegime.BARRIER_ON_2
    if full2:
        return ObservedRegime.BARRIER_ON_1
    return ObservedRegime.MUTUAL
