"""Failure semantics for sweep execution: retry, isolate, degrade.

Long fan-out sweeps die in ways single runs do not: a worker process
segfaults and takes the whole ``concurrent.futures`` pool with it
(``BrokenProcessPool``), a chunk hangs past any reasonable deadline, or
a backend raises on one poisoned job out of ten thousand.  Losing a
multi-minute sweep to any of those is incompatible with treating the
executor as a service, so this module defines the policy layer the
:class:`~repro.runner.executor.SweepExecutor` applies per *chunk*:

* :class:`RetryPolicy` — bounded retries with a **deterministic**
  exponential backoff schedule.  The delay before retry ``k`` is
  ``backoff_base_ms << (k - 1)`` milliseconds: no wall-clock reads, no
  jitter randomness (DET001), so two runs of the same failing sweep
  retry on the same schedule.
* **Bisection isolation** — a chunk that keeps failing is split in
  half and each half re-dispatched with a fresh retry budget, until the
  poisoned job(s) are cornered as singletons.  Healthy jobs sharing a
  chunk with a poisoned one are never lost.
* :class:`FailedOutcome` — the structured stand-in returned (in input
  order, in place of a :class:`~repro.runner.job.SimOutcome`) for a job
  that still fails once isolated, under the default non-strict policy.
  Numeric access raises :class:`FailedJobError`, so a failure can never
  silently flow into an analysis; check ``outcome.failed`` first.
  Under ``strict=True`` the executor raises :class:`SweepFailureError`
  listing every failure instead.
* **Graceful degradation** — after ``degrade_after`` pool rebuilds
  within one batch the executor stops trusting the pool and runs the
  remaining chunks inline (where a plain exception is catchable and
  retry/bisection still apply).

Chaos hooks
-----------
Fault injection for tests and the CI chaos-smoke job lives here too,
behind environment variables, and **only ever fires inside a
multiprocessing worker** — the orchestrating process is never killed:

``REPRO_CHAOS_RATE``
    Bernoulli per-chunk worker crash (``os._exit(3)``), drawn from a
    ``random.Random`` seeded on ``(pid, chunk identity)`` — so a
    rebuilt pool (new pids) redraws, and retries can succeed.
``REPRO_CHAOS_ONCE_DIR``
    Crash each distinct chunk exactly once, recorded via marker files
    in the given directory — deterministic recovery tests.
``REPRO_CHAOS_HANG_ONCE_DIR`` / ``REPRO_CHAOS_HANG_MS``
    Hang each distinct chunk once for ``REPRO_CHAOS_HANG_MS``
    milliseconds (default 30000) and then die — exercises the
    chunk-timeout path.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar, Sequence

from .job import SimJob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import SimulationResult
    from .regime import ObservedRegime

__all__ = [
    "CHAOS_HANG_MS_ENV",
    "CHAOS_HANG_ONCE_DIR_ENV",
    "CHAOS_ONCE_DIR_ENV",
    "CHAOS_RATE_ENV",
    "FailedJobError",
    "FailedOutcome",
    "RetryPolicy",
    "SweepFailureError",
    "chaos_crash_point",
    "sleep_ms",
]


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic failure handling for sweep chunks.

    Parameters
    ----------
    max_retries:
        Re-dispatches of one chunk (or bisected sub-chunk) before it is
        split — or, once a singleton, recorded as failed.  ``0`` means
        one attempt per chunk, with bisection still isolating failures.
    backoff_base_ms:
        Base of the deterministic exponential backoff schedule: retry
        ``k`` waits ``backoff_base_ms << (k - 1)`` milliseconds.  ``0``
        disables waiting (useful in tests).
    chunk_timeout:
        Seconds a pool chunk may run before the pool is declared lost
        and the chunk retried (pool execution only — inline chunks
        cannot be preempted).  ``None`` waits forever.
    strict:
        Raise :class:`SweepFailureError` at the end of the batch if any
        job still failed after retries and isolation, instead of
        returning :class:`FailedOutcome` stand-ins.
    degrade_after:
        Pool rebuilds tolerated within one batch before the executor
        degrades to inline execution for the remaining chunks.
    """

    max_retries: int = 2
    backoff_base_ms: int = 10
    chunk_timeout: float | None = None
    strict: bool = False
    degrade_after: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_ms < 0:
            raise ValueError("backoff_base_ms must be non-negative")
        if self.chunk_timeout is not None and not self.chunk_timeout > 0:
            raise ValueError("chunk_timeout must be positive (or None)")
        if self.degrade_after < 1:
            raise ValueError("degrade_after must be positive")

    def backoff_ms(self, attempt: int) -> int:
        """Delay before re-dispatch number ``attempt`` (counted from 1)."""
        if attempt < 1:
            raise ValueError("retry attempts count from 1")
        return self.backoff_base_ms << (attempt - 1)

    def schedule_ms(self) -> tuple[int, ...]:
        """The full deterministic backoff schedule, in milliseconds."""
        return tuple(
            self.backoff_ms(a) for a in range(1, self.max_retries + 1)
        )


def _seconds_float(ms: int) -> float:
    """Blessed float boundary: milliseconds to ``time.sleep`` seconds."""
    return ms / 1000


def sleep_ms(ms: int) -> None:
    """Sleep a deterministic backoff delay (no-op for ``ms <= 0``)."""
    if ms > 0:
        time.sleep(_seconds_float(ms))


# ----------------------------------------------------------------------
# Failure values
# ----------------------------------------------------------------------
class FailedJobError(RuntimeError):
    """Numeric access on a :class:`FailedOutcome`.

    Raised the moment an analysis touches ``bandwidth``/``grants``/...
    of a failed job, so failures surface loudly instead of flowing into
    results as garbage.
    """

    def __init__(self, outcome: "FailedOutcome") -> None:
        self.outcome = outcome
        super().__init__(
            f"job failed after {outcome.attempts} attempt(s) "
            f"[{outcome.job.describe()}]: {outcome.error}"
        )


class SweepFailureError(RuntimeError):
    """Strict-policy batch failure: one or more jobs could not run.

    Carries every :class:`FailedOutcome` of the batch as ``failures``.
    Successful chunks of the same batch were already memoized (and
    flushed, when a cache path is configured) before this was raised.
    """

    def __init__(self, failures: "list[FailedOutcome]") -> None:
        self.failures = failures
        first = failures[0] if failures else None
        detail = f"; first: {first.error}" if first is not None else ""
        super().__init__(
            f"{len(failures)} job(s) failed after retries and "
            f"isolation{detail}"
        )


@dataclass(frozen=True)
class FailedOutcome:
    """Structured record of a job the executor could not complete.

    Returned in place of a :class:`~repro.runner.job.SimOutcome` under
    the default (non-strict) :class:`RetryPolicy`.  Carries the job,
    the last error and the dispatch count; every numeric accessor
    raises :class:`FailedJobError` so the failure cannot be consumed as
    a result by accident.  Failed outcomes are never memoized or
    written to the disk cache.
    """

    job: SimJob
    error: str
    attempts: int
    backend: str = "failed"

    #: Discriminator mirrored by ``SimOutcome.failed`` (always False
    #: there): ``outcome.failed`` works on either type.
    failed: ClassVar[bool] = True

    @property
    def bandwidth(self) -> Fraction:
        raise FailedJobError(self)

    @property
    def period(self) -> int | None:
        raise FailedJobError(self)

    @property
    def grants(self) -> tuple[int, ...]:
        raise FailedJobError(self)

    @property
    def steady_start(self) -> int | None:
        raise FailedJobError(self)

    @property
    def cycles(self) -> int:
        raise FailedJobError(self)

    @property
    def result(self) -> "SimulationResult | None":
        raise FailedJobError(self)

    @property
    def bandwidth_float(self) -> float:
        raise FailedJobError(self)

    @property
    def full_rate_streams(self) -> int:
        raise FailedJobError(self)

    @property
    def conflict_free(self) -> bool:
        raise FailedJobError(self)

    @property
    def pair_regime(self) -> "ObservedRegime":
        raise FailedJobError(self)

    def describe(self) -> str:
        """One-line human summary for logs and error reports."""
        return (
            f"FAILED after {self.attempts} attempt(s): {self.error} "
            f"[{self.job.describe()}]"
        )


# ----------------------------------------------------------------------
# Chaos injection (tests and the CI chaos-smoke job)
# ----------------------------------------------------------------------
#: Bernoulli per-chunk worker crash probability (e.g. ``0.1``).
CHAOS_RATE_ENV = "REPRO_CHAOS_RATE"
#: Directory of marker files: crash each distinct chunk exactly once.
CHAOS_ONCE_DIR_ENV = "REPRO_CHAOS_ONCE_DIR"
#: Directory of marker files: hang each distinct chunk exactly once.
CHAOS_HANG_ONCE_DIR_ENV = "REPRO_CHAOS_HANG_ONCE_DIR"
#: Hang duration for :data:`CHAOS_HANG_ONCE_DIR_ENV` (default 30000).
CHAOS_HANG_MS_ENV = "REPRO_CHAOS_HANG_MS"


def _chaos_rate_float(raw: str) -> float:
    """Blessed float boundary: parse a chaos rate, 0.0 on garbage."""
    try:
        return float(raw)
    except ValueError:
        return 0.0


def _chunk_token(jobs: Sequence[SimJob]) -> str:
    """Stable identity of a dispatched chunk (for marker files/seeds)."""
    raw = "|".join(job.cache_key() for job in jobs)
    return hashlib.sha256(raw.encode()).hexdigest()[:24]


def _mark_once(once_dir: str, token: str) -> bool:
    """True exactly once per (directory, token): marker-file latch."""
    marker = Path(once_dir).joinpath(f"chunk-{token}")
    try:
        marker.touch(exist_ok=False)
    except (FileExistsError, OSError):
        return False
    return True


def chaos_crash_point(jobs: Sequence[SimJob]) -> None:
    """Fault-injection hook run at the top of every chunk execution.

    No-op unless one of the chaos environment variables is set **and**
    the current process is a multiprocessing worker — the orchestrating
    process (and therefore inline/degraded execution) is never harmed.
    Crashes use ``os._exit(3)`` to fake a segfaulting worker, which the
    pool surfaces as ``BrokenProcessPool``.
    """
    rate = os.environ.get(CHAOS_RATE_ENV)
    once_dir = os.environ.get(CHAOS_ONCE_DIR_ENV)
    hang_dir = os.environ.get(CHAOS_HANG_ONCE_DIR_ENV)
    if rate is None and once_dir is None and hang_dir is None:
        return
    import multiprocessing

    if multiprocessing.parent_process() is None:
        return  # never kill the orchestrating process
    token = _chunk_token(jobs)
    if hang_dir is not None and _mark_once(hang_dir, token):
        hang_ms = int(os.environ.get(CHAOS_HANG_MS_ENV, "30000"))
        sleep_ms(hang_ms)
        os._exit(3)
    if once_dir is not None and _mark_once(once_dir, token):
        os._exit(3)
    if rate is not None:
        p = _chaos_rate_float(rate)
        if p > 0:
            seed = int.from_bytes(
                hashlib.sha256(
                    f"{os.getpid()}|{token}".encode()
                ).digest()[:8],
                "big",
            )
            if random.Random(seed).random() < p:
                os._exit(3)
