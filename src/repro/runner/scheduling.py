"""Scheduling layer: *what runs where*, split from *how a chunk runs*.

Historically :class:`~repro.runner.executor.SweepExecutor` owned both
halves of sweep execution: the mechanics of running one chunk (payload
encode/decode, retry, bisection, pool rebuilds) and the policy of
spreading chunks over compute.  This module separates them:

* :class:`ChunkRunner` is the **execution core** — it plans chunks by
  the backend's ``preferred_chunk`` hint, dispatches one chunk through
  the module-level pool worker, banks finished payloads through the
  executor's memo/disk-cache callback, and owns the full
  retry/bisection state machine from :mod:`repro.runner.resilience`.
* A :class:`Scheduler` decides *where* chunks go.  Three implementations
  cover the deployment spectrum over the same core:

  - :class:`InlineScheduler` — everything in the orchestrating process
    (the degrade path, and the semantics baseline every other scheduler
    must reproduce bit-identically);
  - :class:`PoolScheduler` — a local process pool fed from a shared
    work queue, with **work stealing**: when workers go idle and the
    queue runs short, the largest queued chunk is split in half so
    stragglers drain across the pool;
  - :class:`~repro.runner.sharding.ShardScheduler` — hash-partitioned
    multi-process shards over a shared
    :class:`~repro.runner.store.ResultStore` (see ``sharding.py``).

Schedulers return ``(ran, failed)`` payload maps keyed by canonical job
key; the executor folds them back into input order.  All retry
accounting (``retries``/``failures``/``recovered`` stats, backoff
schedule, bisection splits) flows through the shared
:class:`ChunkRunner` helpers, so every scheduler surfaces identical
:class:`~repro.runner.resilience.FailedOutcome` values for the same
failing population.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

from ..obs import metrics as _metrics
from ..obs import names as _names
from ..obs import trace as _trace
from .job import SimJob
from .resilience import FailedOutcome, RetryPolicy, sleep_ms

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import ExecutorStats

__all__ = [
    "ChunkRunner",
    "InlineScheduler",
    "PoolScheduler",
    "Scheduler",
    "chunk_size",
    "preferred_chunk",
]

#: One unit of dispatchable work: a chunk of (cache_key, job) pairs.
_Chunk = list[tuple[str, SimJob]]

#: A pool worker's argument bundle: the chunk's jobs plus backend name.
_PayloadArgs = tuple[list[SimJob], "str | None"]


@dataclass
class _ChunkTask:
    """One chunk's dispatch state while a batch is being recovered."""

    chunk: _Chunk
    #: dispatches of this exact chunk so far (0 = not yet dispatched)
    attempt: int = 0
    #: True once any dispatch covering these jobs has failed
    troubled: bool = False
    #: last failure description (becomes FailedOutcome.error)
    error: str = ""


def preferred_chunk(backend: str | None) -> int:
    """The dispatched backend's advertised chunk-size hint (``1`` when
    the backend does not advertise one)."""
    from .backends import resolve_backend

    return getattr(resolve_backend(backend), "preferred_chunk", 1)


def chunk_size(n_items: int, workers: int, preferred: int) -> int:
    """Pooled chunk size honouring the backend's ``preferred_chunk``.

    The base split (ceil of four chunks per worker) balances per-job
    Python dispatch against pool latency hiding.  Backends that batch
    internally — the SoA ``batch`` core above all — advertise a larger
    ``preferred_chunk``; the split then widens up to that hint, but
    never past the floor of one chunk per worker: on a tiny sweep
    (``n_items < workers * preferred``) chunks shrink — to a single job
    each when ``n_items < workers`` — so no worker sits idle while a
    sibling runs a multi-job chunk.
    """
    base = -(-n_items // (4 * workers))
    if preferred > base:
        return min(preferred, max(1, n_items // workers))
    return base


class ChunkRunner:
    """The execution core every scheduler drives.

    Owns everything below the placement decision: chunk planning,
    payload dispatch through the (monkeypatchable, picklable)
    module-level worker in ``repro.runner.executor``, the inline
    retry/bisection state machine, and the shared failure-accounting
    helpers.  Completed chunks are banked through ``on_chunk`` — the
    executor's memoize/auto-flush hook — so caching behaviour is
    identical no matter which scheduler ran the chunk.
    """

    def __init__(
        self,
        *,
        backend: str | None,
        retry: RetryPolicy | None,
        stats: "ExecutorStats",
        on_chunk: Callable[[_Chunk, list[dict], dict[str, dict]], None],
    ) -> None:
        self.backend = backend
        self.retry = retry
        self.stats = stats
        self.on_chunk = on_chunk

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def preferred_chunk(self) -> int:
        return preferred_chunk(self.backend)

    def plan(self, items: _Chunk, workers: int) -> list[_Chunk]:
        """Split a batch into dispatchable chunks (one chunk inline)."""
        if not items:
            return []
        if workers <= 1 or len(items) <= 1:
            return [list(items)]
        size = chunk_size(len(items), workers, self.preferred_chunk())
        return [items[i : i + size] for i in range(0, len(items), size)]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def batch_fn(self) -> Callable[[_PayloadArgs], list[dict]]:
        """The module-level pool worker, resolved late so tests can
        monkeypatch ``repro.runner.executor._execute_payload_batch``."""
        from . import executor

        return executor._execute_payload_batch

    def payload_args(self, chunk: _Chunk) -> _PayloadArgs:
        return ([job for _, job in chunk], self.backend)

    def run_chunk(self, chunk: _Chunk) -> list[dict]:
        """Execute one chunk in the current process."""
        fn = self.batch_fn()
        return fn(self.payload_args(chunk))

    def dispatch_inline(self, task: _ChunkTask) -> list[dict]:
        """One in-process chunk execution (recovery dispatches traced)."""
        if not task.troubled and task.attempt == 0:
            return self.run_chunk(task.chunk)
        with _trace.span(
            _names.SPAN_EXECUTOR_RECOVERY,
            jobs=len(task.chunk),
            attempt=task.attempt,
        ):
            return self.run_chunk(task.chunk)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def observe_chunk(self, chunk: _Chunk, scheduler: str) -> None:
        """Record one planned (or stolen-split) chunk's size."""
        reg = _metrics.active_metrics()
        if reg is not None:
            reg.histogram(_names.EXECUTOR_CHUNK_JOBS).observe(len(chunk))
            reg.counter(_names.SCHED_CHUNKS, scheduler=scheduler).inc()

    def complete(
        self,
        task: _ChunkTask,
        payloads: list[dict],
        ran: dict[str, dict],
    ) -> None:
        """Bank a finished chunk and credit recovery if it had failed."""
        self.on_chunk(task.chunk, payloads, ran)
        if task.troubled:
            self.stats.recovered += len(task.chunk)

    def requeue(
        self,
        task: _ChunkTask,
        pending: deque[_ChunkTask],
        failed: dict[str, FailedOutcome],
    ) -> None:
        """Route a failed chunk: retry, bisect, or record the failure."""
        policy = self.retry
        assert policy is not None
        task.troubled = True
        if task.attempt < policy.max_retries:
            task.attempt += 1
            pending.append(task)
        elif len(task.chunk) > 1:
            # Retry budget exhausted for the whole chunk: split it to
            # corner the poisoned job(s); each half gets a fresh budget.
            mid = len(task.chunk) // 2
            for half in (task.chunk[:mid], task.chunk[mid:]):
                pending.append(
                    _ChunkTask(half, troubled=True, error=task.error)
                )
        else:
            self.record_failure(task, failed)

    def record_failure(
        self, task: _ChunkTask, failed: dict[str, FailedOutcome]
    ) -> None:
        """An isolated singleton chunk is out of options: record it."""
        key, job = task.chunk[0]
        self.stats.failures += 1
        failed[key] = FailedOutcome(
            job=job,
            error=task.error or "unknown failure",
            attempts=task.attempt + 1,
        )

    # ------------------------------------------------------------------
    # The inline state machine (also every scheduler's degrade path)
    # ------------------------------------------------------------------
    def run_inline(
        self,
        chunks: Sequence[_Chunk],
        ran: dict[str, dict],
        failed: dict[str, FailedOutcome],
        troubled: bool = False,
    ) -> None:
        """Run chunks in-process, with retry + bisection under a policy."""
        policy = self.retry
        for chunk in chunks:
            if policy is None:
                # Historical fail-fast path: errors propagate untouched.
                self.on_chunk(chunk, self.run_chunk(chunk), ran)
                continue
            task = _ChunkTask(list(chunk), troubled=troubled)
            while True:
                if task.troubled or task.attempt > 0:
                    self.stats.retries += 1
                    sleep_ms(policy.backoff_ms(max(task.attempt, 1)))
                try:
                    payloads = self.dispatch_inline(task)
                except Exception as exc:  # noqa: BLE001 - isolation layer
                    task.troubled = True
                    task.error = f"{type(exc).__name__}: {exc}"
                    if task.attempt < policy.max_retries:
                        task.attempt += 1
                        continue
                    if len(task.chunk) > 1:
                        mid = len(task.chunk) // 2
                        halves = [task.chunk[:mid], task.chunk[mid:]]
                        self.run_inline(halves, ran, failed, troubled=True)
                    else:
                        self.record_failure(task, failed)
                    break
                else:
                    self.complete(task, payloads, ran)
                    break


class Scheduler(Protocol):
    """Placement policy: spread a batch's chunks over compute."""

    name: str

    def execute(
        self, items: _Chunk, runner: ChunkRunner
    ) -> tuple[dict[str, dict], dict[str, FailedOutcome]]:
        """Run every item, returning payloads and isolated failures."""
        ...


class InlineScheduler:
    """Everything in the orchestrating process: the semantics baseline
    (and the degrade target when pools keep dying)."""

    name = "inline"

    def execute(
        self, items: _Chunk, runner: ChunkRunner
    ) -> tuple[dict[str, dict], dict[str, FailedOutcome]]:
        ran: dict[str, dict] = {}
        failed: dict[str, FailedOutcome] = {}
        chunks = runner.plan(items, 1)
        for chunk in chunks:
            runner.observe_chunk(chunk, self.name)
        runner.run_inline(chunks, ran, failed)
        return ran, failed


class PoolScheduler:
    """A local process pool fed from a shared work queue, with stealing.

    Chunks wait in one deque; each worker slot holds at most one chunk
    in flight, so the coordinator always knows what is queued versus
    running.  When completed slots outnumber the queue — idle capacity
    with stragglers still running — the largest queued chunk is split
    in half (an ``executor.steal`` span per split), so late work fans
    out over the free workers instead of serializing behind one slot.

    With a :class:`~repro.runner.resilience.RetryPolicy` attached the
    full recovery ladder applies at this level: failed chunks retry on
    the deterministic backoff schedule and bisect down to singletons,
    broken pools salvage finished futures and rebuild, a hung pool
    (no progress within ``chunk_timeout``) is condemned wholesale, and
    after ``degrade_after`` rebuilds the remaining queue drains through
    :meth:`ChunkRunner.run_inline`.
    """

    name = "pool"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("worker count must be positive")
        self.workers = workers

    def execute(
        self, items: _Chunk, runner: ChunkRunner
    ) -> tuple[dict[str, dict], dict[str, FailedOutcome]]:
        ran: dict[str, dict] = {}
        failed: dict[str, FailedOutcome] = {}
        chunks = runner.plan(items, self.workers)
        for chunk in chunks:
            runner.observe_chunk(chunk, self.name)
        if self.workers == 1 or len(chunks) <= 1:
            runner.run_inline(chunks, ran, failed)
            return ran, failed
        with _trace.span(
            _names.SPAN_EXECUTOR_POOL,
            chunks=len(chunks),
            workers=self.workers,
        ):
            if runner.retry is None:
                self._execute_failfast(chunks, runner, ran)
            else:
                self._execute_recovering(chunks, runner, ran, failed)
        return ran, failed

    # ------------------------------------------------------------------
    def _steal_split(
        self, queue: deque[_ChunkTask], busy: int, runner: ChunkRunner
    ) -> None:
        """Split queued stragglers while idle slots outnumber the queue.

        Only clean chunks (never dispatched, never failed) are split:
        troubled chunks already carry retry/bisection state that must
        stay intact.
        """
        idle = self.workers - busy
        while len(queue) < idle:
            victim: _ChunkTask | None = None
            for task in queue:
                if len(task.chunk) < 2 or task.troubled or task.attempt:
                    continue
                if victim is None or len(task.chunk) > len(victim.chunk):
                    victim = task
            if victim is None:
                return
            queue.remove(victim)
            with _trace.span(
                _names.SPAN_EXECUTOR_STEAL,
                jobs=len(victim.chunk),
                scheduler=self.name,
            ):
                reg = _metrics.active_metrics()
                if reg is not None:
                    reg.counter(
                        _names.SCHED_STEALS, scheduler=self.name
                    ).inc()
                mid = len(victim.chunk) // 2
                for part in (victim.chunk[:mid], victim.chunk[mid:]):
                    runner.observe_chunk(part, self.name)
                    queue.append(_ChunkTask(part))

    # ------------------------------------------------------------------
    def _execute_failfast(
        self,
        chunks: Sequence[_Chunk],
        runner: ChunkRunner,
        ran: dict[str, dict],
    ) -> None:
        """No policy: first error propagates, pool torn down behind it."""
        from concurrent.futures import (
            FIRST_COMPLETED,
            Future,
            ProcessPoolExecutor,
            wait,
        )

        queue: deque[_ChunkTask] = deque(_ChunkTask(c) for c in chunks)
        running: dict[Future[list[dict]], _ChunkTask] = {}
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            try:
                while queue or running:
                    self._steal_split(queue, len(running), runner)
                    while queue and len(running) < self.workers:
                        task = queue.popleft()
                        fn = runner.batch_fn()
                        fut = pool.submit(fn, runner.payload_args(task.chunk))
                        running[fut] = task
                    done, _ = wait(
                        set(running), return_when=FIRST_COMPLETED
                    )
                    for fut in done:
                        task = running.pop(fut)
                        runner.complete(task, fut.result(), ran)
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise

    # ------------------------------------------------------------------
    def _execute_recovering(
        self,
        chunks: Sequence[_Chunk],
        runner: ChunkRunner,
        ran: dict[str, dict],
        failed: dict[str, FailedOutcome],
    ) -> None:
        """Policy-governed fan-out: retry, salvage, rebuild, degrade."""
        from concurrent.futures import (
            FIRST_COMPLETED,
            BrokenExecutor,
            Future,
            ProcessPoolExecutor,
            wait,
        )

        policy = runner.retry
        assert policy is not None
        queue: deque[_ChunkTask] = deque(_ChunkTask(c) for c in chunks)
        running: dict[Future[list[dict]], _ChunkTask] = {}
        rebuilds = 0
        reg = _metrics.active_metrics()
        pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            while queue or running:
                if rebuilds > policy.degrade_after:
                    # The pool keeps dying: stop trusting it and run
                    # the remainder inline (retry/bisection intact).
                    while queue:
                        task = queue.popleft()
                        runner.run_inline(
                            [task.chunk], ran, failed,
                            troubled=task.troubled,
                        )
                    return
                self._steal_split(queue, len(running), runner)
                broken = False
                while queue and len(running) < self.workers:
                    task = queue.popleft()
                    if task.troubled or task.attempt > 0:
                        runner.stats.retries += 1
                        sleep_ms(policy.backoff_ms(max(task.attempt, 1)))
                    fn = runner.batch_fn()
                    try:
                        fut = pool.submit(
                            fn, runner.payload_args(task.chunk)
                        )
                    except (BrokenExecutor, RuntimeError) as exc:
                        # The pool died between rounds: requeue and
                        # rebuild below (salvaging what already ran).
                        task.error = (
                            f"worker pool broke at submit: "
                            f"{type(exc).__name__}: {exc}"
                        )
                        runner.requeue(task, queue, failed)
                        broken = True
                        break
                    running[fut] = task
                if not broken and running:
                    done, _ = wait(
                        set(running),
                        timeout=policy.chunk_timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        # Nothing finished within the chunk timeout:
                        # the pool is presumed hung, condemned whole.
                        broken = True
                        for task in running.values():
                            task.error = (
                                f"chunk timed out after "
                                f"{policy.chunk_timeout}s"
                            )
                    for fut in done:
                        task = running.pop(fut)
                        try:
                            payloads = fut.result()
                        except BrokenExecutor as exc:
                            broken = True
                            task.error = (
                                f"worker pool broke: "
                                f"{type(exc).__name__}: {exc}"
                            )
                            runner.requeue(task, queue, failed)
                        except Exception as exc:  # noqa: BLE001 - job error
                            # The chunk raised inside a healthy worker:
                            # retry/bisect just this chunk.
                            task.error = f"{type(exc).__name__}: {exc}"
                            runner.requeue(task, queue, failed)
                        else:
                            runner.complete(task, payloads, ran)
                if broken:
                    # Pool condemned: salvage in-flight chunks that
                    # finished cleanly, requeue the rest, rebuild.
                    for fut, task in list(running.items()):
                        fut.cancel()
                        salvaged: list[dict] | None = None
                        if fut.done() and not fut.cancelled():
                            try:
                                salvaged = fut.result()
                            except Exception:  # noqa: BLE001
                                salvaged = None
                        if salvaged is not None:
                            runner.complete(task, salvaged, ran)
                        else:
                            task.error = (
                                task.error or "lost with broken pool"
                            )
                            runner.requeue(task, queue, failed)
                    running.clear()
                    rebuilds += 1
                    if reg is not None:
                        reg.counter(_names.EXECUTOR_POOL_REBUILDS).inc()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=self.workers)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
