"""ShardScheduler: hash-partitioned sweeps over a shared result store.

The third scheduler over the :class:`~repro.runner.scheduling.
ChunkRunner` execution core models the multi-host deployment the
roadmap aims at: a **coordinator** partitions the canonicalized job
space across ``N`` shard workers by stable job-key hash
(:func:`shard_of`), and results travel through a content-addressed
:class:`~repro.runner.store.ResultStore` instead of the pickle channel
— exactly how independent hosts sharing a filesystem (or an object
store) would exchange work.

Placement and recovery:

* each shard owns a queue of chunks cut from its hash bucket; one
  worker process per shard drains it;
* **work stealing** — a shard that runs dry (empty queue, no chunk in
  flight) pulls the straggler shard's queued chunks, so one slow bucket
  cannot bound the sweep (``executor.steal`` spans,
  ``runner.scheduler.steals`` counter);
* **shard-level chaos recovery** — when a shard worker dies, everything
  it already published to the store *stays recovered*: the coordinator
  re-probes the store and re-queues only the missing keys, promoting
  the executor's chunk-level crash recovery to whole-shard granularity.
  Retry, bisection, pool rebuilds and inline degradation follow the
  same :class:`~repro.runner.resilience.RetryPolicy` ladder as the
  local pool scheduler, so outcomes — including
  :class:`~repro.runner.resilience.FailedOutcome` surfacing — stay
  bit-identical to inline execution.

Without an explicit store the scheduler runs over a private temporary
directory, so ``--shards N`` works standalone; pointing ``--store`` at
a shared path lets concurrent sweeps (or future remote shards) reuse
each other's results.
"""

from __future__ import annotations

import hashlib
import tempfile
from collections import deque
from typing import TYPE_CHECKING

from ..obs import metrics as _metrics
from ..obs import names as _names
from ..obs import trace as _trace
from .job import SimJob
from .resilience import FailedOutcome, chaos_crash_point, sleep_ms
from .scheduling import ChunkRunner, _Chunk, _ChunkTask, chunk_size
from .store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future

__all__ = ["ShardScheduler", "shard_of"]


def shard_of(key: str, shards: int) -> int:
    """Stable shard index of a canonical job key (sha256 partition)."""
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") % shards


def _run_shard_chunk(
    args: tuple[_Chunk, str | None, str]
) -> list[str]:
    """Process-pool worker for one shard chunk.

    Executes the chunk's jobs through the backend's batch entry point
    and publishes every payload into the shared result store; only the
    *keys* return over the pickle channel — results flow through the
    store, as they would between hosts.
    """
    chunk, backend, store_root = args
    from .backends import resolve_backend

    jobs = [job for _, job in chunk]
    chaos_crash_point(jobs)
    outcomes = resolve_backend(backend).run_batch(jobs)
    store = ResultStore(store_root)
    store.put_many(
        {
            key: outcome.to_payload()
            for (key, _), outcome in zip(chunk, outcomes)
        }
    )
    return [key for key, _ in chunk]


class ShardScheduler:
    """Coordinator over hash-partitioned shard workers and a store."""

    name = "shard"

    def __init__(
        self, shards: int, *, store: ResultStore | None = None
    ) -> None:
        if shards < 1:
            raise ValueError("shard count must be positive")
        self.shards = shards
        self.store = store

    def execute(
        self, items: _Chunk, runner: ChunkRunner
    ) -> tuple[dict[str, dict], dict[str, FailedOutcome]]:
        ran: dict[str, dict] = {}
        failed: dict[str, FailedOutcome] = {}
        if not items:
            return ran, failed
        if self.store is not None:
            self._execute_with(self.store, items, runner, ran, failed)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-store-") as tmp:
                self._execute_with(
                    ResultStore(tmp), items, runner, ran, failed
                )
        return ran, failed

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def _partition(
        self, items: _Chunk, runner: ChunkRunner
    ) -> list[deque[_ChunkTask]]:
        buckets: list[_Chunk] = [[] for _ in range(self.shards)]
        for key, job in items:
            buckets[shard_of(key, self.shards)].append((key, job))
        reg = _metrics.active_metrics()
        preferred = runner.preferred_chunk()
        queues: list[deque[_ChunkTask]] = []
        for bucket in buckets:
            if reg is not None:
                reg.histogram(_names.SCHED_SHARD_JOBS).observe(len(bucket))
            queue: deque[_ChunkTask] = deque()
            if bucket:
                size = chunk_size(len(bucket), 1, preferred)
                for i in range(0, len(bucket), size):
                    chunk = bucket[i : i + size]
                    runner.observe_chunk(chunk, self.name)
                    queue.append(_ChunkTask(chunk))
            queues.append(queue)
        return queues

    def _home_queue(
        self, queues: list[deque[_ChunkTask]], task: _ChunkTask
    ) -> deque[_ChunkTask]:
        return queues[shard_of(task.chunk[0][0], self.shards)]

    # ------------------------------------------------------------------
    # Work stealing across shards
    # ------------------------------------------------------------------
    def _steal(
        self,
        queues: list[deque[_ChunkTask]],
        busy: set[int],
        runner: ChunkRunner,
    ) -> None:
        """Re-queue straggler chunks onto idle shards.

        An idle shard (empty queue, nothing in flight) takes the last
        queued chunk of the most backlogged shard.  A donor's only
        queued chunk moves only while the donor is busy — otherwise it
        would dispatch there immediately anyway.
        """
        while True:
            idle = [
                s
                for s in range(self.shards)
                if not queues[s] and s not in busy
            ]
            if not idle:
                return
            donor, backlog = -1, 0
            for s in range(self.shards):
                if len(queues[s]) > backlog:
                    donor, backlog = s, len(queues[s])
            if donor < 0 or (backlog < 2 and donor not in busy):
                return
            task = queues[donor].pop()
            with _trace.span(
                _names.SPAN_EXECUTOR_STEAL,
                jobs=len(task.chunk),
                scheduler=self.name,
            ):
                reg = _metrics.active_metrics()
                if reg is not None:
                    reg.counter(
                        _names.SCHED_STEALS, scheduler=self.name
                    ).inc()
            queues[idle[0]].append(task)

    # ------------------------------------------------------------------
    # Completion and recovery through the store
    # ------------------------------------------------------------------
    def _finish_from_store(
        self,
        store: ResultStore,
        task: _ChunkTask,
        runner: ChunkRunner,
        queues: list[deque[_ChunkTask]],
        ran: dict[str, dict],
        failed: dict[str, FailedOutcome],
    ) -> None:
        """Bank a completed chunk's payloads by reading them back."""
        saved = store.get_many(key for key, _ in task.chunk)
        present = [(k, j) for k, j in task.chunk if k in saved]
        if present:
            runner.on_chunk(present, [saved[k] for k, _ in present], ran)
            if task.troubled:
                runner.stats.recovered += len(present)
        missing = [(k, j) for k, j in task.chunk if k not in saved]
        if not missing:
            return
        if runner.retry is None:
            raise RuntimeError(
                f"result store lost {len(missing)} payload(s) of a "
                "completed shard chunk"
            )
        sub = _ChunkTask(
            missing,
            attempt=task.attempt,
            troubled=True,
            error="result store payload missing after execution",
        )
        runner.requeue(sub, self._home_queue(queues, sub), failed)

    def _requeue_salvaging(
        self,
        store: ResultStore,
        task: _ChunkTask,
        runner: ChunkRunner,
        queues: list[deque[_ChunkTask]],
        ran: dict[str, dict],
        failed: dict[str, FailedOutcome],
    ) -> None:
        """Shard-level recovery: keep whatever the dead worker already
        published to the store, re-queue only the missing keys."""
        saved = store.get_many(key for key, _ in task.chunk)
        if saved:
            done_pairs = [(k, j) for k, j in task.chunk if k in saved]
            runner.on_chunk(
                done_pairs, [saved[k] for k, _ in done_pairs], ran
            )
            runner.stats.recovered += len(done_pairs)
            rest = [(k, j) for k, j in task.chunk if k not in saved]
            if not rest:
                return
            task = _ChunkTask(
                rest,
                attempt=task.attempt,
                troubled=task.troubled,
                error=task.error,
            )
        runner.requeue(task, self._home_queue(queues, task), failed)

    # ------------------------------------------------------------------
    # The drive loop
    # ------------------------------------------------------------------
    def _execute_with(
        self,
        store: ResultStore,
        items: _Chunk,
        runner: ChunkRunner,
        ran: dict[str, dict],
        failed: dict[str, FailedOutcome],
    ) -> None:
        from concurrent.futures import (
            FIRST_COMPLETED,
            BrokenExecutor,
            ProcessPoolExecutor,
            wait,
        )

        policy = runner.retry
        queues = self._partition(items, runner)
        n_chunks = sum(len(q) for q in queues)
        running: dict[
            "Future[list[str]]", tuple[int, _ChunkTask]
        ] = {}
        busy: set[int] = set()
        rebuilds = 0
        reg = _metrics.active_metrics()
        pool = ProcessPoolExecutor(max_workers=self.shards)
        with _trace.span(
            _names.SPAN_EXECUTOR_SHARD,
            chunks=n_chunks,
            shards=self.shards,
        ):
            try:
                while any(queues) or running:
                    if policy is not None and rebuilds > policy.degrade_after:
                        # Shard workers keep dying: drain every queue
                        # inline (retry/bisection intact).
                        for queue in queues:
                            while queue:
                                task = queue.popleft()
                                runner.run_inline(
                                    [task.chunk], ran, failed,
                                    troubled=task.troubled,
                                )
                        return
                    self._steal(queues, busy, runner)
                    broken = False
                    for shard in range(self.shards):
                        if shard in busy or not queues[shard]:
                            continue
                        task = queues[shard].popleft()
                        if policy is not None and (
                            task.troubled or task.attempt > 0
                        ):
                            runner.stats.retries += 1
                            sleep_ms(
                                policy.backoff_ms(max(task.attempt, 1))
                            )
                        try:
                            fut = pool.submit(
                                _run_shard_chunk,
                                (task.chunk, runner.backend, str(store.root)),
                            )
                        except (BrokenExecutor, RuntimeError) as exc:
                            if policy is None:
                                raise
                            task.error = (
                                f"shard pool broke at submit: "
                                f"{type(exc).__name__}: {exc}"
                            )
                            self._requeue_salvaging(
                                store, task, runner, queues, ran, failed
                            )
                            broken = True
                            break
                        running[fut] = (shard, task)
                        busy.add(shard)
                    if not broken and running:
                        done, _ = wait(
                            set(running),
                            timeout=(
                                policy.chunk_timeout
                                if policy is not None
                                else None
                            ),
                            return_when=FIRST_COMPLETED,
                        )
                        if not done and policy is not None:
                            # No shard made progress within the chunk
                            # timeout: condemn the pool wholesale.
                            broken = True
                            for _, task in running.values():
                                task.error = (
                                    f"shard chunk timed out after "
                                    f"{policy.chunk_timeout}s"
                                )
                        for fut in done:
                            shard, task = running.pop(fut)
                            busy.discard(shard)
                            try:
                                fut.result()
                            except BrokenExecutor as exc:
                                if policy is None:
                                    raise
                                broken = True
                                task.error = (
                                    f"shard worker died: "
                                    f"{type(exc).__name__}: {exc}"
                                )
                                self._requeue_salvaging(
                                    store, task, runner, queues, ran,
                                    failed,
                                )
                            except Exception as exc:  # noqa: BLE001
                                if policy is None:
                                    raise
                                task.error = f"{type(exc).__name__}: {exc}"
                                self._requeue_salvaging(
                                    store, task, runner, queues, ran,
                                    failed,
                                )
                            else:
                                self._finish_from_store(
                                    store, task, runner, queues, ran,
                                    failed,
                                )
                    if broken:
                        # Salvage in-flight chunks that finished, then
                        # re-probe the store for everything else: a dead
                        # shard's published work survives it.
                        for fut, (shard, task) in list(running.items()):
                            fut.cancel()
                            finished = False
                            if fut.done() and not fut.cancelled():
                                try:
                                    fut.result()
                                    finished = True
                                except Exception:  # noqa: BLE001
                                    finished = False
                            if finished:
                                self._finish_from_store(
                                    store, task, runner, queues, ran,
                                    failed,
                                )
                            else:
                                task.error = (
                                    task.error
                                    or "lost with broken shard worker"
                                )
                                self._requeue_salvaging(
                                    store, task, runner, queues, ran,
                                    failed,
                                )
                        running.clear()
                        busy.clear()
                        rebuilds += 1
                        if reg is not None:
                            reg.counter(
                                _names.EXECUTOR_POOL_REBUILDS
                            ).inc()
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(max_workers=self.shards)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
