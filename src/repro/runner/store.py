"""Content-addressed shared result store: one payload file per job key.

The :class:`~repro.runner.executor.SweepExecutor`'s on-disk JSON cache
is a single merge-on-flush file — fine for one process, but concurrent
writers (the :class:`~repro.runner.sharding.ShardScheduler`'s worker
processes, or several sweeps sharing one cache directory) would race on
it.  :class:`ResultStore` generalizes that cache into a directory of
*per-key* files:

* **Content addressing** — the file for a canonical job key lives at
  ``root/<hh>/<sha256(key)>.json`` where ``hh`` is the first two hex
  digits of the digest (256-way fan-out keeps directories small).  Two
  writers holding the same key hold the same *result* (keys canonicalize
  through the Appendix isomorphism), so a lost race loses nothing.
* **Crash atomicity** — every write lands in a unique temp file in the
  destination directory and is published with :func:`os.replace`.
  Readers never observe a half-written payload; a killed writer leaves
  at most a stray ``*.tmp*`` file, never a truncated entry.
* **Quarantine on corruption** — an unreadable or version-mismatched
  payload file is moved aside to ``<file>.corrupt`` and reads as a
  miss, mirroring the executor's whole-file cache semantics.

The store holds JSON payloads (:meth:`repro.runner.job.SimOutcome.
to_payload` dicts — exact ``Fraction`` values survive the round trip)
keyed by :meth:`repro.runner.job.SimJob.cache_key`; it never touches
job objects, so shard workers can exchange *keys* over the pickle
channel and stream the heavy results through the filesystem instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from ..obs import metrics as _metrics
from ..obs import names as _names

__all__ = ["ResultStore"]

_STORE_VERSION = 1


def _digest(key: str) -> str:
    return hashlib.sha256(key.encode()).hexdigest()


class ResultStore:
    """A directory of atomically written per-key result payloads."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Where the payload file for ``key`` lives (may not exist)."""
        digest = _digest(key)
        return self.root.joinpath(digest[:2], f"{digest}.json")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The stored payload for ``key``, or ``None`` on a miss."""
        payload = self._load(key)
        reg = _metrics.active_metrics()
        if reg is not None:
            if payload is None:
                reg.counter(_names.STORE_MISSES).inc()
            else:
                reg.counter(_names.STORE_HITS).inc()
        return payload

    def get_many(self, keys: Iterable[str]) -> dict[str, dict]:
        """Payloads for every present key (absent keys are omitted)."""
        found: dict[str, dict] = {}
        misses = 0
        for key in keys:
            if key in found:
                continue
            payload = self._load(key)
            if payload is None:
                misses += 1
            else:
                found[key] = payload
        reg = _metrics.active_metrics()
        if reg is not None:
            if found:
                reg.counter(_names.STORE_HITS).inc(len(found))
            if misses:
                reg.counter(_names.STORE_MISSES).inc(misses)
        return found

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """Every key currently stored (reads each file's header)."""
        for key, _ in self.items():
            yield key

    def items(self) -> Iterator[tuple[str, dict]]:
        """Every ``(key, payload)`` pair currently stored.

        One sequential pass over the fan-out directories; unreadable or
        malformed files are skipped (use :meth:`get` for the
        quarantining read path).  This is the preload path of the
        :class:`repro.serve.lookup.LookupTier`: a service sucks the
        whole precomputed table into memory once at startup instead of
        paying a file open per query.
        """
        for file in sorted(self.root.glob("??/*.json")):
            try:
                data = json.loads(file.read_text())
            except (OSError, ValueError):
                continue
            if (
                isinstance(data, dict)
                and data.get("version") == _STORE_VERSION
                and isinstance(data.get("key"), str)
                and isinstance(data.get("payload"), dict)
            ):
                yield data["key"], data["payload"]

    def _load(self, key: str) -> dict | None:
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            self._quarantine(path, f"unreadable payload file ({exc})")
            return None
        if (
            not isinstance(data, dict)
            or data.get("version") != _STORE_VERSION
            or not isinstance(data.get("payload"), dict)
        ):
            self._quarantine(path, "malformed or version-mismatched payload")
            return None
        return data["payload"]

    def _quarantine(self, path: Path, reason: str) -> None:
        target = path.with_suffix(path.suffix + ".corrupt")
        try:
            path.replace(target)
            where = f"quarantined to {target}"
        except OSError as exc:
            where = f"could not quarantine ({exc})"
        warnings.warn(
            f"result store entry {path}: {reason}; {where}; "
            "treating as a miss",
            RuntimeWarning,
            stacklevel=4,
        )
        reg = _metrics.active_metrics()
        if reg is not None:
            reg.counter(_names.STORE_QUARANTINED).inc()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: str, payload: Mapping[str, object]) -> None:
        """Atomically write one payload (last writer wins, never torn)."""
        self._write(key, payload)
        reg = _metrics.active_metrics()
        if reg is not None:
            reg.counter(_names.STORE_WRITES).inc()

    def put_many(self, payloads: Mapping[str, Mapping[str, object]]) -> None:
        """Atomically write each payload (one file, one replace, each)."""
        for key, payload in payloads.items():
            self._write(key, payload)
        reg = _metrics.active_metrics()
        if reg is not None and payloads:
            reg.counter(_names.STORE_WRITES).inc(len(payloads))

    def _write(self, key: str, payload: Mapping[str, object]) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps(
            {"version": _STORE_VERSION, "key": key, "payload": dict(payload)},
            separators=(",", ":"),
        )
        # A unique temp file per writer: concurrent shards publishing
        # the same key race only on the final rename, which is atomic.
        fd, tmp = tempfile.mkstemp(
            prefix=path.name, suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(body)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
