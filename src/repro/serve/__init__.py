"""The bandwidth-oracle service: an async query server over the runner.

The repository's analyses consume bandwidth answers in-process through
the :class:`~repro.runner.executor.SweepExecutor`; this package exposes
the same oracle over HTTP/JSON so external tooling (dashboards, sweep
farms, notebooks on other machines) can ask "what is the exact steady
``b_eff`` of these streams on this memory?" without importing the
repository.  Zero dependencies beyond the standard library: the server
is plain :mod:`asyncio` streams, the protocol plain JSON.

Four modules, one per concern:

:mod:`repro.serve.protocol`
    The wire contract — endpoint catalog, request validation into
    frozen :class:`~repro.runner.job.SimJob` values, exact-``Fraction``
    response payloads, and the failure-mode → HTTP status table.
:mod:`repro.serve.lookup`
    The cheap tier — closed-form :func:`~repro.runner.analytic.solve`
    plus a preloaded precomputed table out of the shared
    :class:`~repro.runner.store.ResultStore`; answers on the event loop
    in microseconds, never simulates.
:mod:`repro.serve.coalesce`
    The expensive tier — concurrent identical queries (identical under
    the Appendix isomorphism) fold onto one in-flight computation, and
    distinct queries micro-batch through one warm shared executor.
:mod:`repro.serve.app`
    The HTTP server — routing, keep-alive, per-request latency
    histograms, load shedding past an in-flight cap, ``/metrics``
    Prometheus export, graceful cache-flushing shutdown.

The endpoint and metric contracts are documented in ``docs/SERVICE.md``
and diffed against this package by ``tests/serve/test_docs.py``.
"""

from .app import BandwidthService, run_server
from .coalesce import Coalescer
from .lookup import LookupTier
from .protocol import (
    ENDPOINTS,
    FAILURE_STATUS,
    EndpointSpec,
    ProtocolError,
    job_from_payload,
    outcome_to_payload,
)

__all__ = [
    "BandwidthService",
    "Coalescer",
    "ENDPOINTS",
    "EndpointSpec",
    "FAILURE_STATUS",
    "LookupTier",
    "ProtocolError",
    "job_from_payload",
    "outcome_to_payload",
    "run_server",
]
