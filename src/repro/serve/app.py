"""The asyncio HTTP server: routing, shedding, metrics, shutdown.

Plain :mod:`asyncio` streams and hand-rolled HTTP/1.1 — no framework,
no dependency.  The protocol subset is deliberately small: JSON bodies,
``Content-Length`` framing (no chunked requests), keep-alive by
default.  Everything interesting happens in :meth:`BandwidthService.
dispatch`, which is pure ``(method, target, body) -> response`` and
therefore testable without a socket.

Request flow for the compute endpoints (``/v1/beff``, ``/v1/sweep``):

1. **shed** — past ``max_inflight`` concurrently served compute
   requests the service answers ``429`` with a ``Retry-After`` header
   instead of queueing unboundedly;
2. **validate** — the body parses into frozen
   :class:`~repro.runner.job.SimJob` values or fails as a ``400``;
3. **probe** — the :class:`~repro.serve.lookup.LookupTier` answers
   analytically-decided and precomputed points inline, in microseconds;
4. **drain** — the rest coalesce through the
   :class:`~repro.serve.coalesce.Coalescer` onto one warm shared
   :class:`~repro.runner.executor.SweepExecutor` in a worker thread.

Shutdown is graceful: the listener closes, queued drain batches finish,
the executor flushes its on-disk cache, and late requests get ``503``.
"""

from __future__ import annotations

import asyncio
import json
import signal
from fractions import Fraction
from typing import Awaitable, Callable
from urllib.parse import parse_qs, urlsplit

from ..core.classify import classify_pair
from ..obs import metrics as _metrics
from ..obs import names as _names
from ..obs import trace as _trace
from ..obs.export import render_prometheus
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Stopwatch
from ..runner.executor import SweepExecutor
from ..runner.job import SimJob
from ..runner.store import ResultStore
from .coalesce import Coalescer
from .lookup import LookupTier
from .protocol import (
    MAX_SWEEP_JOBS,
    ProtocolError,
    job_from_payload,
    outcome_to_payload,
)

__all__ = ["BandwidthService", "run_server"]

#: Largest accepted request body (a full MAX_SWEEP_JOBS sweep fits).
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

#: Known route paths — also the latency/request label vocabulary
#: (unknown paths collapse onto one label to bound cardinality).
_ROUTES = ("/v1/beff", "/v1/sweep", "/v1/regime", "/metrics", "/healthz")

_Response = tuple[int, str, bytes, dict[str, str]]


def _json_body(obj: object) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode()


def _fraction_str(value: Fraction | None) -> str | None:
    if value is None:
        return None
    return f"{value.numerator}/{value.denominator}"


class BandwidthService:
    """The bandwidth oracle behind the HTTP endpoints.

    Parameters
    ----------
    executor:
        A warm :class:`SweepExecutor` to share; built internally (with
        ``backend`` and the store) when ``None``.
    backend:
        Backend for an internally built executor (default ``"auto"``:
        closed form where a theorem decides, lockstep batch core for
        large undecided drains).
    store:
        Shared :class:`ResultStore` — the lookup tier preloads it and
        the executor publishes fresh results back into it.
    max_inflight:
        Load-shedding cap on concurrently served compute requests.
    max_sweep_jobs:
        Per-request job cap for ``/v1/sweep`` (413 above it).
    """

    def __init__(
        self,
        *,
        executor: SweepExecutor | None = None,
        backend: str = "auto",
        store: ResultStore | None = None,
        max_inflight: int = 64,
        max_sweep_jobs: int = MAX_SWEEP_JOBS,
    ) -> None:
        if max_inflight < 0:
            raise ValueError("max_inflight must be non-negative")
        if executor is None:
            executor = SweepExecutor(backend=backend, store=store)
        self.executor = executor
        self.lookup = LookupTier(store=store, executor=executor)
        self.coalescer = Coalescer(executor)
        self.registry = MetricsRegistry()
        self.max_inflight = max_inflight
        self.max_sweep_jobs = max_sweep_jobs
        self._inflight = 0
        self._draining = False
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # Dispatch (socket-free core; the unit tests call this directly)
    # ------------------------------------------------------------------
    async def dispatch(self, method: str, target: str, body: bytes = b"") -> _Response:
        """Serve one request: ``(status, content_type, body, headers)``."""
        url = urlsplit(target)
        endpoint = url.path if url.path in _ROUTES else "unknown"
        watch = Stopwatch()
        extra: dict[str, str] = {}
        with _trace.span(_names.SPAN_SERVE_REQUEST, endpoint=endpoint):
            try:
                status, ctype, payload, extra = await self._route(
                    method, url.path, url.query, body
                )
            except ProtocolError as exc:
                status, ctype, payload = self._error(exc)
                if exc.mode == "overloaded":
                    extra = {"Retry-After": "1"}
            except Exception as exc:  # noqa: BLE001 - boundary: 500, never a crash
                err = ProtocolError("internal", f"{type(exc).__name__}: {exc}")
                status, ctype, payload = self._error(err)
        reg = _metrics.active_metrics()
        if reg is not None:
            reg.counter(
                _names.SERVE_REQUESTS, endpoint=endpoint, status=status
            ).inc()
            reg.histogram(_names.SERVE_LATENCY, endpoint=endpoint).observe(
                watch.elapsed_us()
            )
        return status, ctype, payload, extra

    def _error(self, exc: ProtocolError) -> tuple[int, str, bytes]:
        body = _json_body(
            {
                "error": {
                    "mode": exc.mode,
                    "status": exc.status,
                    "message": str(exc),
                }
            }
        )
        return exc.status, "application/json", body

    async def _route(
        self, method: str, path: str, query: str, body: bytes
    ) -> _Response:
        if path not in _ROUTES:
            raise ProtocolError("not-found", f"no such endpoint: {path}")
        if path == "/healthz":
            self._expect(method, "GET")
            return self._healthz()
        if path == "/metrics":
            self._expect(method, "GET")
            text = render_prometheus(self.registry)
            return 200, "text/plain; version=0.0.4", text.encode(), {}
        if path == "/v1/regime":
            self._expect(method, "GET")
            return self._regime(query)
        self._expect(method, "POST")
        self._check_capacity()
        data = self._parse_json(body)
        self._inflight += 1
        self._set_inflight_gauge()
        try:
            if path == "/v1/beff":
                return await self._beff(data)
            return await self._sweep(data)
        finally:
            self._inflight -= 1
            self._set_inflight_gauge()

    @staticmethod
    def _expect(method: str, allowed: str) -> None:
        if method != allowed:
            raise ProtocolError(
                "bad-method", f"this endpoint only accepts {allowed}"
            )

    def _check_capacity(self) -> None:
        if self._draining:
            raise ProtocolError("shutting-down", "service is draining")
        if self._inflight >= self.max_inflight:
            reg = _metrics.active_metrics()
            if reg is not None:
                reg.counter(_names.SERVE_SHED).inc()
            raise ProtocolError(
                "overloaded",
                f"in-flight cap ({self.max_inflight}) reached; retry later",
            )

    def _set_inflight_gauge(self) -> None:
        reg = _metrics.active_metrics()
        if reg is not None:
            reg.gauge(_names.SERVE_INFLIGHT).set(self._inflight)

    @staticmethod
    def _parse_json(body: bytes) -> object:
        try:
            return json.loads(body)
        except ValueError as exc:
            raise ProtocolError(
                "malformed", f"request body is not valid JSON: {exc}"
            ) from None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _healthz(self) -> _Response:
        body = _json_body(
            {
                "status": "draining" if self._draining else "ok",
                "inflight": self._inflight,
                "queue_depth": self.coalescer.queue_depth,
                "lookup_entries": len(self.lookup),
                "executor": self.executor.stats.as_dict(),
            }
        )
        return 200, "application/json", body, {}

    def _regime(self, query: str) -> _Response:
        params = parse_qs(query)

        def _int(name: str, required: bool = True) -> int | None:
            values = params.get(name)
            if not values:
                if required:
                    raise ProtocolError(
                        "malformed", f"missing query parameter {name!r}"
                    )
                return None
            try:
                return int(values[-1])
            except ValueError:
                raise ProtocolError(
                    "malformed", f"query parameter {name!r} must be an integer"
                ) from None

        m = _int("m")
        n_c = _int("n_c")
        d1 = _int("d1")
        d2 = _int("d2")
        s = _int("s", required=False)
        assert m is not None and n_c is not None
        assert d1 is not None and d2 is not None
        try:
            c = classify_pair(m, n_c, d1, d2, s=s)
        except ValueError as exc:
            raise ProtocolError("malformed", str(exc)) from None
        predicted = c.predicted_bandwidth
        body = _json_body(
            {
                "m": c.m,
                "n_c": c.n_c,
                "d1": c.d1,
                "d2": c.d2,
                "s": s,
                "regime": c.regime.value,
                "predicted_bandwidth": _fraction_str(predicted),
                "predicted_bandwidth_float": (
                    None if predicted is None else float(predicted)
                ),
                "bandwidth_lower": _fraction_str(c.bandwidth_lower),
                "bandwidth_upper": _fraction_str(c.bandwidth_upper),
                "delayed_stream": c.delayed_stream,
                "conflict_free_offset": c.conflict_free_offset,
                "notes": list(c.notes),
            }
        )
        return 200, "application/json", body, {}

    async def _answer_one(self, job: SimJob) -> dict:
        hit = self.lookup.probe(job)
        if hit is not None:
            outcome, tier = hit
            return outcome_to_payload(job, outcome, tier=tier)
        outcome = await self.coalescer.submit(job)
        if outcome.failed:
            raise ProtocolError(
                "failed-job",
                f"job could not be completed: {getattr(outcome, 'error', '?')}",
            )
        self.lookup.absorb(job, outcome)
        return outcome_to_payload(job, outcome, tier="simulated")

    async def _beff(self, data: object) -> _Response:
        job = job_from_payload(data)
        if job.trace:
            raise ProtocolError("malformed", "trace jobs are not servable")
        result = await self._answer_one(job)
        return 200, "application/json", _json_body(result), {}

    async def _sweep(self, data: object) -> _Response:
        if not isinstance(data, dict) or not isinstance(data.get("jobs"), list):
            raise ProtocolError(
                "malformed", "sweep body must be {\"jobs\": [...]}"
            )
        raw_jobs = data["jobs"]
        if len(raw_jobs) > self.max_sweep_jobs:
            raise ProtocolError(
                "too-large",
                f"sweep of {len(raw_jobs)} jobs exceeds the cap of "
                f"{self.max_sweep_jobs}",
            )
        jobs = [job_from_payload(item) for item in raw_jobs]

        async def _safe(job: SimJob) -> dict:
            try:
                return await self._answer_one(job)
            except ProtocolError as exc:
                if exc.mode != "failed-job":
                    raise
                return {
                    "key": job.cache_key(),
                    "tier": "failed",
                    "failed": True,
                    "error": str(exc),
                }

        results = await asyncio.gather(*(_safe(job) for job in jobs))
        tiers: dict[str, int] = {}
        for item in results:
            tiers[item["tier"]] = tiers.get(item["tier"], 0) + 1
        body = _json_body(
            {
                "results": list(results),
                "count": len(results),
                "failures": tiers.get("failed", 0),
                "tiers": tiers,
            }
        )
        return 200, "application/json", body, {}

    # ------------------------------------------------------------------
    # The socket layer
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3:
                    await self._write_response(
                        writer,
                        self._error(
                            ProtocolError("malformed", "bad request line")
                        )
                        + ({},),
                        keep=False,
                    )
                    break
                method, target, _version = parts
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    length = -1
                if length < 0 or length > MAX_BODY_BYTES:
                    await self._write_response(
                        writer,
                        self._error(
                            ProtocolError(
                                "too-large", "invalid or oversized body"
                            )
                        )
                        + ({},),
                        keep=False,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                response = await self.dispatch(method, target, body)
                keep = (
                    headers.get("connection", "").lower() != "close"
                    and not self._draining
                )
                await self._write_response(writer, response, keep=keep)
                if not keep:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter, response: _Response, *, keep: bool
    ) -> None:
        status, ctype, payload, extra = response
        reason = _REASONS.get(status, "OK")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(payload)}",
        ]
        head.extend(f"{name}: {value}" for name, value in extra.items())
        head.append(f"Connection: {'keep-alive' if keep else 'close'}")
        writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n")
        writer.write(payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Bind the listener and enable the service metrics registry."""
        _metrics.enable_metrics(self.registry)
        self._server = await asyncio.start_server(
            self._handle_client, host, port
        )
        return self._server

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("service is not listening")
        port = self._server.sockets[0].getsockname()[1]
        return int(port)

    async def aclose(self) -> None:
        """Graceful shutdown: drain queued work, flush every cache."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.coalescer.close()
        self.executor.flush()
        _metrics.disable_metrics()


async def _amain(
    service: BandwidthService,
    host: str,
    port: int,
    announce: Callable[[str], object],
    precompute: Callable[[BandwidthService], Awaitable[None]] | None = None,
) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    await service.start(host, port)
    if precompute is not None:
        await precompute(service)
    announce(f"serving on http://{host}:{service.port}")
    await stop.wait()
    announce("draining")
    await service.aclose()


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    backend: str = "auto",
    store_path: str | None = None,
    cache_path: str | None = None,
    workers: int = 1,
    max_inflight: int = 64,
    precompute_jobs: list[SimJob] | None = None,
    announce: Callable[[str], object] = print,
) -> None:
    """Build a service and serve until SIGINT/SIGTERM (the CLI entry).

    ``store_path`` wires one shared :class:`ResultStore` into both the
    lookup tier and the executor; ``precompute_jobs`` runs an offline
    warm-up sweep through the executor before the listener is
    announced, so a ``--precompute`` launch only reports ready once the
    table is hot.
    """
    store = ResultStore(store_path) if store_path is not None else None
    executor = SweepExecutor(
        backend=backend,
        workers=workers,
        cache_path=cache_path,
        store=store,
    )
    service = BandwidthService(
        executor=executor, store=store, max_inflight=max_inflight
    )

    async def _precompute(svc: BandwidthService) -> None:
        assert precompute_jobs is not None
        loop = asyncio.get_running_loop()
        added = await loop.run_in_executor(
            None, lambda: svc.lookup.precompute(precompute_jobs)
        )
        announce(f"precomputed {added} lookup entries")

    asyncio.run(
        _amain(
            service,
            host,
            port,
            announce,
            _precompute if precompute_jobs else None,
        )
    )
