"""Request coalescing: one in-flight computation per canonical job.

A service in front of a sweep farm sees bursts of *identical* queries —
many clients asking for the same point, or one client retrying.  Running
each would waste a simulation per duplicate; serialising them through a
lock would waste the batch backends' lockstep width.  The
:class:`Coalescer` does neither:

* **fold** — requests whose jobs are identical under the Appendix
  isomorphism (same :meth:`~repro.runner.job.SimJob.cache_key`) share
  one :class:`asyncio.Future`; only the first enqueues work.
* **micro-batch** — distinct queued jobs drain together in one
  :meth:`~repro.runner.executor.SweepExecutor.run_many` call, so a
  burst of novel points reaches the batch backend as one wide
  population instead of N width-1 calls.
* **serialise** — exactly one drain task talks to the executor (which
  is not thread-safe), off the event loop in a worker thread; requests
  arriving mid-drain queue for the next batch.

Late duplicates (arriving after their twin resolved) are *not* folded
here — they hit the executor's memo and cost a cache lookup, which is
the same answer by a different tier.
"""

from __future__ import annotations

import asyncio

from ..obs import metrics as _metrics
from ..obs import names as _names
from ..obs import trace as _trace
from ..runner.executor import SweepExecutor
from ..runner.job import SimJob, SimOutcome

__all__ = ["Coalescer"]


class Coalescer:
    """Fold and micro-batch concurrent job queries onto one executor."""

    def __init__(self, executor: SweepExecutor) -> None:
        self.executor = executor
        #: canonical key -> the future every folded request awaits
        self._inflight: dict[str, asyncio.Future[SimOutcome]] = {}
        #: canonical key -> job queued for the next drain batch
        self._pending: dict[str, SimJob] = {}
        self._drain_task: asyncio.Task[None] | None = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Canonical jobs queued for the next drain batch."""
        return len(self._pending)

    def _set_queue_gauge(self) -> None:
        reg = _metrics.active_metrics()
        if reg is not None:
            reg.gauge(_names.SERVE_QUEUE_DEPTH).set(len(self._pending))

    async def submit(self, job: SimJob) -> SimOutcome:
        """Resolve ``job``, folding onto an in-flight twin if one exists.

        Raises whatever the executor raised for the batch the job ran
        in; under a non-strict retry policy failures come back as
        :class:`~repro.runner.resilience.FailedOutcome` values instead
        (check ``outcome.failed``).
        """
        if self._closed:
            raise RuntimeError("coalescer is closed")
        key = job.cache_key()
        fut = self._inflight.get(key)
        if fut is not None:
            reg = _metrics.active_metrics()
            if reg is not None:
                reg.counter(_names.SERVE_COALESCED).inc()
            return await asyncio.shield(fut)
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._inflight[key] = fut
        self._pending[key] = job
        self._set_queue_gauge()
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = loop.create_task(self._drain())
        return await asyncio.shield(fut)

    async def _drain(self) -> None:
        """Drain pending batches until the queue is empty.

        One instance of this task runs at a time, so all executor
        access is serialised; the blocking ``run_many`` call happens in
        a worker thread so the event loop keeps accepting (and folding)
        requests mid-simulation.
        """
        loop = asyncio.get_running_loop()
        while self._pending:
            batch = dict(self._pending)
            self._pending.clear()
            self._set_queue_gauge()
            reg = _metrics.active_metrics()
            if reg is not None:
                reg.counter(_names.SERVE_BATCHES).inc()
            jobs = list(batch.values())
            try:
                with _trace.span(_names.SPAN_SERVE_DRAIN, jobs=len(jobs)):
                    outcomes = await loop.run_in_executor(
                        None, self.executor.run_many, jobs
                    )
            except Exception as exc:
                for key in batch:
                    fut = self._inflight.pop(key)
                    if not fut.done():
                        fut.set_exception(exc)
                continue
            for key, outcome in zip(batch, outcomes):
                fut = self._inflight.pop(key)
                if not fut.done():
                    fut.set_result(outcome)

    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Refuse new work, finish the batches already queued."""
        self._closed = True
        if self._drain_task is not None and not self._drain_task.done():
            await self._drain_task
