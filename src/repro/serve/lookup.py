"""The precomputed lookup tier: answer without simulating.

Most service traffic in practice is *lookups*: points a theorem decides
in closed form, or points somebody already paid a simulation for.  This
tier answers both classes in microseconds on the event loop, so only
genuinely novel undecided jobs fall through to the coalescer's drain
queue:

1. **Analytic** — :func:`repro.runner.analytic.solve`: Theorem 1/2/3
   closed forms, bit-identical to simulation, no I/O at all.
2. **Store** — an in-memory table preloaded from the shared
   :class:`~repro.runner.store.ResultStore` at startup (the table the
   ``repro-mem serve --precompute`` pass builds offline).  Keys are
   canonical under the Appendix isomorphism, so a probe canonicalizes
   once and hits regardless of the client's bank numbering.
3. **Memo** — the warm executor's in-process cache via
   :meth:`~repro.runner.executor.SweepExecutor.peek`: results earlier
   requests simulated this process.

A probe never blocks on a simulation; a miss is a miss.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..obs import metrics as _metrics
from ..obs import names as _names
from ..runner.analytic import solve
from ..runner.executor import SweepExecutor
from ..runner.job import SimJob, SimOutcome
from ..runner.store import ResultStore

__all__ = ["LookupTier"]


class LookupTier:
    """Tiered read-only probe: analytic form, preloaded store, memo."""

    def __init__(
        self,
        *,
        store: ResultStore | None = None,
        executor: SweepExecutor | None = None,
    ) -> None:
        self._store = store
        self._executor = executor
        self._table: dict[str, dict] = {}
        if store is not None:
            self._table.update(store.items())

    def __len__(self) -> int:
        """Entries in the preloaded in-memory table."""
        return len(self._table)

    def _count(self, tier: str) -> None:
        reg = _metrics.active_metrics()
        if reg is not None:
            reg.counter(_names.SERVE_LOOKUP, tier=tier).inc()

    def probe(self, job: SimJob) -> tuple[SimOutcome, str] | None:
        """``(outcome, tier)`` when a cheap tier answers, else ``None``.

        ``tier`` is ``"analytic"``, ``"store"`` or ``"memo"``; a miss
        (returned as ``None``) counts under the ``"miss"`` label and
        means the caller must queue the job for simulation.
        """
        out = solve(job)
        if out is not None:
            self._count("analytic")
            return out, "analytic"
        if self._table:
            payload = self._table.get(job.cache_key())
            if payload is not None:
                self._count("store")
                return SimOutcome.from_payload(job, payload), "store"
        if self._executor is not None:
            peeked = self._executor.peek(job)
            if peeked is not None:
                self._count("memo")
                return peeked, "memo"
        self._count("miss")
        return None

    # ------------------------------------------------------------------
    # Offline precompute (the ``repro-mem serve --precompute`` pass)
    # ------------------------------------------------------------------
    def precompute(
        self,
        jobs: Iterable[SimJob],
        *,
        executor: SweepExecutor | None = None,
    ) -> int:
        """Run ``jobs`` through the executor and absorb the results.

        The executor publishes to the shared store as it goes (when one
        is attached), so the table this builds survives a restart;
        trace jobs and failures are skipped.  Returns the number of
        table entries added or refreshed.
        """
        runner = executor if executor is not None else self._executor
        if runner is None:
            raise ValueError("precompute needs an executor")
        batch: Sequence[SimJob] = [j for j in jobs if not j.trace]
        added = 0
        for job, outcome in zip(batch, runner.run_many(batch)):
            if outcome.failed:
                continue
            self._table[job.cache_key()] = outcome.to_payload()
            added += 1
        return added

    def absorb(self, job: SimJob, outcome: SimOutcome) -> None:
        """Fold one fresh simulated result into the in-memory table."""
        if not job.trace and not outcome.failed:
            self._table[job.cache_key()] = outcome.to_payload()
