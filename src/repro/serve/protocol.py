"""The service wire contract: endpoints, payload schemas, status codes.

Everything the server promises to the outside world is declared here as
data — the endpoint catalog (:data:`ENDPOINTS`), the request-to-job
validator (:func:`job_from_payload`), the exact response serialiser
(:func:`outcome_to_payload`) and the failure-mode table
(:data:`FAILURE_STATUS`).  ``docs/SERVICE.md`` documents exactly these
tables and ``tests/serve/test_docs.py`` diffs the two, so the document
cannot drift from the code.

Requests describe jobs in plain JSON mirroring the
:class:`~repro.runner.job.SimJob` fields; validation goes through
:meth:`SimJob.from_specs`, so the server accepts exactly what the
library accepts (starts/strides reduce modulo ``banks``, shape errors
surface as 400s).  Responses carry the steady-state bandwidth **twice**:
as the exact ``"num/den"`` :class:`~fractions.Fraction` string (the
number the paper's tables are made of) and as a convenience float.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.config import MemoryConfig
from ..runner.job import SimJob, SimOutcome

__all__ = [
    "ENDPOINTS",
    "EndpointSpec",
    "FAILURE_STATUS",
    "MAX_SWEEP_JOBS",
    "ProtocolError",
    "job_from_payload",
    "outcome_to_payload",
]

#: Hard cap on jobs per ``/v1/sweep`` request (larger sweeps should be
#: split client-side or run through the CLI, not one HTTP body).
MAX_SWEEP_JOBS = 4096


@dataclass(frozen=True)
class EndpointSpec:
    """One row of the endpoint catalog."""

    method: str
    path: str
    summary: str


#: The full endpoint catalog, in documentation order.
ENDPOINTS: tuple[EndpointSpec, ...] = (
    EndpointSpec(
        "POST", "/v1/beff",
        "Exact steady-state effective bandwidth of one job.",
    ),
    EndpointSpec(
        "POST", "/v1/sweep",
        "Batch of jobs; results in input order, dedup/coalescing "
        "applied across the batch.",
    ),
    EndpointSpec(
        "GET", "/v1/regime",
        "Closed-form regime classification of a stream pair "
        "(no simulation).",
    ),
    EndpointSpec(
        "GET", "/metrics",
        "Prometheus text exposition of the service registry.",
    ),
    EndpointSpec(
        "GET", "/healthz",
        "Liveness probe: status, in-flight count, lookup-table size.",
    ),
)

#: Failure mode -> HTTP status.  ``docs/SERVICE.md`` documents this
#: table verbatim; the app layer never invents a status outside it
#: (success codes aside).
FAILURE_STATUS: dict[str, int] = {
    "malformed": 400,        # unparseable body / invalid job fields
    "not-found": 404,        # unknown path
    "bad-method": 405,       # known path, wrong HTTP method
    "too-large": 413,        # sweep over MAX_SWEEP_JOBS, or oversized body
    "overloaded": 429,       # in-flight cap reached (Retry-After attached)
    "internal": 500,         # unexpected server-side error
    "failed-job": 502,       # executor returned a FailedOutcome
    "shutting-down": 503,    # graceful drain in progress
}


class ProtocolError(ValueError):
    """A request the protocol rejects, carrying its failure mode."""

    def __init__(self, mode: str, message: str) -> None:
        if mode not in FAILURE_STATUS:
            raise ValueError(f"unknown failure mode {mode!r}")
        super().__init__(message)
        self.mode = mode
        self.status = FAILURE_STATUS[mode]


_JOB_KEYS = frozenset(
    (
        "banks", "bank_cycle", "streams", "cpus", "sections",
        "section_mapping", "priority", "intra_priority", "arbiter",
        "regulate", "steady", "cycles", "max_cycles",
    )
)


def _require_int(payload: dict, key: str) -> int:
    value = payload.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError("malformed", f"{key!r} must be an integer")
    return value


def job_from_payload(payload: object) -> SimJob:
    """Validate one JSON job description into a frozen :class:`SimJob`.

    The schema mirrors the ``SimJob`` fields (``streams`` as a list of
    ``[start_bank, stride]`` pairs); unknown keys and trace requests are
    rejected rather than ignored, so a typoed field can never silently
    fall back to a default.  All shape errors raise
    :class:`ProtocolError` with mode ``"malformed"`` (HTTP 400).
    """
    if not isinstance(payload, dict):
        raise ProtocolError("malformed", "job must be a JSON object")
    unknown = set(payload) - _JOB_KEYS
    if unknown:
        raise ProtocolError(
            "malformed", f"unknown job field(s): {sorted(unknown)}"
        )
    banks = _require_int(payload, "banks")
    bank_cycle = _require_int(payload, "bank_cycle")
    raw_streams = payload.get("streams")
    if not isinstance(raw_streams, list) or not raw_streams:
        raise ProtocolError(
            "malformed", "'streams' must be a non-empty list"
        )
    streams: list[tuple[int, int]] = []
    for spec in raw_streams:
        if (
            not isinstance(spec, (list, tuple))
            or len(spec) != 2
            or not all(
                isinstance(x, int) and not isinstance(x, bool) for x in spec
            )
        ):
            raise ProtocolError(
                "malformed",
                "each stream must be an integer pair [start_bank, stride]",
            )
        streams.append((spec[0], spec[1]))
    cpus = payload.get("cpus")
    if cpus is not None and (
        not isinstance(cpus, list)
        or not all(
            isinstance(x, int) and not isinstance(x, bool) for x in cpus
        )
    ):
        raise ProtocolError("malformed", "'cpus' must be a list of integers")
    for key in ("sections", "cycles", "max_cycles"):
        value = payload.get(key)
        if value is not None and (
            not isinstance(value, int) or isinstance(value, bool)
        ):
            raise ProtocolError(
                "malformed", f"{key!r} must be an integer or null"
            )
    for key in ("section_mapping", "priority"):
        value = payload.get(key)
        if value is not None and not isinstance(value, str):
            raise ProtocolError("malformed", f"{key!r} must be a string")
    intra = payload.get("intra_priority")
    if intra is not None and not isinstance(intra, str):
        raise ProtocolError(
            "malformed", "'intra_priority' must be a string or null"
        )
    arbiter = payload.get("arbiter")
    if arbiter is not None and not isinstance(arbiter, str):
        raise ProtocolError(
            "malformed", "'arbiter' must be a string or null"
        )
    regulate = payload.get("regulate", [])
    if not isinstance(regulate, list) or not all(
        isinstance(x, str) for x in regulate
    ):
        raise ProtocolError(
            "malformed", "'regulate' must be a list of spec strings"
        )
    steady = payload.get("steady", True)
    if not isinstance(steady, bool):
        raise ProtocolError("malformed", "'steady' must be a boolean")
    try:
        config = MemoryConfig(
            banks=banks,
            bank_cycle=bank_cycle,
            sections=payload.get("sections"),
            section_mapping=payload.get("section_mapping", "cyclic"),
        )
        return SimJob.from_specs(
            config,
            streams,
            cpus=cpus,
            priority=payload.get("priority", "fixed"),
            intra_priority=intra,
            arbiter=arbiter,
            regulate=regulate,
            steady=steady,
            cycles=payload.get("cycles"),
            max_cycles=payload.get("max_cycles", 1_000_000),
        )
    except ValueError as exc:
        raise ProtocolError("malformed", str(exc)) from None


def outcome_to_payload(
    job: SimJob, outcome: SimOutcome, *, tier: str
) -> dict:
    """One response object: exact numbers plus provenance.

    ``tier`` records where the answer came from (``analytic`` / ``store``
    / ``memo`` / ``simulated``); ``bandwidth`` stays the exact
    ``"num/den"`` string and ``bandwidth_float`` is the convenience
    decimal (the serve layer is outside the EXACT001 exactness scope,
    analyses must keep using the Fraction).
    """
    body = outcome.to_payload()
    body["bandwidth_float"] = outcome.bandwidth_float
    body["key"] = job.cache_key()
    body["tier"] = tier
    return body
