"""Cycle-accurate interleaved-memory simulator.

Python re-implementation of the Fortran 77 simulator the authors ran next
to their Cray X-MP measurements (Section IV):

``port``
    Request side: one pending access per clock, stall-on-deny.
``priority``
    Fixed / cyclic / LRU conflict arbitration rules.
``engine``
    The per-clock arbitration loop (bank → section → simultaneous) and
    exact steady-state (cyclic state) detection.
``pairs``
    Two-stream front end with start-offset sweeps.
``stats``
    Conflict counters (stall cycles and episodes, per type).
``trace``
    Event log feeding the figure renderer in :mod:`repro.viz`.
"""

from .engine import Engine, SimulationResult, simulate_streams
from .multi import MultiResult, equal_stride_table, simulate_multi
from .statespace import (
    StartSpaceProfile,
    Trajectory,
    start_space_profile,
    trajectory,
)
from .pairs import (
    ObservedRegime,
    PairResult,
    bandwidth_by_offset,
    best_offset,
    offsets_achieving,
    simulate_pair,
    worst_offset,
)
from .port import Port
from .priority import (
    BlockCyclicPriority,
    CyclicPriority,
    FixedPriority,
    LRUPriority,
    PriorityRule,
    make_priority,
)
from .stats import ConflictKind, PortStats, SimStats
from .trace import CycleTrace, DenialEvent, GrantEvent, TraceRecorder

__all__ = [
    "BlockCyclicPriority",
    "ConflictKind",
    "CycleTrace",
    "CyclicPriority",
    "DenialEvent",
    "Engine",
    "FixedPriority",
    "GrantEvent",
    "LRUPriority",
    "MultiResult",
    "ObservedRegime",
    "PairResult",
    "Port",
    "PortStats",
    "PriorityRule",
    "SimStats",
    "SimulationResult",
    "StartSpaceProfile",
    "TraceRecorder",
    "Trajectory",
    "bandwidth_by_offset",
    "equal_stride_table",
    "best_offset",
    "make_priority",
    "offsets_achieving",
    "simulate_multi",
    "simulate_pair",
    "simulate_streams",
    "start_space_profile",
    "trajectory",
    "worst_offset",
]
