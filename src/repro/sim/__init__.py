"""Cycle-accurate interleaved-memory simulator.

Python re-implementation of the Fortran 77 simulator the authors ran next
to their Cray X-MP measurements (Section IV):

``port``
    Request side: one pending access per clock, stall-on-deny.
``priority``
    Fixed / cyclic / LRU conflict arbitration rules.
``arbiter``
    Pluggable :class:`ArbiterPolicy` layer (weighted-fair rotation,
    token-bucket bandwidth regulation) over the priority rules.
``engine``
    The per-clock arbitration loop (bank → section → simultaneous) and
    exact steady-state (cyclic state) detection.
``pairs``
    Two-stream front end with start-offset sweeps.
``stats``
    Conflict counters (stall cycles and episodes, per type).
``trace``
    Event log feeding the figure renderer in :mod:`repro.viz`.
"""

from .arbiter import (
    ArbiterPolicy,
    PriorityArbiter,
    RegulatedArbiter,
    RegulationSpec,
    TokenBucket,
    WeightedFairArbiter,
    canonical_arbiter,
    canonical_regulation,
    make_arbiter,
    parse_regulation,
)
from .engine import Engine, SimulationResult, simulate_streams
from .multi import MultiResult, equal_stride_table, simulate_multi
from .statespace import (
    StartSpaceProfile,
    Trajectory,
    start_space_profile,
    trajectory,
)
from .pairs import (
    ObservedRegime,
    PairResult,
    bandwidth_by_offset,
    best_offset,
    offsets_achieving,
    simulate_pair,
    worst_offset,
)
from .port import Port
from .priority import (
    BlockCyclicPriority,
    CyclicPriority,
    FixedPriority,
    LRUPriority,
    PriorityRule,
    make_priority,
)
from .stats import ConflictKind, PortStats, SimStats
from .trace import CycleTrace, DenialEvent, GrantEvent, TraceRecorder

__all__ = [
    "ArbiterPolicy",
    "BlockCyclicPriority",
    "ConflictKind",
    "CycleTrace",
    "CyclicPriority",
    "DenialEvent",
    "Engine",
    "FixedPriority",
    "GrantEvent",
    "LRUPriority",
    "MultiResult",
    "ObservedRegime",
    "PairResult",
    "Port",
    "PortStats",
    "PriorityArbiter",
    "PriorityRule",
    "RegulatedArbiter",
    "RegulationSpec",
    "SimStats",
    "SimulationResult",
    "StartSpaceProfile",
    "TokenBucket",
    "TraceRecorder",
    "Trajectory",
    "WeightedFairArbiter",
    "bandwidth_by_offset",
    "canonical_arbiter",
    "canonical_regulation",
    "equal_stride_table",
    "best_offset",
    "make_arbiter",
    "make_priority",
    "offsets_achieving",
    "parse_regulation",
    "simulate_multi",
    "simulate_pair",
    "simulate_streams",
    "start_space_profile",
    "trajectory",
    "worst_offset",
]
