"""Pluggable arbitration policies with per-stream/per-bank regulation.

The paper's Section II rule — "a priority rule determines which port
will be able to proceed" — is one point in a larger design space: the
arbiter both *ranks* contenders (who wins a section or simultaneous
bank conflict) and, on real machines with QoS isolation, may *veto*
grants outright (a stream or bank that has exhausted its bandwidth
budget waits even when its bank is free).  This module factors that
space into a small protocol:

* :class:`ArbiterPolicy` — the protocol: rank section contenders, rank
  simultaneous-bank contenders, admit-or-veto a request, and the same
  ``tick``/``granted``/``snapshot``/``restore`` state-machine discipline
  as :class:`~repro.sim.priority.PriorityRule`, so policies remain
  legal members of the steady-cycle detector's state.
* :class:`PriorityArbiter` — adapter wrapping the four existing
  priority rules; delegates bit-identically to the pre-policy engine
  wiring (cross-CPU rule ranks banks and receives grant notifications,
  the intra rule ranks section paths, both tick once per clock).
* :class:`WeightedFairArbiter` — smooth weighted round-robin ranking:
  the favoured port walks a precomputed schedule in which port ``p``
  appears ``weight[p]`` times per ``sum(weights)`` clocks.  The only
  state is the schedule slot, so the state space stays finite.
* :class:`TokenBucket` / :class:`RegulatedArbiter` — integer token
  buckets throttling individual streams and banks: a grant costs
  ``window`` tokens, every clock refills ``rate``, a request is vetoed
  while the bucket holds fewer than ``window`` tokens.  Long-run grant
  rate is therefore at most ``rate/window`` grants per clock, held
  exactly (all-integer arithmetic, bounded level) — Fraction-exact in
  the sense of EXACT001: no floats anywhere.

Regulators with ``rate >= window`` are *vacuous*: the bucket refills to
its cap every clock and can never veto (see
:func:`regulation_is_vacuous`); the analytic tier uses this to keep its
closed forms honest.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from .priority import PriorityRule, make_priority

__all__ = [
    "ArbiterPolicy",
    "PriorityArbiter",
    "WeightedFairArbiter",
    "TokenBucket",
    "RegulatedArbiter",
    "RegulationSpec",
    "make_arbiter",
    "canonical_arbiter",
    "canonical_regulation",
    "parse_regulation",
    "regulation_is_vacuous",
    "regulation_renumbering_safe",
]


# ----------------------------------------------------------------------
# Regulation specs: ``stream=R/W``, ``stream:IDX=R/W``, ``bank=R/W``,
# ``bank:IDX=R/W``
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegulationSpec:
    """One parsed regulator capping a stream or bank's grant rate.

    The budget is at most ``rate/window`` grants per clock.

    ``index is None`` applies one independent bucket to *every* stream
    (or bank); an explicit index throttles just that one.
    """

    scope: str  # "stream" | "bank"
    index: int | None
    rate: int
    window: int

    def render(self) -> str:
        target = (
            self.scope if self.index is None else f"{self.scope}:{self.index}"
        )
        return f"{target}={self.rate}/{self.window}"

    @property
    def vacuous(self) -> bool:
        """Whether this bucket can never veto (refill covers the cost)."""
        return self.rate >= self.window


def _parse_one_regulation(text: str) -> RegulationSpec:
    def bad(reason: str) -> ValueError:
        return ValueError(
            f"invalid regulation spec {text!r}: {reason} "
            "(expected 'stream[:IDX]=RATE/WINDOW' or 'bank[:IDX]=RATE/WINDOW')"
        )

    if not isinstance(text, str) or "=" not in text:
        raise bad("missing '='")
    target, _, budget = text.partition("=")
    scope, _, raw_index = target.partition(":")
    if scope not in ("stream", "bank"):
        raise bad(f"unknown target {scope!r}")
    index: int | None = None
    if raw_index:
        try:
            index = int(raw_index)
        except ValueError:
            raise bad(f"index {raw_index!r} is not an integer") from None
        if index < 0:
            raise bad("index must be non-negative")
    if "/" not in budget:
        raise bad("missing '/' in the RATE/WINDOW budget")
    raw_rate, _, raw_window = budget.partition("/")
    try:
        rate = int(raw_rate)
        window = int(raw_window)
    except ValueError:
        raise bad("RATE and WINDOW must be integers") from None
    if rate <= 0 or window <= 0:
        raise bad("RATE and WINDOW must be positive")
    return RegulationSpec(scope=scope, index=index, rate=rate, window=window)


def parse_regulation(specs: Sequence[str]) -> tuple[RegulationSpec, ...]:
    """Parse and cross-validate a set of regulation specs.

    Per scope, either one uniform spec (no index) or any number of
    distinct per-index specs is allowed; mixing the two, or repeating a
    target, is rejected rather than silently merged.
    """
    parsed = tuple(_parse_one_regulation(s) for s in specs)
    seen: set[tuple[str, int | None]] = set()
    uniform: set[str] = set()
    indexed: set[str] = set()
    for spec in parsed:
        key = (spec.scope, spec.index)
        if key in seen:
            raise ValueError(
                f"invalid regulation: duplicate target "
                f"{spec.render().partition('=')[0]!r}"
            )
        seen.add(key)
        (uniform if spec.index is None else indexed).add(spec.scope)
    both = uniform & indexed
    if both:
        raise ValueError(
            f"invalid regulation: uniform and per-index "
            f"{sorted(both)[0]!r} regulators cannot be combined"
        )
    return parsed


def validate_regulation(
    specs: Sequence[str], n_ports: int, banks: int
) -> tuple[RegulationSpec, ...]:
    """:func:`parse_regulation` plus index range checks."""
    parsed = parse_regulation(specs)
    for spec in parsed:
        bound = n_ports if spec.scope == "stream" else banks
        if spec.index is not None and spec.index >= bound:
            raise ValueError(
                f"invalid regulation spec {spec.render()!r}: "
                f"{spec.scope} index {spec.index} out of range "
                f"(have {bound})"
            )
    return parsed


def canonical_regulation(specs: Sequence[str]) -> tuple[str, ...]:
    """Canonical rendering: parsed, sorted by target, re-rendered.

    Buckets are independent, so spec order carries no meaning; sorting
    makes ``SimJob`` identity (and with it cache keys and coalescing)
    insensitive to it.
    """
    parsed = parse_regulation(specs)
    ordered = sorted(
        parsed, key=lambda s: (s.scope, s.index is not None, s.index or 0)
    )
    return tuple(s.render() for s in ordered)


def regulation_is_vacuous(specs: Sequence[str]) -> bool:
    """Whether every regulator refills at least its grant cost — i.e.
    no bucket can ever veto and the regulated run is bit-identical to
    the unregulated one."""
    return all(s.vacuous for s in parse_regulation(specs))


def regulation_renumbering_safe(specs: Sequence[str]) -> bool:
    """Whether bank renumbering (the Appendix isomorphism) preserves
    the regulation.  Uniform ``bank=`` buckets are permutation-invariant
    (every bank gets an identical bucket); ``bank:IDX=`` pins a specific
    bank and is not."""
    return all(
        s.scope != "bank" or s.index is None for s in parse_regulation(specs)
    )


# ----------------------------------------------------------------------
# The policy protocol
# ----------------------------------------------------------------------
class ArbiterPolicy(abc.ABC):
    """Strategy resolving one clock's arbitration, with optional veto.

    The engine consults the policy in its three-phase order: after the
    bank-busy filter, :meth:`admit` may veto a request (regulators);
    :meth:`rank_section` picks the winner of a per-CPU path conflict;
    :meth:`rank_bank` the winner of a cross-CPU simultaneous bank
    conflict.  ``granted``/``tick``/``snapshot``/``restore`` follow the
    :class:`~repro.sim.priority.PriorityRule` state-machine discipline —
    policy state is part of the simulated Markov chain, so it must be
    bounded and exactly restorable for steady-cycle detection.
    """

    #: Whether :meth:`admit` can ever veto; ``False`` lets hot paths
    #: skip the admission sweep entirely.
    regulated: bool = False

    @abc.abstractmethod
    def rank_section(self, contenders: Sequence[int], cycle: int) -> int:
        """Winner of a per-CPU section-path conflict (ports ascending)."""

    @abc.abstractmethod
    def rank_bank(
        self, contenders: Sequence[int], bank: int | None, cycle: int
    ) -> int:
        """Winner of a simultaneous bank conflict (ports ascending)."""

    def favoured(self, n_ports: int, cycle: int) -> int:
        """The port ranked first this clock (trace headers)."""
        return self.rank_bank(list(range(n_ports)), None, cycle)

    def admit(self, port: int, bank: int, cycle: int) -> bool:
        """Whether ``port``'s request for ``bank`` may proceed."""
        return True

    def granted(self, port: int, bank: int, cycle: int) -> None:
        """Grant notification hook."""

    def tick(self, cycle: int) -> None:
        """Clock-edge hook."""

    def snapshot(self) -> tuple:
        """Hashable internal state for cycle detection."""
        return ()

    @abc.abstractmethod
    def restore(self, snap: tuple) -> None:
        """Inverse of :meth:`snapshot` (validate; raise on mismatch)."""

    @property
    @abc.abstractmethod
    def spec(self) -> str:
        """Canonical config-string identity of this policy."""


class PriorityArbiter(ArbiterPolicy):
    """The classic wiring: two :class:`PriorityRule`s behind the policy.

    Delegation mirrors the pre-policy engine exactly — the cross-CPU
    rule ranks simultaneous bank conflicts and receives grant
    notifications, the intra rule ranks section paths, and both tick
    once per clock (once total when they are the same object) — so an
    unregulated :class:`PriorityArbiter` is bit-identical to the old
    grant loop by construction.
    """

    def __init__(
        self, priority: PriorityRule, intra: PriorityRule | None = None
    ) -> None:
        self.priority = priority
        self.intra = priority if intra is None else intra

    def rank_section(self, contenders: Sequence[int], cycle: int) -> int:
        return self.intra.choose(contenders, cycle)

    def rank_bank(
        self, contenders: Sequence[int], bank: int | None, cycle: int
    ) -> int:
        return self.priority.choose(contenders, cycle)

    def granted(self, port: int, bank: int, cycle: int) -> None:
        self.priority.granted(port, cycle)

    def tick(self, cycle: int) -> None:
        self.priority.tick(cycle)
        if self.intra is not self.priority:
            self.intra.tick(cycle)

    def snapshot(self) -> tuple:
        return (self.priority.snapshot(), self.intra.snapshot())

    def restore(self, snap: tuple) -> None:
        if not isinstance(snap, tuple) or len(snap) != 2:
            raise ValueError(
                f"priority-arbiter snapshot must be a "
                f"(priority, intra) pair, got {snap!r}"
            )
        self.priority.restore(snap[0])
        if self.intra is not self.priority:
            self.intra.restore(snap[1])

    @property
    def spec(self) -> str:
        if self.intra is self.priority:
            return f"priority({self.priority.name})"
        return f"priority({self.priority.name}/{self.intra.name})"


def _wrr_schedule(weights: Sequence[int]) -> list[int]:
    """Smooth weighted round-robin order over one full period.

    Deterministic: each slot favours the port with the largest
    accumulated credit (ties to the lowest index), then debits it one
    period's worth.  Port ``p`` appears exactly ``weights[p]`` times.
    """
    n = len(weights)
    total = sum(weights)
    credit = [0] * n
    schedule: list[int] = []
    for _ in range(total):
        for i in range(n):
            credit[i] += weights[i]
        best = 0
        for i in range(1, n):
            if credit[i] > credit[best]:
                best = i
        credit[best] -= total
        schedule.append(best)
    return schedule


class WeightedFairArbiter(ArbiterPolicy):
    """Weighted-fair ranking over a smooth round-robin schedule.

    The favoured port walks a precomputed smooth-WRR schedule;
    contenders are compared by cyclic distance from it.

    With equal weights this is :class:`CyclicPriority` by another name;
    unequal weights favour heavy ports proportionally *when conflicts
    happen* without ever starving the light ones.  The only state is
    the schedule slot — bounded, so Brent detection still applies —
    but unlike the priority rules the slot free-runs with the clock,
    which is exactly why the analytic tier refuses these jobs (the
    same reason it refuses ``block-cyclic``).
    """

    def __init__(self, weights: Sequence[int]) -> None:
        if not weights:
            raise ValueError("need at least one weight")
        for w in weights:
            if not isinstance(w, int) or isinstance(w, bool) or w <= 0:
                raise ValueError(
                    f"weights must be positive integers, got {list(weights)!r}"
                )
        self.weights = tuple(int(w) for w in weights)
        self.n_ports = len(self.weights)
        self._schedule = _wrr_schedule(self.weights)
        self._slot = 0

    def _rank(self, contenders: Sequence[int]) -> int:
        fav = self._schedule[self._slot]
        n = self.n_ports
        return min(contenders, key=lambda p: (p - fav) % n)

    def rank_section(self, contenders: Sequence[int], cycle: int) -> int:
        return self._rank(contenders)

    def rank_bank(
        self, contenders: Sequence[int], bank: int | None, cycle: int
    ) -> int:
        return self._rank(contenders)

    def tick(self, cycle: int) -> None:
        self._slot = (self._slot + 1) % len(self._schedule)

    def snapshot(self) -> tuple:
        return (self._slot,)

    def restore(self, snap: tuple) -> None:
        if (
            not isinstance(snap, tuple)
            or len(snap) != 1
            or not isinstance(snap[0], int)
            or isinstance(snap[0], bool)
        ):
            raise ValueError(
                f"wfq snapshot must be a 1-tuple of int, got {snap!r}"
            )
        if not 0 <= snap[0] < len(self._schedule):
            raise ValueError(
                f"wfq snapshot slot {snap[0]} out of range for a "
                f"{len(self._schedule)}-slot schedule"
            )
        self._slot = snap[0]

    @property
    def spec(self) -> str:
        return "wfq:" + ",".join(str(w) for w in self.weights)


# ----------------------------------------------------------------------
# Regulation: integer token buckets
# ----------------------------------------------------------------------
class TokenBucket:
    """All-integer token bucket metering grants against a budget.

    A grant costs ``window`` tokens, every clock edge refills ``rate``,
    capped at ``max(rate, window)``.

    Admission requires a full grant's worth of tokens, so the level
    never goes negative and the long-run grant rate is exactly bounded
    by ``rate/window`` grants per clock.  The level is the bucket's
    entire state: bounded, integer, snapshot-safe.
    """

    __slots__ = ("rate", "window", "cap", "level")

    def __init__(self, rate: int, window: int) -> None:
        self.rate = rate
        self.window = window
        self.cap = max(rate, window)
        self.level = self.cap  # start full: first request always admitted

    def admit(self) -> bool:
        return self.level >= self.window

    def spend(self) -> None:
        self.level -= self.window

    def tick(self) -> None:
        level = self.level + self.rate
        self.level = self.cap if level > self.cap else level


class RegulatedArbiter(ArbiterPolicy):
    """Wrap any base policy with per-stream and/or per-bank buckets.

    A request must pass *both* its stream's and its bank's bucket (when
    present) to be admitted; a grant spends from both.  Buckets from a
    uniform spec (``stream=``/``bank=``) are independent instances with
    identical parameters, so bank renumbering maps the regulated system
    onto itself (see :func:`regulation_renumbering_safe`).
    """

    regulated = True

    def __init__(
        self,
        base: ArbiterPolicy,
        specs: Sequence[RegulationSpec],
        n_ports: int,
        banks: int,
    ) -> None:
        self.base = base
        self.specs = tuple(specs)
        self._stream: list[TokenBucket | None] = [None] * n_ports
        self._bank: list[TokenBucket | None] = [None] * banks
        for spec in self.specs:
            table = self._stream if spec.scope == "stream" else self._bank
            targets = (
                range(len(table)) if spec.index is None else (spec.index,)
            )
            for i in targets:
                if i >= len(table):
                    raise ValueError(
                        f"invalid regulation spec {spec.render()!r}: "
                        f"{spec.scope} index {i} out of range "
                        f"(have {len(table)})"
                    )
                table[i] = TokenBucket(spec.rate, spec.window)
        self._buckets: list[TokenBucket] = [
            b for b in (*self._stream, *self._bank) if b is not None
        ]

    def rank_section(self, contenders: Sequence[int], cycle: int) -> int:
        return self.base.rank_section(contenders, cycle)

    def rank_bank(
        self, contenders: Sequence[int], bank: int | None, cycle: int
    ) -> int:
        return self.base.rank_bank(contenders, bank, cycle)

    def favoured(self, n_ports: int, cycle: int) -> int:
        return self.base.favoured(n_ports, cycle)

    def admit(self, port: int, bank: int, cycle: int) -> bool:
        sb = self._stream[port]
        if sb is not None and not sb.admit():
            return False
        bb = self._bank[bank]
        return bb is None or bb.admit()

    def granted(self, port: int, bank: int, cycle: int) -> None:
        sb = self._stream[port]
        if sb is not None:
            sb.spend()
        bb = self._bank[bank]
        if bb is not None:
            bb.spend()
        self.base.granted(port, bank, cycle)

    def tick(self, cycle: int) -> None:
        for bucket in self._buckets:
            bucket.tick()
        self.base.tick(cycle)

    def snapshot(self) -> tuple:
        return (
            self.base.snapshot(),
            tuple(b.level for b in self._buckets),
        )

    def restore(self, snap: tuple) -> None:
        if not isinstance(snap, tuple) or len(snap) != 2:
            raise ValueError(
                f"regulated-arbiter snapshot must be a "
                f"(base, levels) pair, got {snap!r}"
            )
        base_snap, levels = snap
        if not isinstance(levels, tuple) or len(levels) != len(self._buckets):
            raise ValueError(
                f"regulated-arbiter snapshot needs {len(self._buckets)} "
                f"bucket levels, got {levels!r}"
            )
        for bucket, level in zip(self._buckets, levels):
            if (
                not isinstance(level, int)
                or isinstance(level, bool)
                or not 0 <= level <= bucket.cap
            ):
                raise ValueError(
                    f"regulated-arbiter snapshot level {level!r} out of "
                    f"range 0..{bucket.cap}"
                )
        self.base.restore(base_snap)
        for bucket, level in zip(self._buckets, levels):
            bucket.level = level

    @property
    def spec(self) -> str:
        budget = ",".join(s.render() for s in self.specs)
        return f"{self.base.spec}+regulate({budget})"


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def canonical_arbiter(spec: str | None, n_ports: int) -> str | None:
    """Validate and normalise an arbiter spec string.

    Returns ``None`` for the default priority wiring, a normalised
    ``wfq:W0,...`` string otherwise.  Raises ``ValueError`` on
    malformed or mis-sized specs."""
    if spec is None or spec == "priority":
        return None
    if spec.startswith("wfq:"):
        raw = spec[len("wfq:"):]
        try:
            weights = [int(w) for w in raw.split(",")]
        except ValueError:
            raise ValueError(
                f"invalid arbiter spec {spec!r}: weights must be "
                f"comma-separated integers"
            ) from None
        if len(weights) != n_ports:
            raise ValueError(
                f"invalid arbiter spec {spec!r}: need one weight per "
                f"stream (have {n_ports} streams, got {len(weights)} "
                f"weights)"
            )
        if any(w <= 0 for w in weights):
            raise ValueError(
                f"invalid arbiter spec {spec!r}: weights must be positive"
            )
        return "wfq:" + ",".join(str(w) for w in weights)
    raise ValueError(
        f"invalid arbiter spec {spec!r}: expected 'priority' or "
        f"'wfq:W0,W1,...'"
    )


def make_arbiter(
    n_ports: int,
    banks: int,
    *,
    priority: str = "fixed",
    intra_priority: str | None = None,
    arbiter: str | None = None,
    regulate: Sequence[str] = (),
) -> ArbiterPolicy:
    """Build the policy for one job's spec strings."""
    spec = canonical_arbiter(arbiter, n_ports)
    base: ArbiterPolicy
    if spec is None:
        prio = make_priority(priority, n_ports)
        intra = (
            prio if intra_priority is None else make_priority(
                intra_priority, n_ports
            )
        )
        base = PriorityArbiter(prio, intra)
    else:
        base = WeightedFairArbiter(
            [int(w) for w in spec[len("wfq:"):].split(",")]
        )
    if not regulate:
        return base
    parsed = validate_regulation(regulate, n_ports, banks)
    return RegulatedArbiter(base, parsed, n_ports, banks)
