"""Cycle-accurate simulation engine with dynamic conflict resolution.

The engine re-implements, in Python, the Fortran 77 simulator the authors
used alongside their Cray X-MP measurements.  Semantics (Section II):

* every non-idle port presents one request per clock period;
* **bank conflict** — the target bank is still active: the request (and
  with it the whole stream) is delayed one clock;
* **section conflict** — several ports of *one* CPU target inactive banks
  reachable only through the same access path: the priority rule grants
  one, the rest are delayed;
* **simultaneous bank conflict** — several ports (necessarily of
  different CPUs, each with its own path) target the same inactive bank:
  the priority rule grants one, the rest are delayed;
* a granted bank stays active for ``n_c`` clocks; a granted path is
  occupied for one clock;
* next clock "all active ports compete again" — denied requests are
  re-presented, with their cause re-evaluated.

Arbitration order follows the definitions: bank-activity masks first,
then per-CPU path arbitration, then cross-CPU same-bank arbitration.
One consequence of the two-stage Fig. 1 topology is deliberate: a port
that loses its CPU's *path* arbitration is NOT reconsidered if the path
winner subsequently loses the cross-CPU bank arbitration — the path was
already allocated inside the CPU's interconnection network by the time
memory rejected the request.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.stream import AccessStream
from ..memory.bank import BankArray
from ..memory.config import MemoryConfig
from ..memory.sections import SectionMap, section_map_for
from ..obs import metrics as _metrics
from ..obs import names as _names
from ..obs import trace as _obs_trace
from .arbiter import (
    ArbiterPolicy,
    PriorityArbiter,
    RegulatedArbiter,
    WeightedFairArbiter,
    canonical_arbiter,
    validate_regulation,
)
from .port import Port
from .priority import PriorityRule, make_priority
from .stats import ConflictKind, SimStats
from .trace import TraceRecorder

__all__ = ["Engine", "SimulationResult", "simulate_streams"]


@dataclass
class SimulationResult:
    """Outcome of an engine run.

    ``steady`` fields are populated only by
    :meth:`Engine.run_to_steady_state` (infinite streams).
    """

    config: MemoryConfig
    stats: SimStats
    trace: TraceRecorder | None
    cycles: int
    #: Exact steady-state bandwidth (grants per clock over one period).
    steady_bandwidth: Fraction | None = None
    #: Steady-state period in clocks.
    steady_period: int | None = None
    #: Grants per port over one steady period.
    steady_grants: tuple[int, ...] | None = None
    #: Clock at which the periodic regime was first entered.
    steady_start: int | None = None

    @property
    def measured_bandwidth(self) -> Fraction:
        """Whole-run average ``b_eff`` (includes startup transient)."""
        return self.stats.effective_bandwidth()

    def bandwidth(self) -> Fraction:
        """Best available ``b_eff``: exact steady value when detected."""
        return (
            self.steady_bandwidth
            if self.steady_bandwidth is not None
            else self.measured_bandwidth
        )


class Engine:
    """One memory system plus its ports, steppable clock by clock."""

    def __init__(
        self,
        config: MemoryConfig,
        ports: list[Port],
        *,
        priority: PriorityRule | str = "fixed",
        intra_priority: PriorityRule | str | None = None,
        arbiter: ArbiterPolicy | str | None = None,
        regulate: tuple[str, ...] = (),
        trace: TraceRecorder | bool | None = None,
    ) -> None:
        """``priority`` arbitrates cross-CPU (simultaneous bank)
        conflicts; ``intra_priority`` the per-CPU path (section)
        conflicts.  By default one rule serves both, matching the
        paper's presentation; real machines may differ (the X-MP's
        port priority within a CPU was fixed by port role while the
        inter-CPU rule rotated).

        ``arbiter`` replaces the two-rule wiring with an
        :class:`~repro.sim.arbiter.ArbiterPolicy` (instance or spec
        string such as ``"wfq:2,1"``); ``regulate`` wraps whichever
        policy results with token-bucket regulators
        (``"stream=1/3"``-style specs).  The defaults reproduce the
        pre-policy engine bit-identically.
        """
        if not ports:
            raise ValueError("need at least one port")
        indices = [p.index for p in ports]
        if indices != list(range(len(ports))):
            raise ValueError(
                f"port indices must be 0..n-1 in order, got {indices}"
            )
        self.config = config
        self.ports = ports
        self.banks = BankArray(config.banks, config.bank_cycle)
        self.section_map: SectionMap = section_map_for(config)
        if isinstance(priority, str):
            priority = make_priority(priority, len(ports))
        self.priority = priority
        if intra_priority is None:
            self.intra_priority: PriorityRule = priority
        elif isinstance(intra_priority, str):
            self.intra_priority = make_priority(intra_priority, len(ports))
        else:
            self.intra_priority = intra_priority
        if isinstance(arbiter, ArbiterPolicy):
            if regulate:
                raise ValueError(
                    "pass regulate= as part of the policy instance, "
                    "not alongside one"
                )
            self.arbiter: ArbiterPolicy = arbiter
        else:
            spec = canonical_arbiter(arbiter, len(ports))
            base: ArbiterPolicy
            if spec is None:
                base = PriorityArbiter(self.priority, self.intra_priority)
            else:
                base = WeightedFairArbiter(
                    [int(w) for w in spec[len("wfq:"):].split(",")]
                )
            if regulate:
                base = RegulatedArbiter(
                    base,
                    validate_regulation(
                        regulate, len(ports), config.banks
                    ),
                    len(ports),
                    config.banks,
                )
            self.arbiter = base
        if trace is True:
            trace = TraceRecorder()
        elif trace is False:
            trace = None
        self.trace = trace
        self.stats = SimStats.for_ports(len(ports))
        self.cycle = 0
        #: bank -> port index currently holding it (for blame in traces)
        self._bank_owner: dict[int, int] = {}

    # ------------------------------------------------------------------
    # One clock period
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Simulate one clock period."""
        arbiter = self.arbiter
        if self.trace is not None:
            favoured = arbiter.favoured(len(self.ports), self.cycle)
            self.trace.begin_cycle(
                self.cycle, priority_label=self.ports[favoured].label
            )

        m = self.config.banks
        pending = [
            (p.index, p.current_bank(m)) for p in self.ports if not p.idle
        ]

        granted: list[tuple[int, int]] = []
        denied: list[tuple[int, int, ConflictKind, int | None]] = []

        # Phase 1 — bank conflicts: active banks reject everyone.
        survivors: list[tuple[int, int]] = []
        for port, bank in pending:
            if self.banks.is_free(bank):
                survivors.append((port, bank))
            else:
                denied.append(
                    (port, bank, ConflictKind.BANK, self._bank_owner.get(bank))
                )

        # Phase 1b — regulator vetoes: the bank is free, but the stream
        # or bank has exhausted its bandwidth budget this clock.  Vetoed
        # ports drop out of the contender set entirely (another port may
        # win the path/bank they would have contested).
        if arbiter.regulated:
            admitted: list[tuple[int, int]] = []
            for port, bank in survivors:
                if arbiter.admit(port, bank, self.cycle):
                    admitted.append((port, bank))
                else:
                    denied.append(
                        (port, bank, ConflictKind.REGULATED, None)
                    )
            survivors = admitted

        # Phase 2 — section conflicts: per (cpu, path) at most one grant.
        by_path: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for port, bank in survivors:
            cpu = self.ports[port].cpu
            path = self.section_map.section_of(bank)
            by_path.setdefault((cpu, path), []).append((port, bank))
        survivors = []
        for contenders in by_path.values():
            if len(contenders) == 1:
                survivors.append(contenders[0])
                continue
            winner = arbiter.rank_section(
                [port for port, _ in sorted(contenders)], self.cycle
            )
            for port, bank in contenders:
                if port == winner:
                    survivors.append((port, bank))
                else:
                    denied.append((port, bank, ConflictKind.SECTION, winner))

        # Phase 3 — simultaneous bank conflicts: per bank at most one
        # grant (cross-CPU by construction after phase 2).
        by_bank: dict[int, list[tuple[int, int]]] = {}
        for port, bank in survivors:
            by_bank.setdefault(bank, []).append((port, bank))
        for bank, contenders in by_bank.items():
            if len(contenders) == 1:
                granted.append(contenders[0])
                continue
            winner = arbiter.rank_bank(
                [port for port, _ in sorted(contenders)], bank, self.cycle
            )
            for port, b in contenders:
                if port == winner:
                    granted.append((port, b))
                else:
                    denied.append((port, b, ConflictKind.SIMULTANEOUS, winner))

        # Commit grants.
        for port, bank in granted:
            self.banks.grant(bank)
            self._bank_owner[bank] = port
            self.ports[port].advance()
            self.stats.ports[port].record_grant()
            arbiter.granted(port, bank, self.cycle)
            if self.trace is not None:
                self.trace.grant(port, bank, self.ports[port].label)

        # Commit denials.
        for port, bank, kind, blocker in denied:
            self.stats.ports[port].record_denial(kind)
            if self.trace is not None:
                self.trace.denial(
                    port, bank, kind, self.ports[port].label, blocker
                )

        # Clock edge.
        self.banks.tick()
        arbiter.tick(self.cycle)
        self.cycle += 1
        self.stats.cycles = self.cycle

    # ------------------------------------------------------------------
    # Bulk runs
    # ------------------------------------------------------------------
    def run(self, cycles: int) -> None:
        """Advance a fixed number of clock periods."""
        if cycles < 0:
            raise ValueError("cycle count must be non-negative")
        for _ in range(cycles):
            self.step()

    def run_until_idle(self, max_cycles: int = 1_000_000) -> int:
        """Run until every port drained its (finite) stream.

        Returns the cycle count at completion; raises if any port holds
        an infinite stream or the bound is exceeded.
        """
        for p in self.ports:
            if p.stream is not None and p.stream.is_infinite and not p.idle:
                raise ValueError(
                    f"port {p.index} has an infinite stream; "
                    "use run()/run_to_steady_state()"
                )
        while any(not p.idle for p in self.ports):
            if self.cycle >= max_cycles:
                raise RuntimeError(
                    f"streams not drained within {max_cycles} cycles"
                )
            self.step()
        return self.cycle

    # ------------------------------------------------------------------
    # Steady-state detection
    # ------------------------------------------------------------------
    def _state_key(self) -> tuple:
        """Hashable full state of the Markov chain.

        For infinite constant-stride streams the pending bank determines
        each port's entire future, so the key is: bank busy counters +
        pending bank per port + arbiter-policy state (priority rules,
        regulator bucket levels).  Finite states ⇒ some state must recur
        ⇒ the run is eventually periodic (the paper's "some cyclic state
        will be reached").
        """
        m = self.config.banks
        return (
            self.banks.snapshot(),
            tuple(p.snapshot_bank(m) for p in self.ports),
            self.arbiter.snapshot(),
        )

    def run_to_steady_state(
        self, max_cycles: int = 1_000_000
    ) -> tuple[Fraction, int, tuple[int, ...], int]:
        """Detect the cyclic state and return its exact bandwidth.

        Returns ``(b_eff, period, per-port grants in one period,
        first cycle of the periodic regime)``.  Requires all ports to
        carry infinite streams (the analytical model's assumption 1).

        Implementation: cheap :class:`~repro.runner.fastsim.FlatSim`
        walkers cloned from the current engine state find the transient
        length and minimal period via Brent's algorithm (O(1) memory —
        the historical ``seen`` dictionary retained every visited
        state), then the engine itself replays exactly those
        ``transient + period`` clocks so statistics and traces come out
        as they always have.
        """
        import copy

        from ..runner.fastsim import FlatSim, find_steady_cycle

        for p in self.ports:
            if p.stream is None or not p.stream.is_infinite:
                raise ValueError(
                    "steady-state detection requires infinite streams on "
                    f"all ports (port {p.index} violates this)"
                )
        m = self.config.banks
        sect = [self.section_map.section_of(j) for j in range(m)]
        cpus = [p.cpu for p in self.ports]
        positions = [p.current_bank(m) for p in self.ports]
        strides = [p.stream.stride for p in self.ports if p.stream]
        busy = self.banks.snapshot()
        start_cycle = self.cycle

        def make() -> FlatSim:
            # The arbiter is part of the simulated state: each walker
            # gets a fresh deep copy (jointly, preserving
            # intra-is-priority aliasing) and continues the engine's
            # clock numbering so timestamp-based rules (LRU) stay
            # consistent.  Plain priority wiring unwraps to the rule
            # pair so the walkers keep their specialised fast paths.
            policy = self.arbiter
            if type(policy) is PriorityArbiter:
                prio, intra = copy.deepcopy((policy.priority, policy.intra))
                return FlatSim(
                    m=m,
                    n_c=self.config.bank_cycle,
                    sect=sect,
                    cpus=cpus,
                    positions=positions,
                    strides=strides,
                    prio=prio,
                    intra=intra,
                    busy=busy,
                    start_cycle=start_cycle,
                )
            return FlatSim(
                m=m,
                n_c=self.config.bank_cycle,
                sect=sect,
                cpus=cpus,
                positions=positions,
                strides=strides,
                policy=copy.deepcopy(policy),
                busy=busy,
                start_cycle=start_cycle,
            )

        try:
            with _obs_trace.span(
                _names.SPAN_ENGINE_STEADY_DETECT, start_cycle=start_cycle
            ):
                mu, lam, _, _ = find_steady_cycle(
                    make, max_cycles - self.cycle
                )
        except RuntimeError:
            raise RuntimeError(
                f"no cyclic state within {max_cycles} cycles "
                "(state space exhausted the bound)"
            ) from None
        reg = _metrics.active_metrics()
        if reg is not None:
            reg.counter(_names.ENGINE_STEADY_DETECTIONS).inc()

        # Replay the detected span on the real engine: contiguous
        # statistics/trace, and ``self.cycle`` ends at transient+period
        # exactly as the dictionary detector left it.
        cycle0 = self.cycle + mu
        self.run(mu)
        grants0 = tuple(p.granted_total for p in self.ports)
        self.run(lam)
        per_port = tuple(
            g1 - g0
            for g0, g1 in zip(
                grants0, (p.granted_total for p in self.ports)
            )
        )
        return Fraction(sum(per_port), lam), lam, per_port, cycle0

    # ------------------------------------------------------------------
    def result(self) -> SimulationResult:
        """Package the current statistics (no steady-state fields)."""
        return SimulationResult(
            config=self.config,
            stats=self.stats,
            trace=self.trace,
            cycles=self.cycle,
        )


def simulate_streams(
    config: MemoryConfig,
    streams: list[AccessStream],
    *,
    cpus: list[int] | None = None,
    priority: PriorityRule | str = "fixed",
    intra_priority: PriorityRule | str | None = None,
    arbiter: ArbiterPolicy | str | None = None,
    regulate: tuple[str, ...] = (),
    cycles: int | None = None,
    steady: bool = False,
    trace: bool = False,
    max_cycles: int = 1_000_000,
) -> SimulationResult:
    """One-call front end: build an engine, run it, return the result.

    Parameters
    ----------
    streams:
        One stream per port, in port order.
    cpus:
        CPU id per port (default: all on CPU 0 — the same-CPU, section
        topology; pass ``[0, 1]`` for the two-CPU experiments).
    cycles:
        Fixed horizon to simulate; mutually exclusive with ``steady``.
    steady:
        Detect the cyclic state and report its exact bandwidth
        (infinite streams only).
    """
    if cpus is None:
        cpus = [0] * len(streams)
    if len(cpus) != len(streams):
        raise ValueError("cpus and streams must align")
    ports = [Port(index=i, cpu=c) for i, c in enumerate(cpus)]
    engine = Engine(
        config, ports, priority=priority,
        intra_priority=intra_priority, arbiter=arbiter,
        regulate=regulate, trace=trace,
    )
    for port, stream in zip(ports, streams):
        port.assign(stream.bound(config.banks))
    if steady and cycles is not None:
        raise ValueError("pass either cycles= or steady=, not both")
    if steady:
        bw, period, per_port, start = engine.run_to_steady_state(max_cycles)
        res = engine.result()
        res.steady_bandwidth = bw
        res.steady_period = period
        res.steady_grants = per_port
        res.steady_start = start
        return res
    if cycles is not None:
        engine.run(cycles)
    elif any(not s.is_infinite for s in streams):
        engine.run_until_idle(max_cycles=max_cycles)
    else:
        engine.run(1000)
    return engine.result()
