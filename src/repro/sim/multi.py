"""k-stream simulation front end (extension of :mod:`repro.sim.pairs`).

Drives the runner with an arbitrary number of infinite streams spread
over CPUs and reports the exact steady state — used to validate the
k-stream bounds of :mod:`repro.core.multistream` and to quantify the
Section IV remark about six active ports on sixteen banks.

Kept as a stable shim over :func:`repro.runner.run`; new code should
build :class:`repro.runner.SimJob` descriptions directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.stream import AccessStream
from ..memory.config import MemoryConfig
from ..runner import regime as _regime
from .engine import SimulationResult, simulate_streams
from .priority import PriorityRule

__all__ = ["MultiResult", "simulate_multi", "equal_stride_table"]


@dataclass(frozen=True)
class MultiResult:
    """Steady state of a k-stream workload."""

    bandwidth: Fraction
    period: int
    grants: tuple[int, ...]
    result: SimulationResult | None

    @property
    def full_rate_streams(self) -> int:
        """How many streams run at one grant per clock."""
        return _regime.full_rate_streams(self.period, self.grants)

    @property
    def conflict_free(self) -> bool:
        return _regime.is_conflict_free(self.period, self.grants)


def simulate_multi(
    config: MemoryConfig,
    specs: list[tuple[int, int]],
    *,
    cpus: list[int] | None = None,
    priority: PriorityRule | str = "fixed",
    max_cycles: int = 2_000_000,
) -> MultiResult:
    """Exact steady state for streams given as ``(start_bank, stride)``.

    ``cpus`` defaults to one CPU per stream (no section bottlenecks);
    group streams onto shared CPUs to engage path arbitration.
    """
    if not specs:
        raise ValueError("need at least one stream")
    if not isinstance(priority, str):
        # Priority rule instances cannot ride in a hashable job; keep
        # the legacy direct-engine path for them.
        streams = [
            AccessStream(start_bank=b, stride=d, label=str(i + 1))
            for i, (b, d) in enumerate(specs)
        ]
        if cpus is None:
            cpus = list(range(len(specs)))
        res = simulate_streams(
            config,
            streams,
            cpus=cpus,
            priority=priority,
            steady=True,
            max_cycles=max_cycles,
        )
        assert res.steady_bandwidth is not None
        assert res.steady_period is not None and res.steady_grants is not None
        return MultiResult(
            bandwidth=res.steady_bandwidth,
            period=res.steady_period,
            grants=res.steady_grants,
            result=res,
        )

    from ..runner import SimJob, run

    job = SimJob.from_specs(
        config, specs, cpus=cpus, priority=priority, max_cycles=max_cycles
    )
    out = run(job)
    assert out.period is not None
    return MultiResult(
        bandwidth=out.bandwidth,
        period=out.period,
        grants=out.grants,
        result=out.result,
    )


def equal_stride_table(
    config: MemoryConfig,
    d: int,
    max_streams: int,
    *,
    staggered: bool = True,
    priority: PriorityRule | str = "fixed",
) -> dict[int, Fraction]:
    """Steady bandwidth of ``p = 1..max_streams`` distance-``d`` streams.

    With ``staggered=True`` streams start at the conflict-free offsets
    ``i·n_c·d`` (where they exist; falling back to ``i·n_c·d mod m``
    anyway — the interesting question is what the memory does when the
    ideal spacing stops fitting).
    """
    m, n_c = config.banks, config.bank_cycle
    out: dict[int, Fraction] = {}
    for p in range(1, max_streams + 1):
        if staggered:
            specs = [((i * n_c * (d % m)) % m, d % m) for i in range(p)]
        else:
            specs = [(0, d % m)] * p
        out[p] = simulate_multi(config, specs, priority=priority).bandwidth
    return out
