"""Two-stream experiment helpers.

Thin adapters over the :mod:`repro.runner` layer for the configuration
every theorem talks about: two infinite streams, either on different
CPUs (``s = m`` effectively — paths are no bottleneck) or on one CPU of
a sectioned memory.  Adds the start-offset sweeps used to verify
existence claims ("there exist start banks such that ...") and to
observe start dependence (Figs. 4-6).

These signatures predate the runner and are kept as stable shims;
new code should build :class:`repro.runner.SimJob` descriptions and use
:func:`repro.runner.run` / :class:`repro.runner.SweepExecutor` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.stream import AccessStream
from ..memory.config import MemoryConfig
from ..runner.regime import ObservedRegime, observe_pair_regime
from .engine import SimulationResult, simulate_streams
from .priority import PriorityRule

__all__ = [
    "ObservedRegime",
    "PairResult",
    "simulate_pair",
    "bandwidth_by_offset",
    "best_offset",
    "worst_offset",
    "offsets_achieving",
]


@dataclass(frozen=True)
class PairResult:
    """Steady-state verdict for one concrete pair of streams."""

    bandwidth: Fraction
    period: int
    grants: tuple[int, int]
    regime: ObservedRegime
    result: SimulationResult | None

    @property
    def bandwidth_float(self) -> float:
        return float(self.bandwidth)


def _observe_regime(period: int, grants: tuple[int, ...]) -> ObservedRegime:
    """Deprecated alias — the shared helper lives in the runner layer."""
    return observe_pair_regime(period, grants)


def simulate_pair(
    config: MemoryConfig,
    d1: int,
    d2: int,
    *,
    b1: int = 0,
    b2: int = 0,
    same_cpu: bool = False,
    priority: PriorityRule | str = "fixed",
    max_cycles: int = 1_000_000,
    trace: bool = False,
) -> PairResult:
    """Exact steady state of two infinite streams.

    ``same_cpu=True`` puts both ports on CPU 0, activating section/path
    arbitration (the Theorem 8/9 topology); the default places them on
    different CPUs (Theorems 2-7: only bank and simultaneous conflicts).
    """
    cpus = [0, 0] if same_cpu else [0, 1]
    if not isinstance(priority, str):
        # Priority rule *instances* cannot ride in a hashable job; keep
        # the legacy direct-engine path for them.
        streams = [
            AccessStream(start_bank=b1, stride=d1, label="1"),
            AccessStream(start_bank=b2, stride=d2, label="2"),
        ]
        res = simulate_streams(
            config,
            streams,
            cpus=cpus,
            priority=priority,
            steady=True,
            trace=trace,
            max_cycles=max_cycles,
        )
        assert res.steady_bandwidth is not None
        assert res.steady_period is not None and res.steady_grants is not None
        grants = (res.steady_grants[0], res.steady_grants[1])
        return PairResult(
            bandwidth=res.steady_bandwidth,
            period=res.steady_period,
            grants=grants,
            regime=observe_pair_regime(res.steady_period, grants),
            result=res,
        )

    from ..runner import SimJob, run

    job = SimJob.from_specs(
        config,
        [(b1, d1), (b2, d2)],
        cpus=cpus,
        priority=priority,
        max_cycles=max_cycles,
        trace=trace,
    )
    out = run(job)
    assert out.period is not None
    grants = (out.grants[0], out.grants[1])
    return PairResult(
        bandwidth=out.bandwidth,
        period=out.period,
        grants=grants,
        regime=observe_pair_regime(out.period, grants),
        result=out.result,
    )


def bandwidth_by_offset(
    config: MemoryConfig,
    d1: int,
    d2: int,
    *,
    same_cpu: bool = False,
    priority: PriorityRule | str = "fixed",
    offsets: list[int] | None = None,
    executor: "object | None" = None,
) -> dict[int, Fraction]:
    """Steady bandwidth for every relative start offset ``b2 - b1``.

    The analytical model's assumption 2 ("all streams begin
    simultaneously") is harmless because "a relative position in time can
    be transformed to a relative position in space" — this sweep explores
    exactly that space.

    The sweep runs through a :class:`repro.runner.SweepExecutor`
    (``executor`` or the process-wide default), so isomorphic offsets are
    deduplicated and repeated sweeps are memoized.
    """
    if offsets is None:
        offsets = list(range(config.banks))
    if not isinstance(priority, str):
        out: dict[int, Fraction] = {}
        for off in offsets:
            pr = simulate_pair(
                config, d1, d2, b1=0, b2=off % config.banks,
                same_cpu=same_cpu, priority=priority,
            )
            out[off] = pr.bandwidth
        return out

    from ..runner import SweepExecutor, default_executor, jobs_for_offsets

    ex = executor if executor is not None else default_executor()
    assert isinstance(ex, SweepExecutor)
    jobs = jobs_for_offsets(
        config,
        d1,
        d2,
        [off % config.banks for off in offsets],
        same_cpu=same_cpu,
        priority=priority,
    )
    outcomes = ex.run_many(jobs)
    return {off: o.bandwidth for off, o in zip(offsets, outcomes)}


def best_offset(
    config: MemoryConfig, d1: int, d2: int, **kwargs
) -> tuple[int, Fraction]:
    """Offset maximising steady bandwidth (ties: smallest offset)."""
    table = bandwidth_by_offset(config, d1, d2, **kwargs)
    off = max(sorted(table), key=lambda o: table[o])
    return off, table[off]


def worst_offset(
    config: MemoryConfig, d1: int, d2: int, **kwargs
) -> tuple[int, Fraction]:
    """Offset minimising steady bandwidth (ties: smallest offset)."""
    table = bandwidth_by_offset(config, d1, d2, **kwargs)
    off = min(sorted(table), key=lambda o: table[o])
    return off, table[off]


def offsets_achieving(
    config: MemoryConfig,
    d1: int,
    d2: int,
    bandwidth: Fraction,
    **kwargs,
) -> list[int]:
    """All start offsets whose steady bandwidth equals ``bandwidth``."""
    table = bandwidth_by_offset(config, d1, d2, **kwargs)
    return [o for o in sorted(table) if table[o] == bandwidth]
