"""Two-stream experiment helpers.

Wraps the engine for the configuration every theorem talks about: two
infinite streams, either on different CPUs (``s = m`` effectively — paths
are no bottleneck) or on one CPU of a sectioned memory.  Adds the
start-offset sweeps used to verify existence claims ("there exist start
banks such that ...") and to observe start dependence (Figs. 4-6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction

from ..core.stream import AccessStream
from ..memory.config import MemoryConfig
from .engine import SimulationResult, simulate_streams
from .priority import PriorityRule

__all__ = [
    "ObservedRegime",
    "PairResult",
    "simulate_pair",
    "bandwidth_by_offset",
    "best_offset",
    "worst_offset",
    "offsets_achieving",
]


class ObservedRegime(enum.Enum):
    """Steady-state behaviour read off a simulated pair."""

    CONFLICT_FREE = "conflict-free"        # both streams full rate
    BARRIER_ON_2 = "barrier-on-2"          # stream 1 full rate, 2 delayed
    BARRIER_ON_1 = "barrier-on-1"          # inverted barrier (Fig. 6)
    MUTUAL = "mutual"                      # both delayed (double conflict)


@dataclass(frozen=True)
class PairResult:
    """Steady-state verdict for one concrete pair of streams."""

    bandwidth: Fraction
    period: int
    grants: tuple[int, int]
    regime: ObservedRegime
    result: SimulationResult

    @property
    def bandwidth_float(self) -> float:
        return float(self.bandwidth)


def _observe_regime(period: int, grants: tuple[int, ...]) -> ObservedRegime:
    g1, g2 = grants
    full1 = g1 == period
    full2 = g2 == period
    if full1 and full2:
        return ObservedRegime.CONFLICT_FREE
    if full1:
        return ObservedRegime.BARRIER_ON_2
    if full2:
        return ObservedRegime.BARRIER_ON_1
    return ObservedRegime.MUTUAL


def simulate_pair(
    config: MemoryConfig,
    d1: int,
    d2: int,
    *,
    b1: int = 0,
    b2: int = 0,
    same_cpu: bool = False,
    priority: PriorityRule | str = "fixed",
    max_cycles: int = 1_000_000,
    trace: bool = False,
) -> PairResult:
    """Exact steady state of two infinite streams.

    ``same_cpu=True`` puts both ports on CPU 0, activating section/path
    arbitration (the Theorem 8/9 topology); the default places them on
    different CPUs (Theorems 2-7: only bank and simultaneous conflicts).
    """
    streams = [
        AccessStream(start_bank=b1, stride=d1, label="1"),
        AccessStream(start_bank=b2, stride=d2, label="2"),
    ]
    cpus = [0, 0] if same_cpu else [0, 1]
    res = simulate_streams(
        config,
        streams,
        cpus=cpus,
        priority=priority,
        steady=True,
        trace=trace,
        max_cycles=max_cycles,
    )
    assert res.steady_bandwidth is not None  # steady=True guarantees it
    assert res.steady_period is not None and res.steady_grants is not None
    grants = (res.steady_grants[0], res.steady_grants[1])
    return PairResult(
        bandwidth=res.steady_bandwidth,
        period=res.steady_period,
        grants=grants,
        regime=_observe_regime(res.steady_period, grants),
        result=res,
    )


def bandwidth_by_offset(
    config: MemoryConfig,
    d1: int,
    d2: int,
    *,
    same_cpu: bool = False,
    priority: PriorityRule | str = "fixed",
    offsets: list[int] | None = None,
) -> dict[int, Fraction]:
    """Steady bandwidth for every relative start offset ``b2 - b1``.

    The analytical model's assumption 2 ("all streams begin
    simultaneously") is harmless because "a relative position in time can
    be transformed to a relative position in space" — this sweep explores
    exactly that space.
    """
    if offsets is None:
        offsets = list(range(config.banks))
    out: dict[int, Fraction] = {}
    for off in offsets:
        pr = simulate_pair(
            config, d1, d2, b1=0, b2=off % config.banks,
            same_cpu=same_cpu, priority=priority,
        )
        out[off] = pr.bandwidth
    return out


def best_offset(
    config: MemoryConfig, d1: int, d2: int, **kwargs
) -> tuple[int, Fraction]:
    """Offset maximising steady bandwidth (ties: smallest offset)."""
    table = bandwidth_by_offset(config, d1, d2, **kwargs)
    off = max(sorted(table), key=lambda o: table[o])
    return off, table[off]


def worst_offset(
    config: MemoryConfig, d1: int, d2: int, **kwargs
) -> tuple[int, Fraction]:
    """Offset minimising steady bandwidth (ties: smallest offset)."""
    table = bandwidth_by_offset(config, d1, d2, **kwargs)
    off = min(sorted(table), key=lambda o: table[o])
    return off, table[off]


def offsets_achieving(
    config: MemoryConfig,
    d1: int,
    d2: int,
    bandwidth: Fraction,
    **kwargs,
) -> list[int]:
    """All start offsets whose steady bandwidth equals ``bandwidth``."""
    table = bandwidth_by_offset(config, d1, d2, **kwargs)
    return [o for o in sorted(table) if table[o] == bandwidth]
