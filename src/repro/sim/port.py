"""Memory ports: the request side of the simulator.

A port (Section II) requests one memory location per clock period on
behalf of its current vector instruction, and "has the capability of
delaying an access request if it cannot be serviced" — a denial stalls
the whole stream by one clock (dynamic conflict resolution).

Ports here serve two masters:

* the core two-stream experiments assign one (usually infinite) stream
  per port and never touch it again;
* the Cray X-MP machine model (:mod:`repro.machine`) feeds each port a
  sequence of finite 64-element streams (vector instructions), issuing
  the next one only when its scheduler says the port is free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.stream import AccessStream

__all__ = ["Port"]


@dataclass
class Port:
    """A single access port bound to a CPU.

    Attributes
    ----------
    index:
        Global port id used by priority rules and statistics.
    cpu:
        Owning CPU id; section conflicts only arise among ports of the
        same CPU, simultaneous bank conflicts only across CPUs.
    label:
        Trace label; defaults to ``str(index + 1)`` to match the paper's
        "1"/"2" stream names.
    """

    index: int
    cpu: int = 0
    label: str = ""

    _stream: AccessStream | None = field(default=None, repr=False)
    _position: int = field(default=0, repr=False)
    _granted_total: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("port index must be non-negative")
        if self.cpu < 0:
            raise ValueError("cpu id must be non-negative")
        if not self.label:
            self.label = str(self.index + 1)

    # ------------------------------------------------------------------
    # Stream management
    # ------------------------------------------------------------------
    def assign(self, stream: AccessStream) -> None:
        """Attach a new stream; only legal when the port is idle."""
        if not self.idle:
            raise RuntimeError(
                f"port {self.index} still busy at position {self._position}"
            )
        self._stream = stream if stream.label else stream.with_label(self.label)
        self._position = 0

    @property
    def stream(self) -> AccessStream | None:
        """The currently assigned stream (``None`` when never assigned)."""
        return self._stream

    @property
    def idle(self) -> bool:
        """True when there is no pending request this clock."""
        if self._stream is None:
            return True
        if self._stream.is_infinite:
            return False
        return self._position >= self._stream.length

    @property
    def position(self) -> int:
        """Index of the next (pending) request within the stream."""
        return self._position

    @property
    def granted_total(self) -> int:
        """Lifetime grant count across all assigned streams."""
        return self._granted_total

    # ------------------------------------------------------------------
    # Per-clock protocol
    # ------------------------------------------------------------------
    def current_bank(self, m: int) -> int:
        """Bank of the pending request; raises when idle."""
        if self.idle:
            raise RuntimeError(f"port {self.index} has no pending request")
        assert self._stream is not None
        return self._stream.bank_at(self._position, m)

    def advance(self) -> None:
        """Consume the pending request after a grant."""
        if self.idle:
            raise RuntimeError(f"port {self.index} has no pending request")
        self._position += 1
        self._granted_total += 1

    # ------------------------------------------------------------------
    # State for cycle detection
    # ------------------------------------------------------------------
    def snapshot_bank(self, m: int) -> int | None:
        """Pending bank, or ``None`` when idle.

        For an *infinite* constant-stride stream the entire future is a
        function of the pending bank alone (``bank_{k+1} = bank_k + d``),
        so this single integer suffices as the port's steady-state
        component.
        """
        return None if self.idle else self.current_bank(m)

    def reset(self) -> None:
        """Forget the stream and counters (fresh port)."""
        self._stream = None
        self._position = 0
        self._granted_total = 0
