"""Priority rules for resolving simultaneous bank and section conflicts.

When two or more ports contend (same inactive bank across CPUs, or same
access path within a CPU), "a priority rule determines which port will be
able to proceed and which ports must wait" (Section II).  The choice
matters: Fig. 8a shows a *fixed* rule locking two streams into a linked
conflict (``b_eff = 3/2``) that a *cyclic* rule dissolves (Fig. 8b,
``b_eff = 2``).

Rules are deliberately tiny state machines with explicit
``snapshot``/``restore`` so the steady-state detector can include them in
the simulation state.
"""

from __future__ import annotations

import abc
from typing import Sequence

__all__ = [
    "PriorityRule",
    "FixedPriority",
    "CyclicPriority",
    "BlockCyclicPriority",
    "LRUPriority",
    "make_priority",
    "parse_priority",
]


def _snapshot_ints(rule: str, snap: tuple, length: int) -> tuple[int, ...]:
    """Validate a snapshot as ``length`` plain ints, or raise clearly.

    Snapshots travel through the steady-cycle detector and (in tests)
    across rule instances; a corrupted or cross-rule tuple must fail
    with a message naming the rule, not an opaque unpack error deep in
    cycle detection.
    """
    if not isinstance(snap, tuple) or len(snap) != length:
        raise ValueError(
            f"{rule} snapshot must be a {length}-tuple, got {snap!r}"
        )
    for value in snap:
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(
                f"{rule} snapshot must contain only integers, got {snap!r}"
            )
    return tuple(int(v) for v in snap)


class PriorityRule(abc.ABC):
    """Strategy picking the winner among contending ports.

    ``choose`` receives the contenders as port indices in ascending
    order plus the current clock; it must return one of them.  ``tick``
    is called once per simulated clock (after arbitration), ``granted``
    once per granted port, letting stateful rules update themselves.
    """

    @abc.abstractmethod
    def choose(self, contenders: Sequence[int], cycle: int) -> int:
        """Winner among ``contenders`` (non-empty, ascending)."""

    def tick(self, cycle: int) -> None:
        """Clock-edge hook (default: stateless)."""

    def granted(self, port: int, cycle: int) -> None:
        """Grant notification hook (default: stateless)."""

    def snapshot(self) -> tuple:
        """Hashable internal state for cycle detection."""
        return ()

    def restore(self, snap: tuple) -> None:
        """Inverse of :meth:`snapshot`."""

    @property
    def name(self) -> str:
        """Identifier used by configs and benchmark tables."""
        return type(self).__name__.removesuffix("Priority").lower()


class FixedPriority(PriorityRule):
    """Lowest port index always wins (Fig. 8a's rule).

    Deterministic and stateless — and exactly the rule under which the
    linked conflict of Fig. 8a persists forever.
    """

    def choose(self, contenders: Sequence[int], cycle: int) -> int:
        if not contenders:
            raise ValueError("no contenders")
        return min(contenders)


class CyclicPriority(PriorityRule):
    """Rotating priority: the favoured port advances every clock.

    With ``n`` ports, on clock ``t`` the port ranked first is
    ``t mod n``; contenders are compared by their distance (mod ``n``)
    from that port.  Over any window each port is favoured equally often,
    which breaks the phase-lock of linked conflicts (Fig. 8b).
    """

    def __init__(self, n_ports: int) -> None:
        if n_ports <= 0:
            raise ValueError("need at least one port")
        self.n_ports = n_ports
        self._offset = 0

    def choose(self, contenders: Sequence[int], cycle: int) -> int:
        if not contenders:
            raise ValueError("no contenders")
        return min(contenders, key=lambda p: (p - self._offset) % self.n_ports)

    def tick(self, cycle: int) -> None:
        self._offset = (self._offset + 1) % self.n_ports

    def snapshot(self) -> tuple:
        return (self._offset,)

    def restore(self, snap: tuple) -> None:
        (offset,) = _snapshot_ints("cyclic", snap, 1)
        if not 0 <= offset < self.n_ports:
            raise ValueError(
                f"cyclic snapshot offset {offset} out of range for "
                f"{self.n_ports} ports"
            )
        self._offset = offset


class BlockCyclicPriority(PriorityRule):
    """Cyclic priority that rotates every ``block`` clocks, not every one.

    The Fig. 8(b) header row reads ``111222111222...`` — the favoured
    stream holds priority for three consecutive clocks (= ``n_c``)
    before it passes on.  This rule reproduces that granularity;
    ``block = 1`` degenerates to :class:`CyclicPriority`.
    """

    def __init__(self, n_ports: int, block: int) -> None:
        if n_ports <= 0:
            raise ValueError("need at least one port")
        if block <= 0:
            raise ValueError("block length must be positive")
        self.n_ports = n_ports
        self.block = block
        self._clock = 0

    def choose(self, contenders: Sequence[int], cycle: int) -> int:
        if not contenders:
            raise ValueError("no contenders")
        offset = (self._clock // self.block) % self.n_ports
        return min(contenders, key=lambda p: (p - offset) % self.n_ports)

    def tick(self, cycle: int) -> None:
        self._clock += 1

    def snapshot(self) -> tuple:
        # only the phase within one full rotation matters
        return (self._clock % (self.block * self.n_ports),)

    def restore(self, snap: tuple) -> None:
        (clock,) = _snapshot_ints("block-cyclic", snap, 1)
        if not 0 <= clock < self.block * self.n_ports:
            raise ValueError(
                f"block-cyclic snapshot phase {clock} out of range for "
                f"block {self.block} x {self.n_ports} ports"
            )
        self._clock = clock

    @property
    def name(self) -> str:
        return f"block-cyclic({self.block})"


class LRUPriority(PriorityRule):
    """Least-recently-granted port wins — a fairness-greedy ablation rule.

    Not in the paper; included to ablate the priority design space
    (DESIGN.md §5.1).  Ties (never granted yet) fall back to port order.
    """

    def __init__(self, n_ports: int) -> None:
        if n_ports <= 0:
            raise ValueError("need at least one port")
        self.n_ports = n_ports
        self._last_grant = [-1] * n_ports

    def choose(self, contenders: Sequence[int], cycle: int) -> int:
        if not contenders:
            raise ValueError("no contenders")
        return min(contenders, key=lambda p: (self._last_grant[p], p))

    def granted(self, port: int, cycle: int) -> None:
        self._last_grant[port] = cycle

    def snapshot(self) -> tuple:
        # Only the *relative order* of last grants matters for future
        # decisions; normalise to ranks so the state space stays finite.
        order = sorted(range(self.n_ports), key=lambda p: (self._last_grant[p], p))
        ranks = [0] * self.n_ports
        for rank, p in enumerate(order):
            ranks[p] = rank
        return tuple(ranks)

    def restore(self, snap: tuple) -> None:
        ranks = _snapshot_ints("lru", snap, self.n_ports)
        if sorted(ranks) != list(range(self.n_ports)):
            raise ValueError(
                f"lru snapshot must be a permutation of ranks "
                f"0..{self.n_ports - 1}, got {snap!r}"
            )
        # Ranks map back to synthetic timestamps preserving the order.
        # They must sit strictly below any cycle number the rule can see
        # next: restoring to 0..n-1 would let a synthetic timestamp
        # compare *newer* than a real grant made at cycle < n-1,
        # inverting LRU order after a restore early in a run.  Negative
        # timestamps (rank - n_ports) are older than every real cycle
        # (>= 0) and than the never-granted initial value only relative
        # to each other — exactly the recorded relative order.
        self._last_grant = [rank - self.n_ports for rank in ranks]


def parse_priority(name: str) -> tuple[str, int]:
    """Validate a priority spec, returning ``(kind, block)``.

    The one grammar authority: ``make_priority``, job validation and
    the serve wire contract all route through it, so a malformed spec
    fails everywhere with the same "invalid priority spec" message.
    """
    if name in ("fixed", "cyclic", "lru"):
        return name, 1
    if isinstance(name, str) and name.startswith("block-cyclic:"):
        spec = name.split(":", 1)[1]
        try:
            block = int(spec)
        except ValueError:
            raise ValueError(
                f"invalid priority spec {name!r}: block length {spec!r} "
                f"is not an integer"
            ) from None
        if block <= 0:
            raise ValueError(
                f"invalid priority spec {name!r}: block length must be "
                f"positive"
            )
        return "block-cyclic", block
    raise ValueError(
        f"invalid priority spec {name!r}: expected 'fixed', 'cyclic', "
        f"'lru' or 'block-cyclic:N'"
    )


def make_priority(name: str, n_ports: int) -> PriorityRule:
    """Factory: ``"fixed"``, ``"cyclic"``, ``"block-cyclic:N"`` or
    ``"lru"``."""
    kind, block = parse_priority(name)
    if kind == "fixed":
        return FixedPriority()
    if kind == "cyclic":
        return CyclicPriority(n_ports)
    if kind == "lru":
        return LRUPriority(n_ports)
    return BlockCyclicPriority(n_ports, block)
