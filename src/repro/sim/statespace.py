"""State-space analysis of stream workloads (extension).

The analytical model's assumption 1 rests on the observation that "the
possible memory states are finite, and some cyclic state will be
reached".  This module turns that observation into tooling: enumerate
the trajectory of a workload, measure its transient length and period,
and aggregate over all relative starts — giving exact distributions
where the paper could only exhibit examples (Figs. 3-6 are single
trajectories of such state spaces).

The detector itself lives in the runner layer now
(:func:`repro.runner.run` with a steady :class:`repro.runner.SimJob`);
these helpers are adapters that shape its outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from ..core.stream import AccessStream
from ..memory.config import MemoryConfig
from .engine import Engine
from .port import Port
from .priority import PriorityRule

__all__ = ["Trajectory", "trajectory", "start_space_profile", "StartSpaceProfile"]


@dataclass(frozen=True)
class Trajectory:
    """One workload's run to its cyclic state.

    ``transient`` — clocks before the periodic regime is entered;
    ``period`` — length of the cycle;
    ``bandwidth`` — exact grants/clock over one period;
    ``grants`` — per-stream grants over one period;
    ``states_visited`` — distinct states seen (transient + cycle).
    """

    transient: int
    period: int
    bandwidth: Fraction
    grants: tuple[int, ...]
    states_visited: int

    @property
    def cycle_fraction_of_states(self) -> float:
        """Share of visited states that belong to the cycle."""
        return self.period / self.states_visited


def _trajectory_from_outcome(out) -> Trajectory:
    assert out.period is not None and out.steady_start is not None
    return Trajectory(
        transient=out.steady_start,
        period=out.period,
        bandwidth=out.bandwidth,
        grants=out.grants,
        states_visited=out.steady_start + out.period,
    )


def trajectory(
    config: MemoryConfig,
    specs: list[tuple[int, int]],
    *,
    cpus: list[int] | None = None,
    priority: PriorityRule | str = "fixed",
    max_cycles: int = 1_000_000,
) -> Trajectory:
    """Run ``(start_bank, stride)`` streams to their cyclic state."""
    if not specs:
        raise ValueError("need at least one stream")
    if not isinstance(priority, str):
        # Legacy direct-engine path for priority rule instances.
        if cpus is None:
            cpus = list(range(len(specs)))
        if len(cpus) != len(specs):
            raise ValueError("cpus and specs must align")
        ports = [Port(index=i, cpu=c) for i, c in enumerate(cpus)]
        engine = Engine(config, ports, priority=priority)
        for port, (b, d) in zip(ports, specs):
            port.assign(AccessStream(b % config.banks, d % config.banks))
        bw, period, grants, start = engine.run_to_steady_state(max_cycles)
        return Trajectory(
            transient=start,
            period=period,
            bandwidth=bw,
            grants=grants,
            states_visited=start + period,
        )

    from ..runner import SimJob, run

    job = SimJob.from_specs(
        config, specs, cpus=cpus, priority=priority, max_cycles=max_cycles
    )
    return _trajectory_from_outcome(run(job))


@dataclass(frozen=True)
class StartSpaceProfile:
    """Aggregate behaviour of a stride pair over all relative starts."""

    m: int
    n_c: int
    d1: int
    d2: int
    bandwidths: dict[int, Fraction]
    transients: dict[int, int]
    periods: dict[int, int]

    @property
    def best(self) -> Fraction:
        return max(self.bandwidths.values())

    @property
    def worst(self) -> Fraction:
        return min(self.bandwidths.values())

    @property
    def mean_bandwidth(self) -> Fraction:
        vals = list(self.bandwidths.values())
        return sum(vals, Fraction(0)) / len(vals)

    @property
    def max_transient(self) -> int:
        return max(self.transients.values())

    def bandwidth_histogram(self) -> dict[Fraction, int]:
        """How many starts land at each steady bandwidth."""
        hist: dict[Fraction, int] = {}
        for bw in self.bandwidths.values():
            hist[bw] = hist.get(bw, 0) + 1
        return hist


def start_space_profile(
    config: MemoryConfig,
    d1: int,
    d2: int,
    *,
    same_cpu: bool = False,
    priority: str = "fixed",
    arbiter: "str | None" = None,
    regulate: "Sequence[str]" = (),
    executor: "object | None" = None,
) -> StartSpaceProfile:
    """Exact profile of a pair over every relative start offset.

    The paper's "in general the relative starting positions cannot be
    predicted" motivates looking at the whole distribution: a pair whose
    *worst* start is fine is robust, one like Fig. 5/6's needs either
    placement control or architectural help.

    The ``m`` per-offset jobs run as one batch through a
    :class:`repro.runner.SweepExecutor` (``executor`` or the process-wide
    default), so they deduplicate, memoize and — given a multi-worker
    executor — fan out in parallel.
    """
    from ..runner import SweepExecutor, default_executor, jobs_for_offsets

    m = config.banks
    ex = executor if executor is not None else default_executor()
    assert isinstance(ex, SweepExecutor)
    jobs = jobs_for_offsets(
        config, d1, d2, range(m), same_cpu=same_cpu, priority=priority,
        arbiter=arbiter, regulate=regulate,
    )
    outcomes = ex.run_many(jobs)
    bandwidths: dict[int, Fraction] = {}
    transients: dict[int, int] = {}
    periods: dict[int, int] = {}
    for off, out in zip(range(m), outcomes):
        assert out.period is not None and out.steady_start is not None
        bandwidths[off] = out.bandwidth
        transients[off] = out.steady_start
        periods[off] = out.period
    return StartSpaceProfile(
        m=m,
        n_c=config.bank_cycle,
        d1=d1 % m,
        d2=d2 % m,
        bandwidths=bandwidths,
        transients=transients,
        periods=periods,
    )
