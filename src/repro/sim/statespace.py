"""State-space analysis of stream workloads (extension).

The analytical model's assumption 1 rests on the observation that "the
possible memory states are finite, and some cyclic state will be
reached".  This module turns that observation into tooling: enumerate
the trajectory of a workload, measure its transient length and period,
and aggregate over all relative starts — giving exact distributions
where the paper could only exhibit examples (Figs. 3-6 are single
trajectories of such state spaces).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.stream import AccessStream
from ..memory.config import MemoryConfig
from .engine import Engine
from .port import Port
from .priority import PriorityRule

__all__ = ["Trajectory", "trajectory", "start_space_profile", "StartSpaceProfile"]


@dataclass(frozen=True)
class Trajectory:
    """One workload's run to its cyclic state.

    ``transient`` — clocks before the periodic regime is entered;
    ``period`` — length of the cycle;
    ``bandwidth`` — exact grants/clock over one period;
    ``grants`` — per-stream grants over one period;
    ``states_visited`` — distinct states seen (transient + cycle).
    """

    transient: int
    period: int
    bandwidth: Fraction
    grants: tuple[int, ...]
    states_visited: int

    @property
    def cycle_fraction_of_states(self) -> float:
        """Share of visited states that belong to the cycle."""
        return self.period / self.states_visited


def trajectory(
    config: MemoryConfig,
    specs: list[tuple[int, int]],
    *,
    cpus: list[int] | None = None,
    priority: PriorityRule | str = "fixed",
    max_cycles: int = 1_000_000,
) -> Trajectory:
    """Run ``(start_bank, stride)`` streams to their cyclic state."""
    if not specs:
        raise ValueError("need at least one stream")
    if cpus is None:
        cpus = list(range(len(specs)))
    if len(cpus) != len(specs):
        raise ValueError("cpus and specs must align")
    ports = [Port(index=i, cpu=c) for i, c in enumerate(cpus)]
    engine = Engine(config, ports, priority=priority)
    for port, (b, d) in zip(ports, specs):
        port.assign(AccessStream(b % config.banks, d % config.banks))
    bw, period, grants, start = engine.run_to_steady_state(max_cycles)
    return Trajectory(
        transient=start,
        period=period,
        bandwidth=bw,
        grants=grants,
        states_visited=start + period,
    )


@dataclass(frozen=True)
class StartSpaceProfile:
    """Aggregate behaviour of a stride pair over all relative starts."""

    m: int
    n_c: int
    d1: int
    d2: int
    bandwidths: dict[int, Fraction]
    transients: dict[int, int]
    periods: dict[int, int]

    @property
    def best(self) -> Fraction:
        return max(self.bandwidths.values())

    @property
    def worst(self) -> Fraction:
        return min(self.bandwidths.values())

    @property
    def mean_bandwidth(self) -> Fraction:
        vals = list(self.bandwidths.values())
        return sum(vals, Fraction(0)) / len(vals)

    @property
    def max_transient(self) -> int:
        return max(self.transients.values())

    def bandwidth_histogram(self) -> dict[Fraction, int]:
        """How many starts land at each steady bandwidth."""
        hist: dict[Fraction, int] = {}
        for bw in self.bandwidths.values():
            hist[bw] = hist.get(bw, 0) + 1
        return hist


def start_space_profile(
    config: MemoryConfig,
    d1: int,
    d2: int,
    *,
    same_cpu: bool = False,
    priority: str = "fixed",
) -> StartSpaceProfile:
    """Exact profile of a pair over every relative start offset.

    The paper's "in general the relative starting positions cannot be
    predicted" motivates looking at the whole distribution: a pair whose
    *worst* start is fine is robust, one like Fig. 5/6's needs either
    placement control or architectural help.
    """
    m = config.banks
    cpus = [0, 0] if same_cpu else [0, 1]
    bandwidths: dict[int, Fraction] = {}
    transients: dict[int, int] = {}
    periods: dict[int, int] = {}
    for off in range(m):
        t = trajectory(
            config,
            [(0, d1), (off, d2)],
            cpus=cpus,
            priority=priority,
        )
        bandwidths[off] = t.bandwidth
        transients[off] = t.transient
        periods[off] = t.period
    return StartSpaceProfile(
        m=m,
        n_c=config.bank_cycle,
        d1=d1 % m,
        d2=d2 % m,
        bandwidths=bandwidths,
        transients=transients,
        periods=periods,
    )
