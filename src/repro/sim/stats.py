"""Conflict accounting.

Section II names three conflict types — bank, simultaneous bank, and
section — and the Fig. 10(c)-(e) evaluation reports how many of each a
workload encounters.  Two countings are useful and both are kept
(DESIGN.md §5.3):

* **stall cycles** — one count per clock a port spends denied, the
  quantity that adds up to lost bandwidth;
* **episodes** — one count per *first* denial after a grant (a conflict
  "encountered", matching how the paper's simulator reports Fig. 10).

A port's denial each clock is attributed to exactly one cause, evaluated
in the arbitration order: bank conflict first, then section conflict,
then simultaneous bank conflict.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction

__all__ = ["ConflictKind", "PortStats", "SimStats"]


class ConflictKind(enum.Enum):
    """Cause of a denied request.

    Section II's three conflict types, plus regulator vetoes (an
    arbiter-policy extension — the bank was free but the stream or
    bank had exhausted its bandwidth budget)."""

    BANK = "bank"
    SIMULTANEOUS = "simultaneous"
    SECTION = "section"
    REGULATED = "regulated"


@dataclass
class PortStats:
    """Counters for one port."""

    grants: int = 0
    stall_cycles: dict[ConflictKind, int] = field(
        default_factory=lambda: {k: 0 for k in ConflictKind}
    )
    episodes: dict[ConflictKind, int] = field(
        default_factory=lambda: {k: 0 for k in ConflictKind}
    )
    #: Longest contiguous run of denied clocks seen so far — the
    #: worst-case latency a single element suffered (a barrier victim's
    #: signature: runs of length (d2-d1)/f).
    max_stall_run: int = 0
    #: True while the port is inside a stall run (for episode counting).
    _stalled: bool = field(default=False, repr=False)
    _run: int = field(default=0, repr=False)

    @property
    def total_stall_cycles(self) -> int:
        return sum(self.stall_cycles.values())

    @property
    def total_episodes(self) -> int:
        return sum(self.episodes.values())

    @property
    def mean_stall_run(self) -> float:
        """Average stall-run length (0.0 when never stalled)."""
        if self.total_episodes == 0:
            return 0.0
        return self.total_stall_cycles / self.total_episodes

    def record_grant(self) -> None:
        self.grants += 1
        self._stalled = False
        self._run = 0

    def record_denial(self, kind: ConflictKind) -> None:
        self.stall_cycles[kind] += 1
        self._run += 1
        if self._run > self.max_stall_run:
            self.max_stall_run = self._run
        if not self._stalled:
            self.episodes[kind] += 1
            self._stalled = True


@dataclass
class SimStats:
    """Aggregate statistics for a simulation run."""

    ports: list[PortStats]
    cycles: int = 0

    @classmethod
    def for_ports(cls, n: int) -> "SimStats":
        return cls(ports=[PortStats() for _ in range(n)])

    # ------------------------------------------------------------------
    @property
    def total_grants(self) -> int:
        return sum(p.grants for p in self.ports)

    def effective_bandwidth(self) -> Fraction:
        """Measured ``b_eff`` over the whole run (grants per clock)."""
        if self.cycles <= 0:
            raise ValueError("no cycles simulated yet")
        return Fraction(self.total_grants, self.cycles)

    def stall_cycles(self, kind: ConflictKind | None = None) -> int:
        """Total stall cycles, optionally restricted to one cause."""
        if kind is None:
            return sum(p.total_stall_cycles for p in self.ports)
        return sum(p.stall_cycles[kind] for p in self.ports)

    def episodes(self, kind: ConflictKind | None = None) -> int:
        """Total conflict episodes, optionally restricted to one cause."""
        if kind is None:
            return sum(p.total_episodes for p in self.ports)
        return sum(p.episodes[kind] for p in self.ports)

    def per_port_grants(self) -> list[int]:
        return [p.grants for p in self.ports]

    def summary(self) -> dict[str, object]:
        """Flat dict for report tables / benchmark extra-info."""
        return {
            "cycles": self.cycles,
            "grants": self.total_grants,
            "b_eff": float(self.effective_bandwidth()) if self.cycles else None,
            "bank_conflicts": self.episodes(ConflictKind.BANK),
            "section_conflicts": self.episodes(ConflictKind.SECTION),
            "simultaneous_conflicts": self.episodes(ConflictKind.SIMULTANEOUS),
            "bank_stall_cycles": self.stall_cycles(ConflictKind.BANK),
            "section_stall_cycles": self.stall_cycles(ConflictKind.SECTION),
            "simultaneous_stall_cycles": self.stall_cycles(
                ConflictKind.SIMULTANEOUS
            ),
            "regulated_conflicts": self.episodes(ConflictKind.REGULATED),
            "regulated_stall_cycles": self.stall_cycles(
                ConflictKind.REGULATED
            ),
        }
