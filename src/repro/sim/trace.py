"""Per-clock event trace, the raw material of the paper's figures.

Figures 2-9 are bank-by-clock diagrams; :class:`TraceRecorder` captures
the events they visualise — which port was granted which bank, and which
port was denied, why, and by whom — so :mod:`repro.viz.ascii_trace` can
render them after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .stats import ConflictKind

__all__ = ["GrantEvent", "DenialEvent", "CycleTrace", "TraceRecorder"]


@dataclass(frozen=True, slots=True)
class GrantEvent:
    """A serviced request."""

    port: int
    bank: int
    label: str


@dataclass(frozen=True, slots=True)
class DenialEvent:
    """A delayed request.

    ``blocker`` is the port index that held the resource (the bank's
    current occupant for bank conflicts, the winning contender for
    section/simultaneous conflicts); ``None`` when untracked.
    """

    port: int
    bank: int
    kind: ConflictKind
    label: str
    blocker: int | None = None


@dataclass(slots=True)
class CycleTrace:
    """Everything that happened in one clock period."""

    cycle: int
    grants: list[GrantEvent] = field(default_factory=list)
    denials: list[DenialEvent] = field(default_factory=list)
    #: label of the port the priority rule favours this clock (the
    #: "priority" header row of the paper's Figs. 8-9).
    priority_label: str = ""


class TraceRecorder:
    """Append-only event log with a bounded length.

    The bound prevents a runaway steady-state run from accumulating
    gigabytes; figures need a few dozen clocks.
    """

    def __init__(self, max_cycles: int = 10_000) -> None:
        if max_cycles <= 0:
            raise ValueError("max_cycles must be positive")
        self.max_cycles = max_cycles
        self.cycles: list[CycleTrace] = []
        self._current: CycleTrace | None = None

    # ------------------------------------------------------------------
    @property
    def recording(self) -> bool:
        """False once the bound is hit; the engine then skips logging."""
        return len(self.cycles) < self.max_cycles

    def begin_cycle(self, cycle: int, priority_label: str = "") -> None:
        if not self.recording:
            self._current = None
            return
        self._current = CycleTrace(cycle=cycle, priority_label=priority_label)
        self.cycles.append(self._current)

    def grant(self, port: int, bank: int, label: str) -> None:
        if self._current is not None:
            self._current.grants.append(GrantEvent(port, bank, label))

    def denial(
        self,
        port: int,
        bank: int,
        kind: ConflictKind,
        label: str,
        blocker: int | None = None,
    ) -> None:
        if self._current is not None:
            self._current.denials.append(
                DenialEvent(port, bank, kind, label, blocker)
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cycles)

    def window(self, start: int, stop: int) -> list[CycleTrace]:
        """Recorded cycles with ``start <= cycle < stop``."""
        return [c for c in self.cycles if start <= c.cycle < stop]
