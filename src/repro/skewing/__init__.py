"""Skewing schemes under the paper's conflict model (extension).

The conclusion recommends considering "the application of skewing
schemes" to build uniform access environments; this package evaluates
that recommendation with the same simulator used for everything else.

``streams``
    :class:`MappedStream` — constant address stride through an arbitrary
    bank mapping.
``evaluate``
    Plain-vs-skewed bandwidth comparisons and stride-sensitivity sweeps.
"""

from .evaluate import (
    SkewComparison,
    compare_mappings,
    measure_bandwidth,
    stride_sensitivity,
)
from .streams import MappedStream
from .sweeps import (
    SweepVerdict,
    min_recurrence_gap,
    sweep_report,
    window_conflict_free,
)

__all__ = [
    "MappedStream",
    "SkewComparison",
    "SweepVerdict",
    "compare_mappings",
    "measure_bandwidth",
    "min_recurrence_gap",
    "stride_sensitivity",
    "sweep_report",
    "window_conflict_free",
]
