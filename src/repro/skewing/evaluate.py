"""Skewing-scheme evaluation (the conclusion's outlook, quantified).

The paper's last paragraph suggests skewing schemes ([1], [4], [11],
[12]) as a way to build uniform access environments.  This module runs
the comparison the paper stops short of: the same strided workloads under
the plain interleave versus a skewed placement, measured with the same
conflict-counting simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..memory.config import MemoryConfig
from ..memory.mapping import AddressMapping, InterleavedMapping, LinearSkewMapping
from ..sim.engine import Engine
from ..sim.port import Port
from .streams import MappedStream

__all__ = ["SkewComparison", "measure_bandwidth", "compare_mappings", "stride_sensitivity"]


@dataclass(frozen=True)
class SkewComparison:
    """Bandwidth of one workload under two mappings."""

    stride: int
    plain: Fraction
    skewed: Fraction

    @property
    def improvement(self) -> float:
        """Relative gain of the skewed mapping (0 = none)."""
        if self.plain == 0:
            return float("inf") if self.skewed > 0 else 0.0
        return float(self.skewed / self.plain) - 1.0


def measure_bandwidth(
    config: MemoryConfig,
    mapping: AddressMapping,
    strides: list[int],
    *,
    bases: list[int] | None = None,
    cpus: list[int] | None = None,
    horizon: int = 4096,
    warmup: int = 256,
) -> Fraction:
    """Average grants/clock of concurrent mapped streams after warm-up.

    Skewed bank walks need not be eventually periodic in the engine's
    small state key, so we measure a long finite window instead of using
    exact cycle detection.  ``warmup`` clocks are excluded to damp the
    startup transient.
    """
    if horizon <= warmup:
        raise ValueError("horizon must exceed warmup")
    if bases is None:
        bases = list(range(len(strides)))
    if cpus is None:
        cpus = list(range(len(strides)))
    # Skewed bank walks are not eventually periodic in the engine's
    # state key, so this measures a finite window on the engine
    # directly; SimJob only models steady infinite-stride streams.
    ports = [Port(index=i, cpu=c) for i, c in enumerate(cpus)]  # reprolint: disable=LAYER001
    engine = Engine(config, ports)  # reprolint: disable=LAYER001
    for port, base, stride in zip(ports, bases, strides):
        port.assign(MappedStream(mapping=mapping, base=base, stride=stride))
    engine.run(warmup)
    grants0 = sum(p.granted_total for p in ports)
    engine.run(horizon - warmup)
    grants1 = sum(p.granted_total for p in ports)
    return Fraction(grants1 - grants0, horizon - warmup)


def compare_mappings(
    config: MemoryConfig,
    strides: list[int],
    *,
    skew: int = 1,
    **kwargs,
) -> SkewComparison:
    """Plain vs linear-skewed bandwidth for one workload."""
    plain = measure_bandwidth(
        config, InterleavedMapping(config.banks), strides, **kwargs
    )
    skewed = measure_bandwidth(
        config, LinearSkewMapping(config.banks, skew), strides, **kwargs
    )
    return SkewComparison(
        stride=strides[0] if strides else 0, plain=plain, skewed=skewed
    )


def stride_sensitivity(
    config: MemoryConfig,
    strides: range | list[int],
    *,
    peers: int = 1,
    skew: int = 1,
    **kwargs,
) -> list[SkewComparison]:
    """Bench T-E's series: each stride paired against unit-stride peers.

    For every stride ``d`` the workload is one stream of address stride
    ``d`` plus ``peers`` unit-stride streams (the Fig. 10 environment in
    miniature); returns one plain-vs-skewed row per ``d``.
    """
    rows: list[SkewComparison] = []
    for d in strides:
        workload = [d] + [1] * peers
        plain = measure_bandwidth(
            config, InterleavedMapping(config.banks), workload, **kwargs
        )
        skewed = measure_bandwidth(
            config, LinearSkewMapping(config.banks, skew), workload, **kwargs
        )
        rows.append(SkewComparison(stride=d, plain=plain, skewed=skewed))
    return rows
