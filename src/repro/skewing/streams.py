"""Streams over skewed address mappings.

Under a non-trivial address mapping a constant *address* stride is no
longer a constant *bank* distance, so the analytical stream model does
not apply — but the simulator does not care: a port only ever asks
"which bank does request ``k`` want?".  :class:`MappedStream` answers
that through an :class:`~repro.memory.mapping.AddressMapping`, exposing
the same interface :class:`~repro.core.stream.AccessStream` offers the
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.stream import INFINITE
from ..memory.mapping import AddressMapping

__all__ = ["MappedStream"]


@dataclass(frozen=True)
class MappedStream:
    """A constant-*address*-stride stream routed through a mapping.

    Drop-in for :class:`AccessStream` at the engine interface
    (``bank_at`` / ``is_infinite`` / ``length`` / ``label`` /
    ``with_label`` / ``bound``); not usable with the closed-form theory
    or steady-state detection, whose arguments assume the modular bank
    walk.
    """

    mapping: AddressMapping
    base: int
    stride: int
    length: int = INFINITE
    label: str = ""

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("base address must be non-negative")
        if self.stride <= 0:
            raise ValueError("address stride must be positive")
        if self.length != INFINITE and self.length < 0:
            raise ValueError("length must be non-negative or INFINITE")

    @property
    def is_infinite(self) -> bool:
        return self.length == INFINITE

    def bank_at(self, k: int, m: int) -> int:
        if k < 0:
            raise ValueError("request index must be non-negative")
        if not self.is_infinite and k >= self.length:
            raise IndexError(f"request {k} beyond stream length {self.length}")
        if m != self.mapping.m:
            raise ValueError(
                f"mapping is for {self.mapping.m} banks, engine has {m}"
            )
        return self.mapping.bank_of(self.base + k * self.stride)

    def banks(self, m: int, count: int) -> list[int]:
        """First ``count`` bank addresses."""
        return [self.bank_at(k, m) for k in range(count)]

    def with_label(self, label: str) -> "MappedStream":
        return replace(self, label=label)

    def bound(self, m: int) -> "MappedStream":
        """Interface parity with :class:`AccessStream`; validates ``m``."""
        if m != self.mapping.m:
            raise ValueError(
                f"mapping is for {self.mapping.m} banks, engine has {m}"
            )
        return self
