"""Matrix-sweep conflict analysis under arbitrary bank mappings.

The skewing literature ([1] Budnik & Kuck, [4] Lawrie, [11] Shapiro,
[12] van Leeuwen & Wijshoff) asks: can a storage scheme serve *rows,
columns and diagonals* of a matrix all at full speed?  Under a general
mapping a sweep's bank sequence is no longer an arithmetic progression,
so Theorem 1 does not apply — but the underlying criterion survives:

    a periodic bank sequence sustains one access per clock iff no bank
    recurs within any window of ``n_c`` consecutive accesses.

:func:`window_conflict_free` implements that criterion exactly;
:func:`sweep_report` applies it to the classic sweeps of a 2-D
column-major array under any :class:`~repro.memory.mapping.AddressMapping`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..memory.mapping import AddressMapping

__all__ = [
    "window_conflict_free",
    "min_recurrence_gap",
    "SweepVerdict",
    "sweep_report",
]


def min_recurrence_gap(banks: list[int]) -> int:
    """Smallest index distance between equal banks in a periodic sequence.

    ``banks`` is one full period; the sequence is treated as repeating,
    so the wrap-around gap counts too.  Returns ``len(banks)`` when all
    banks are distinct (the gap of the periodic repetition itself).
    """
    if not banks:
        raise ValueError("empty bank sequence")
    period = len(banks)
    last_seen: dict[int, int] = {}
    first_seen: dict[int, int] = {}
    gap = period
    for i, b in enumerate(banks):
        if b in last_seen:
            gap = min(gap, i - last_seen[b])
        else:
            first_seen[b] = i
        last_seen[b] = i
    # wrap-around: last occurrence in this period to first in the next
    for b, first in first_seen.items():
        gap = min(gap, first + period - last_seen[b])
    return gap


def window_conflict_free(banks: list[int], n_c: int) -> bool:
    """Whether a solo stream over ``banks`` (periodic) never stalls.

    Exactly the generalised Section III-A condition: the stream stalls
    iff some bank recurs within ``n_c`` accesses, i.e.
    ``min_recurrence_gap < n_c``.
    """
    if n_c <= 0:
        raise ValueError("bank cycle time must be positive")
    return min_recurrence_gap(banks) >= n_c


@dataclass(frozen=True)
class SweepVerdict:
    """One sweep's bank behaviour under a mapping."""

    sweep: str
    period: int
    distinct_banks: int
    min_gap: int
    conflict_free: bool
    #: Solo bandwidth by the generalised formula (exact when the
    #: sequence is an arithmetic progression; a bound otherwise).
    bandwidth_bound: Fraction


def _sweep_addresses(j1: int, j2: int, sweep: str) -> list[int]:
    if sweep == "column":
        return [i for i in range(j1)]
    if sweep == "row":
        return [i * j1 for i in range(j2)]
    if sweep == "diagonal":
        return [i * (j1 + 1) for i in range(min(j1, j2))]
    raise ValueError(f"unknown sweep {sweep!r}")


def sweep_report(
    mapping: AddressMapping,
    dims: tuple[int, int],
    n_c: int,
    *,
    base: int = 0,
) -> list[SweepVerdict]:
    """Column/row/diagonal verdicts for a 2-D column-major array.

    The Budnik-Kuck question in executable form: a mapping "wins" when
    all three sweeps are conflict free.
    """
    if len(dims) != 2:
        raise ValueError("sweep analysis needs a 2-D array")
    if n_c <= 0:
        raise ValueError("bank cycle time must be positive")
    j1, j2 = dims
    out: list[SweepVerdict] = []
    for sweep in ("column", "row", "diagonal"):
        addrs = _sweep_addresses(j1, j2, sweep)
        banks = [mapping.bank_of(base + a) for a in addrs]
        gap = min_recurrence_gap(banks)
        cf = gap >= n_c
        bound = Fraction(1) if cf else Fraction(gap, n_c)
        out.append(
            SweepVerdict(
                sweep=sweep,
                period=len(banks),
                distinct_banks=len(set(banks)),
                min_gap=gap,
                conflict_free=cf,
                bandwidth_bound=bound,
            )
        )
    return out
