"""Random-access models and gather streams (the paper's related work).

``models``
    Hellerman's ``B(m) ≈ sqrt(πm/2)`` and the binomial
    ``m(1-(1-1/m)^p)`` random-request bandwidths ([1]-[5] context).
``streams``
    :class:`RandomStream` — reproducible random gather/scatter bank
    requests with resubmission semantics.
``evaluate``
    Structured-vs-random bandwidth comparisons on the simulator.
"""

from .evaluate import (
    GatherComparison,
    random_stream_bandwidth,
    structured_vs_random,
)
from .models import (
    binomial_bandwidth,
    hellerman_approximation,
    hellerman_bandwidth,
    simulate_binomial,
)
from .streams import RandomStream, splitmix64

__all__ = [
    "GatherComparison",
    "RandomStream",
    "binomial_bandwidth",
    "hellerman_approximation",
    "hellerman_bandwidth",
    "random_stream_bandwidth",
    "simulate_binomial",
    "splitmix64",
    "structured_vs_random",
]
