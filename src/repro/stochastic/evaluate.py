"""Structured vs random access, quantified under one conflict model.

The paper's whole premise is that vector (structured) access deserves
its own analysis because it can do *much* better than the random-access
models of the prior literature predict.  These helpers measure that gap
on the same simulator: p random gather streams vs p well-placed
unit-stride streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..memory.config import MemoryConfig
from ..sim.engine import Engine
from ..sim.port import Port
from .streams import RandomStream

__all__ = ["GatherComparison", "random_stream_bandwidth", "structured_vs_random"]


@dataclass(frozen=True)
class GatherComparison:
    """Measured bandwidths of matched structured and random workloads."""

    ports: int
    structured: Fraction
    random: Fraction

    @property
    def structured_advantage(self) -> float:
        """How many times faster structured access runs."""
        if self.random == 0:
            return float("inf")
        return float(self.structured / self.random)


def random_stream_bandwidth(
    config: MemoryConfig,
    ports: int,
    *,
    seed: int = 1,
    horizon: int = 4096,
    warmup: int = 512,
    cpus: list[int] | None = None,
) -> Fraction:
    """Average grants/clock of ``ports`` random gather streams.

    Resubmission semantics (a blocked element is retried, Section II's
    dynamic conflict resolution) — the realistic machine behaviour, as
    opposed to the drop-and-redraw assumption of the binomial model.
    """
    if ports <= 0:
        raise ValueError("port count must be positive")
    if horizon <= warmup:
        raise ValueError("horizon must exceed warmup")
    if cpus is None:
        cpus = list(range(ports))
    # Random gather streams have no steady state for the runner's cycle
    # detector; measure a finite horizon on the engine directly.
    port_objs = [Port(index=i, cpu=c) for i, c in enumerate(cpus)]  # reprolint: disable=LAYER001
    engine = Engine(config, port_objs)  # reprolint: disable=LAYER001
    for i, port in enumerate(port_objs):
        port.assign(RandomStream(seed=seed + i))
    engine.run(warmup)
    g0 = sum(p.granted_total for p in port_objs)
    engine.run(horizon - warmup)
    g1 = sum(p.granted_total for p in port_objs)
    return Fraction(g1 - g0, horizon - warmup)


def structured_vs_random(
    config: MemoryConfig,
    ports: int,
    *,
    seed: int = 1,
    horizon: int = 4096,
    warmup: int = 512,
) -> GatherComparison:
    """Same port count, same memory: staggered unit strides vs gathers."""
    from ..core.stream import AccessStream

    if ports <= 0:
        raise ValueError("port count must be positive")
    m, n_c = config.banks, config.bank_cycle
    # Same finite-horizon measurement as above, for the structured side
    # of the comparison (identical accounting on both sides).
    port_objs = [Port(index=i, cpu=i) for i in range(ports)]  # reprolint: disable=LAYER001
    engine = Engine(config, port_objs)  # reprolint: disable=LAYER001
    for i, port in enumerate(port_objs):
        port.assign(AccessStream(start_bank=(i * n_c) % m, stride=1))
    engine.run(warmup)
    g0 = sum(p.granted_total for p in port_objs)
    engine.run(horizon - warmup)
    g1 = sum(p.granted_total for p in port_objs)
    structured = Fraction(g1 - g0, horizon - warmup)

    random = random_stream_bandwidth(
        config, ports, seed=seed, horizon=horizon, warmup=warmup
    )
    return GatherComparison(ports=ports, structured=structured, random=random)
