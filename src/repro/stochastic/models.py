"""Classical random-access bandwidth models (the paper's related work).

The introduction situates the paper against "a variety of analytical
models concerning the access to parallel memories" ([1]-[5]) — models of
*random* addresses, whereas vector processors issue *structured*
constant-stride streams.  To make that contrast executable, this module
implements the two classic random-access results:

* **Hellerman's model** — a single queue of independent uniform
  addresses is scanned until the first bank repeats; the expected run
  length (the achievable bandwidth per memory cycle) is

      ``B(m) = Σ_{k=1..m}  k · P(first repeat after k)
             = Σ_{k=1..m}  m! / ((m-k)! · m^k)``

  with the well-known approximation ``B(m) ≈ sqrt(π·m/2)`` — the
  sub-linear scaling that motivated structured access in the first
  place.

* **The binomial p-request model** (Ravi [2] / Chang-Kuck-Lawrie [5]
  style) — ``p`` independent requests uniformly over ``m`` banks per
  cycle; the expected number of distinct banks hit (requests serviced
  when ``n_c = 1`` and losers are dropped) is

      ``E(m, p) = m · (1 − (1 − 1/m)^p)``.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

__all__ = [
    "hellerman_bandwidth",
    "hellerman_approximation",
    "binomial_bandwidth",
    "simulate_binomial",
]


def hellerman_bandwidth(m: int) -> float:
    """Exact expected run length of distinct banks, ``B(m)``.

    Computed with a numerically stable running product; exact enough for
    any realistic ``m`` (the terms decay super-geometrically).
    """
    if m <= 0:
        raise ValueError("bank count must be positive")
    total = 0.0
    prod = 1.0  # m! / ((m-k)! m^k) for the current k
    for k in range(1, m + 1):
        prod *= (m - k + 1) / m
        total += prod
    return total


def hellerman_approximation(m: int) -> float:
    """``sqrt(π m / 2)`` — the classical approximation to ``B(m)``."""
    if m <= 0:
        raise ValueError("bank count must be positive")
    return math.sqrt(math.pi * m / 2)


def binomial_bandwidth(m: int, p: int) -> Fraction:
    """``E = m (1 − (1 − 1/m)^p)`` distinct banks hit by p requests.

    Exact rational value.  With ``n_c = 1`` and dropped losers this is
    the per-cycle bandwidth of ``p`` random requestors.
    """
    if m <= 0 or p <= 0:
        raise ValueError("m and p must be positive")
    miss = Fraction(m - 1, m) ** p
    return m * (1 - miss)


def simulate_binomial(
    m: int, p: int, cycles: int, seed: int = 0
) -> float:
    """Monte-Carlo check of :func:`binomial_bandwidth` (vectorized).

    Draws ``cycles`` independent rounds of ``p`` uniform bank requests
    and averages the number of distinct banks per round.
    """
    if cycles <= 0:
        raise ValueError("cycle count must be positive")
    if m <= 0 or p <= 0:
        raise ValueError("m and p must be positive")
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, m, size=(cycles, p))
    # distinct count per row: sort rows and count strict increases + 1
    sorted_rows = np.sort(draws, axis=1)
    distinct = 1 + (np.diff(sorted_rows, axis=1) != 0).sum(axis=1)
    return float(distinct.mean())
