"""Text renderings of the paper's figures.

``ascii_trace``
    Bank/clock diagrams in the notation of Figs. 2-9.
``series``
    Bar charts and aligned series tables for the Fig. 10 panels.
``tables``
    Generic monospace tables for reports and benchmark output.
"""

from .ascii_trace import render_result, render_trace, trace_grid
from .profile import render_histogram, render_profile
from .series import bar_chart, multi_series_table
from .tables import format_table

__all__ = [
    "bar_chart",
    "format_table",
    "multi_series_table",
    "render_histogram",
    "render_profile",
    "render_result",
    "render_trace",
    "trace_grid",
]
