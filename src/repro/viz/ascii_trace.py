"""ASCII rendering of bank/clock traces — the paper's Figs. 2-9.

The figures draw time left to right and banks top to bottom.  Cell
conventions (taken from the figure captions):

* a granted access prints the stream's label for each of the ``n_c``
  clocks the bank stays active (e.g. ``111222`` on a bank serving
  stream 1 then stream 2 with ``n_c = 3``);
* ``<`` marks a clock in which stream "2" is delayed (by "1"), ``>`` one
  in which "1" is delayed (by "2") — generalised here to: the delayed
  port's label is *greater* than the blocker's → ``<``, smaller → ``>``;
* ``*`` marks a section conflict;
* ``.`` marks an idle bank.

Delay markers are drawn on the bank the delayed port is waiting for and
take precedence over the occupant's busy fill (matching e.g. Fig. 3's
``1<<<<<222222``).
"""

from __future__ import annotations

from ..memory.config import MemoryConfig
from ..sim.engine import SimulationResult
from ..sim.stats import ConflictKind
from ..sim.trace import TraceRecorder

__all__ = ["render_trace", "render_result", "trace_grid"]

IDLE = "."
SECTION_MARK = "*"


def _delay_mark(delayed_label: str, blocker_label: str | None) -> str:
    """``<`` / ``>`` per the figure convention, ``<`` when blame unknown."""
    if blocker_label is None or delayed_label >= blocker_label:
        return "<"
    return ">"


def trace_grid(
    trace: TraceRecorder,
    config: MemoryConfig,
    *,
    start: int = 0,
    stop: int | None = None,
    port_labels: dict[int, str] | None = None,
) -> list[list[str]]:
    """Character grid ``grid[bank][clock - start]`` for a trace window."""
    if stop is None:
        stop = len(trace.cycles)
    if stop <= start:
        raise ValueError(f"empty trace window [{start}, {stop})")
    m, n_c = config.banks, config.bank_cycle
    width = stop - start
    grid = [[IDLE] * width for _ in range(m)]
    labels = port_labels or {}

    # Pass 1 — busy fill from grants (may extend past the window edge).
    for cyc in trace.window(max(0, start - n_c + 1), stop):
        for g in cyc.grants:
            label = labels.get(g.port, g.label)
            for t in range(cyc.cycle, cyc.cycle + n_c):
                if start <= t < stop:
                    grid[g.bank][t - start] = label

    # Pass 2 — conflict markers overwrite busy fill (but never the grant
    # cell itself, which pass 1 wrote at cyc.cycle and no denial shares,
    # because a denied bank was not granted this clock... except
    # simultaneous/section conflicts where the *winner* was granted the
    # same bank: there the marker documents the loser and wins the cell).
    for cyc in trace.window(start, stop):
        for d in cyc.denials:
            col = cyc.cycle - start
            if not 0 <= col < width:
                continue
            if d.kind is ConflictKind.SECTION:
                grid[d.bank][col] = SECTION_MARK
            else:
                blocker_label = None
                if d.blocker is not None:
                    blocker_label = labels.get(d.blocker, str(d.blocker + 1))
                grid[d.bank][col] = _delay_mark(
                    labels.get(d.port, d.label), blocker_label
                )
    return grid


def render_trace(
    trace: TraceRecorder,
    config: MemoryConfig,
    *,
    start: int = 0,
    stop: int | None = None,
    show_sections: bool = False,
    show_priority: bool = False,
    title: str = "",
) -> str:
    """Format a trace window in the paper's figure layout.

    With ``show_sections=True`` rows carry ``section - bank`` headers like
    Figs. 7-9; ``show_priority=True`` adds the favoured-stream header row
    of Figs. 8-9.
    """
    grid = trace_grid(trace, config, start=start, stop=stop)
    lines: list[str] = []
    if title:
        lines.append(title)
    header = "clock     " + "".join(
        str((start + i) // 10 % 10) if (start + i) % 10 == 0 else " "
        for i in range(len(grid[0]))
    )
    lines.append(header)
    if show_priority:
        # the paper's Figs. 8-9 carry a "priority" row naming the
        # favoured stream per clock.
        by_cycle = {c.cycle: c.priority_label for c in trace.cycles}
        marks = [
            by_cycle.get(start + i, "") or " " for i in range(len(grid[0]))
        ]
        lines.append("priority  " + "".join(mk[0] for mk in marks))
    for bank, row in enumerate(grid):
        if show_sections:
            sec = config.section_of_bank(bank)
            prefix = f"{sec} - {bank:<3d} "
        else:
            prefix = f"bank {bank:<4d} "
        lines.append(prefix + "".join(row))
    return "\n".join(lines)


def render_result(
    result: SimulationResult,
    *,
    start: int = 0,
    stop: int | None = None,
    show_sections: bool = False,
    show_priority: bool = False,
    title: str = "",
) -> str:
    """Render the trace attached to a :class:`SimulationResult`."""
    if result.trace is None:
        raise ValueError("simulation was run without trace=True")
    return render_trace(
        result.trace,
        result.config,
        start=start,
        stop=stop,
        show_sections=show_sections,
        show_priority=show_priority,
        title=title,
    )
