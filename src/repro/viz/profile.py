"""Rendering of start-space profiles (start-dependence, visualised).

Figures 3-6 are single trajectories out of a whole space of relative
starting positions; :func:`render_profile` shows the full space at a
glance — one row per start offset, with the steady bandwidth as an exact
fraction and a proportional bar.
"""

from __future__ import annotations

from ..sim.statespace import StartSpaceProfile

__all__ = ["render_profile", "render_histogram"]


def render_profile(
    profile: StartSpaceProfile, *, width: int = 40, title: str = ""
) -> str:
    """Offset-by-offset view of a pair's start space.

    Bars scale against ``b_eff = 2`` (the two-port maximum) so profiles
    of different pairs are visually comparable.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"pair d=({profile.d1},{profile.d2}) on m={profile.m}, "
        f"n_c={profile.n_c}"
    )
    for off in sorted(profile.bandwidths):
        bw = profile.bandwidths[off]
        bar = "#" * round(width * float(bw) / 2.0)
        frac = (
            str(bw.numerator)
            if bw.denominator == 1
            else f"{bw.numerator}/{bw.denominator}"
        )
        lines.append(
            f"  b2-b1={off:>3}  |{bar:<{width}}| {frac:>6} "
            f"(transient {profile.transients[off]}, "
            f"period {profile.periods[off]})"
        )
    lines.append(
        f"  best {profile.best}, worst {profile.worst}, "
        f"mean {float(profile.mean_bandwidth):.3f}"
    )
    return "\n".join(lines)


def render_histogram(
    profile: StartSpaceProfile, *, width: int = 40, title: str = ""
) -> str:
    """Histogram view: how many starts land at each steady bandwidth."""
    if width <= 0:
        raise ValueError("width must be positive")
    hist = profile.bandwidth_histogram()
    peak = max(hist.values())
    lines: list[str] = []
    if title:
        lines.append(title)
    for bw in sorted(hist):
        count = hist[bw]
        bar = "#" * round(width * count / peak)
        frac = (
            str(bw.numerator)
            if bw.denominator == 1
            else f"{bw.numerator}/{bw.denominator}"
        )
        lines.append(f"  b_eff {frac:>6}: {bar} {count} start(s)")
    return "\n".join(lines)
