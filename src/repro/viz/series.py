"""Terminal plots for result series — the Fig. 10 panels.

Figure 10 plots quantities (execution time, conflict counts) against the
Fortran increment ``INC = 1..16``.  Offline and dependency-free, we render
them as horizontal ASCII bar charts plus aligned value columns; the
benchmark harness prints these so "the same rows/series the paper
reports" are visible in test output.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["bar_chart", "multi_series_table"]


def bar_chart(
    xs: Sequence[object],
    ys: Sequence[float],
    *,
    title: str = "",
    width: int = 50,
    x_label: str = "x",
    y_label: str = "y",
    bar_char: str = "#",
) -> str:
    """Horizontal bar chart: one row per x, bar length ∝ y.

    Values are scaled so the maximum fills ``width`` columns; the numeric
    value is printed after each bar so nothing is lost to rounding.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        raise ValueError("nothing to plot")
    if width <= 0:
        raise ValueError("width must be positive")
    peak = max(ys)
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:>6} | {y_label}")
    for x, y in zip(xs, ys):
        if y < 0:
            raise ValueError("bar charts require non-negative values")
        n = 0 if peak == 0 else round(width * y / peak)
        lines.append(f"{str(x):>6} | {bar_char * n} {y:g}")
    return "\n".join(lines)


def multi_series_table(
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    x_label: str = "x",
    float_format: str = "{:.3f}",
) -> str:
    """Aligned columns: one row per x, one column per named series."""
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
    names = list(series)
    widths = {
        name: max(len(name), *(len(_fmt(v, float_format)) for v in series[name]))
        for name in names
    }
    xw = max(len(x_label), *(len(str(x)) for x in xs))
    lines: list[str] = []
    if title:
        lines.append(title)
    header = f"{x_label:>{xw}}  " + "  ".join(
        f"{n:>{widths[n]}}" for n in names
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(xs):
        row = f"{str(x):>{xw}}  " + "  ".join(
            f"{_fmt(series[n][i], float_format):>{widths[n]}}" for n in names
        )
        lines.append(row)
    return "\n".join(lines)


def _fmt(v: float, float_format: str) -> str:
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, int):
        return str(v)
    return float_format.format(v)
