"""Monospace table formatting shared by reports and benchmarks."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Left-padded column layout with a rule under the header.

    Cells are stringified with ``str``; callers format floats themselves
    so tables stay exact when they print :class:`~fractions.Fraction`
    bandwidths.
    """
    if not headers:
        raise ValueError("need at least one column")
    cells = [[str(c) for c in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
