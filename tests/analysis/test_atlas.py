"""Unit tests for repro.analysis.atlas."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.atlas import loop_advice, pair_atlas_row, stride_atlas
from repro.memory.config import CRAY_XMP_16, MemoryConfig


class TestStrideAtlas:
    def test_rows_cover_requested_strides(self):
        rows = stride_atlas(CRAY_XMP_16, range(1, 17))
        assert [r.stride for r in rows] == list(range(1, 17))

    def test_self_conflicting_flagged(self):
        rows = {r.stride: r for r in stride_atlas(CRAY_XMP_16, [1, 8, 16])}
        assert not rows[1].self_conflicting
        assert rows[8].self_conflicting      # r=2 < 4
        assert rows[16].self_conflicting     # r=1
        assert rows[16].distance == 0

    def test_solo_bandwidth(self):
        rows = {r.stride: r for r in stride_atlas(CRAY_XMP_16, [8])}
        assert rows[8].solo_bandwidth == Fraction(1, 2)

    def test_safe_property(self):
        rows = {r.stride: r for r in stride_atlas(CRAY_XMP_16, [1, 8])}
        assert not rows[8].safe
        # stride 1 vs stride 1 on 16 banks n_c=4: r=16 >= 8, CF.
        assert rows[1].safe


class TestLoopAdvice:
    def test_1d_loop(self):
        adv = loop_advice(CRAY_XMP_16, inc=5)
        assert adv.distance == 5

    def test_row_sweep_of_bad_array(self):
        # Sweeping rows of a (16, n) array: distance 0 — the trap.
        adv = loop_advice(CRAY_XMP_16, inc=1, dims=(16, 16), axis=1)
        assert adv.distance == 0
        assert adv.self_conflicting

    def test_safe_dimension_fixes_it(self):
        adv = loop_advice(CRAY_XMP_16, inc=1, dims=(17, 16), axis=1)
        assert adv.distance == 1
        assert not adv.self_conflicting


class TestPairAtlasRow:
    def test_classification_only(self):
        row = pair_atlas_row(MemoryConfig(12, 3), 1, 7)
        assert row["regime"] == "conflict-free"
        assert row["predicted"] == 2
        assert "sim_best" not in row

    def test_with_simulation(self):
        row = pair_atlas_row(MemoryConfig(12, 3), 1, 7, simulate=True)
        assert row["sim_best"] == 2
        assert row["sim_worst"] == 2
