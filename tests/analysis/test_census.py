"""Unit tests for repro.analysis.census."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.census import regime_census
from repro.core.classify import PairRegime


class TestRegimeCensus:
    def test_total_is_pair_count(self):
        c = regime_census(12, 3)
        assert c.total == 11 * 12 // 2  # pairs 1 <= d1 <= d2 < 12
        assert sum(c.counts.values()) == c.total

    def test_locked_distribution_m16(self):
        """Regression lock on the classifier for the X-MP shape."""
        c = regime_census(16, 4)
        assert c.counts[PairRegime.CONFLICT_FREE] == 16
        assert c.counts[PairRegime.UNIQUE_BARRIER] == 16
        assert c.counts[PairRegime.SELF_CONFLICT] == 15
        assert c.counts[PairRegime.BARRIER_START_DEPENDENT] == 16
        assert c.counts[PairRegime.DISJOINT_POSSIBLE] == 17
        assert c.counts[PairRegime.CONFLICTING] == 40
        assert c.determined == 32

    def test_prime_m_has_no_disjoint_or_self_conflict(self):
        # gcd(m, d) = 1 for every d on a prime bank count.
        c = regime_census(13, 4)
        assert PairRegime.DISJOINT_POSSIBLE not in c.counts
        assert PairRegime.SELF_CONFLICT not in c.counts

    def test_share(self):
        c = regime_census(12, 3)
        assert c.share(PairRegime.CONFLICT_FREE) == Fraction(8, 66)
        assert sum(c.share(r) for r in c.counts) == 1

    def test_exclude_self_conflicting(self):
        full = regime_census(16, 4)
        clean = regime_census(16, 4, include_self_conflicting=False)
        assert PairRegime.SELF_CONFLICT not in clean.counts
        assert clean.total == full.total - full.counts[PairRegime.SELF_CONFLICT]

    def test_rows_skip_empty(self):
        c = regime_census(13, 4)
        names = [r[0] for r in c.rows()]
        assert "disjoint-possible" not in names
        assert "conflict-free" in names

    def test_small_nc_more_freedom(self):
        # lowering n_c can only move pairs toward conflict-freeness.
        hard = regime_census(16, 4)
        easy = regime_census(16, 1)
        assert (
            easy.counts.get(PairRegime.CONFLICT_FREE, 0)
            >= hard.counts.get(PairRegime.CONFLICT_FREE, 0)
        )

    def test_empty_share_raises(self):
        from repro.analysis.census import RegimeCensus

        c = RegimeCensus(m=4, n_c=2, s=None, counts={}, total=0)
        with pytest.raises(ValueError):
            c.share(PairRegime.CONFLICT_FREE)
