"""Unit tests for repro.analysis.loopnest."""

from __future__ import annotations

import pytest

from repro.analysis.loopnest import ArrayRef, analyze_kernel
from repro.core.classify import PairRegime
from repro.memory.config import CRAY_XMP_16, MemoryConfig


class TestArrayRef:
    def test_distance_1d(self):
        assert ArrayRef("A", (1000,), inc=5).distance(16) == 5

    def test_distance_row_sweep(self):
        ref = ArrayRef("A", (100, 50), axis=1, inc=1)
        assert ref.distance(16) == 100 % 16

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayRef("A", ())
        with pytest.raises(ValueError):
            ArrayRef("A", (8,), kind="prefetch")


class TestAnalyzeKernel:
    def test_clean_unit_stride_kernel(self):
        report = analyze_kernel(
            MemoryConfig(banks=16, bank_cycle=4),
            [
                ArrayRef("X", (1000,), inc=1),
                ArrayRef("Y", (1000,), inc=1, kind="store"),
            ],
        )
        assert not report.self_conflicting_refs
        # equal unit strides with r=16 >= 2n_c: certainly conflict free
        assert report.clean

    def test_resonant_row_sweep_flagged_and_fixed(self):
        report = analyze_kernel(
            CRAY_XMP_16,
            [ArrayRef("M", (16, 64), axis=1, inc=1)],
        )
        (ref,) = report.refs
        assert ref.distance == 0
        assert not ref.solo.conflict_free
        assert ref.suggested_leading_dimension == 17

    def test_no_suggestion_for_axis0(self):
        # stride comes from the increment itself, not the dimensioning.
        report = analyze_kernel(
            CRAY_XMP_16, [ArrayRef("V", (4096,), inc=16)]
        )
        (ref,) = report.refs
        assert not ref.solo.conflict_free
        assert ref.suggested_leading_dimension is None

    def test_pairwise_matrix(self):
        report = analyze_kernel(
            MemoryConfig(banks=12, bank_cycle=3),
            [
                ArrayRef("A", (999,), inc=1),
                ArrayRef("B", (999,), inc=7),
                ArrayRef("C", (999,), inc=2),
            ],
        )
        assert set(report.pairs) == {(0, 1), (0, 2), (1, 2)}
        assert report.pairs[(0, 1)].regime is PairRegime.CONFLICT_FREE

    def test_worst_pair(self):
        report = analyze_kernel(
            MemoryConfig(banks=13, bank_cycle=4),
            [ArrayRef("A", (999,), inc=1), ArrayRef("B", (999,), inc=3)],
        )
        worst = report.worst_pair
        assert worst is not None
        key, cls = worst
        assert key == (0, 1)
        assert cls.regime is PairRegime.BARRIER_START_DEPENDENT

    def test_sectioned_config_engages_theorem9(self):
        report = analyze_kernel(
            MemoryConfig(banks=12, bank_cycle=2, sections=2),
            [ArrayRef("A", (999,), inc=1), ArrayRef("B", (999,), inc=1)],
        )
        # eq. 32 still admits conflict-freeness at offset 3 (Fig. 7)
        assert report.pairs[(0, 1)].regime is PairRegime.CONFLICT_FREE

    def test_summary_rows(self):
        report = analyze_kernel(
            CRAY_XMP_16, [ArrayRef("A", (999,), inc=2, kind="store")]
        )
        rows = report.summary_rows()
        assert rows[0][0] == "A" and rows[0][1] == "store"
        assert rows[0][2] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_kernel(CRAY_XMP_16, [])
