"""Unit tests for repro.analysis.montecarlo."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.montecarlo import expected_bandwidth, sample_environments
from repro.memory.config import MemoryConfig


@pytest.fixture
def cfg():
    return MemoryConfig(banks=16, bank_cycle=4)


class TestSampleEnvironments:
    def test_three_unit_strides_always_three(self, cfg):
        # r = 16 >= 3 n_c: any placement synchronizes to full rate.
        s = sample_environments(cfg, [1, 1, 1], samples=30)
        assert s.worst == s.best == 3
        assert s.mean == 3.0
        assert s.spread == 0.0
        assert s.best_share == 1.0

    def test_reproducible_with_seed(self, cfg):
        a = sample_environments(cfg, [1, 1, 8], samples=25, seed=3)
        b = sample_environments(cfg, [1, 1, 8], samples=25, seed=3)
        assert a == b

    def test_bounds_ordering(self, cfg):
        s = sample_environments(cfg, [1, 2, 5], samples=30)
        assert s.worst <= Fraction(int(s.mean * 10**9), 10**9) + 1
        assert float(s.worst) <= s.mean <= float(s.best)

    def test_single_stream_degenerate(self, cfg):
        s = sample_environments(cfg, [8], samples=5)
        assert s.worst == s.best == Fraction(1, 2)

    def test_pair_matches_exhaustive_profile(self):
        """With enough samples the pair summary matches the exact
        start-space enumeration's extremes."""
        from repro.sim.statespace import start_space_profile

        cfg = MemoryConfig(banks=13, bank_cycle=4)
        exact = start_space_profile(cfg, 1, 3)
        sampled = sample_environments(cfg, [1, 3], samples=120, seed=1)
        assert sampled.worst == exact.worst
        assert sampled.best == exact.best

    def test_validation(self, cfg):
        with pytest.raises(ValueError):
            sample_environments(cfg, [], samples=5)
        with pytest.raises(ValueError):
            sample_environments(cfg, [1], samples=0)


class TestExpectedBandwidth:
    def test_shorthand(self, cfg):
        assert expected_bandwidth(cfg, [1, 1, 1], samples=10) == 3.0
