"""Unit tests for repro.analysis.padding."""

from __future__ import annotations

import pytest

from repro.analysis.padding import evaluate_padding, optimize_padding


class TestEvaluatePadding:
    def test_start_banks_follow_pad(self):
        r = evaluate_padding(1, pad=1, n=64, other_cpu_active=False)
        assert r.start_banks == {"A": 0, "B": 1, "C": 2, "D": 3}

    def test_pad_zero_aligns_everything(self):
        r = evaluate_padding(1, pad=0, n=64, other_cpu_active=False)
        assert set(r.start_banks.values()) == {0}

    def test_idim_reported(self):
        r = evaluate_padding(1, pad=3, n=64, other_cpu_active=False)
        assert r.idim % 16 == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            evaluate_padding(1, pad=-1, n=64)
        with pytest.raises(ValueError):
            evaluate_padding(1, pad=0, n=64, base_words=30)  # not mult of m
        with pytest.raises(ValueError):
            evaluate_padding(1, pad=0, n=64, base_words=16)  # too small


class TestOptimizePadding:
    def test_ranking_sorted(self):
        ranked = optimize_padding(
            1, pads=[0, 1, 2, 3], n=128, other_cpu_active=False
        )
        cycles = [r.cycles for r in ranked]
        assert cycles == sorted(cycles)

    def test_ties_prefer_smaller_pad(self):
        ranked = optimize_padding(
            1, pads=[3, 1], n=128, other_cpu_active=False
        )
        best = ranked[0]
        same = [r for r in ranked if r.cycles == best.cycles]
        assert same[0].pad == min(r.pad for r in same)

    def test_padding_matters_for_dedicated_unit_stride(self):
        """On the dedicated machine, pad choice changes the triad's time
        (the four streams collide differently per relative placement)."""
        ranked = optimize_padding(1, n=256, other_cpu_active=False)
        assert ranked[0].cycles < ranked[-1].cycles

    def test_default_pad_space_is_one_bank_period(self):
        ranked = optimize_padding(2, n=64, other_cpu_active=False)
        assert sorted(r.pad for r in ranked) == list(range(16))
