"""Unit tests for repro.analysis.report."""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.report import (
    fraction_str,
    pair_sweep_report,
    single_sweep_report,
    triad_report,
)
from repro.analysis.sweep import pair_sweep, single_stream_sweep
from repro.machine.xmp import TriadResult


class TestFractionStr:
    def test_integer(self):
        assert fraction_str(Fraction(2)) == "2"

    def test_proper_fraction(self):
        assert fraction_str(Fraction(7, 6)) == "7/6 (1.167)"

    def test_none(self):
        assert fraction_str(None) == "-"


class TestReports:
    def test_single_sweep_report(self):
        rows = single_stream_sweep(8, 2, simulate=False)
        text = single_sweep_report(rows, title="T-A")
        assert text.splitlines()[0] == "T-A"
        assert "predicted b_eff" in text
        assert "NO" not in text  # all agree

    def test_pair_sweep_report(self):
        rows = pair_sweep(8, 2, pairs=[(1, 3)])
        text = pair_sweep_report(rows)
        assert "regime" in text
        assert "in bounds" in text

    def test_triad_report(self):
        rows = [
            TriadResult(
                inc=1, cycles=2412, other_cpu_active=True,
                bank_conflicts=992, section_conflicts=87,
                simultaneous_conflicts=31, bank_stall_cycles=0,
                section_stall_cycles=0, simultaneous_stall_cycles=0,
                triad_grants=4096,
            )
        ]
        text = triad_report(rows, title="Fig 10")
        assert "Fig 10" in text
        assert "2412" in text
        assert "992" in text
