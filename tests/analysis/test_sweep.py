"""Unit tests for repro.analysis.sweep."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.sweep import (
    canonical_pairs,
    pair_sweep,
    single_stream_sweep,
)


class TestCanonicalPairs:
    def test_first_stride_divides_m(self):
        for d1, d2 in canonical_pairs(12):
            assert 12 % d1 == 0
            assert d1 <= d2 < 12

    def test_excludes_zero_stride(self):
        assert all(d1 != 12 for d1, _ in canonical_pairs(12))

    def test_include_equal_toggle(self):
        with_eq = canonical_pairs(8, include_equal=True)
        without = canonical_pairs(8, include_equal=False)
        assert (1, 1) in with_eq and (1, 1) not in without

    def test_prime_m(self):
        pairs = canonical_pairs(13)
        assert all(d1 == 1 for d1, _ in pairs)
        assert len(pairs) == 12


class TestSingleStreamSweep:
    def test_all_agree(self):
        rows = single_stream_sweep(12, 3)
        assert len(rows) == 12
        assert all(r.agrees for r in rows)

    def test_without_simulation(self):
        rows = single_stream_sweep(12, 3, simulate=False)
        assert all(r.predicted == r.simulated for r in rows)

    def test_known_values(self):
        rows = single_stream_sweep(16, 4)
        by_d = {r.d: r for r in rows}
        assert by_d[1].predicted == 1
        assert by_d[8].predicted == Fraction(1, 2)
        assert by_d[0].predicted == Fraction(1, 4)


class TestPairSweep:
    def test_bounds_hold_on_small_memory(self):
        rows = pair_sweep(8, 2)
        assert rows  # non-empty
        for r in rows:
            assert r.within_bounds, (
                r.d1, r.d2, r.regime, r.best, r.worst,
                r.classification.bandwidth_lower,
                r.classification.bandwidth_upper,
            )

    def test_explicit_pairs(self):
        rows = pair_sweep(12, 3, pairs=[(1, 7)])
        assert len(rows) == 1
        assert rows[0].regime == "conflict-free"
        assert rows[0].best == rows[0].worst == 2

    def test_priority_parameter(self):
        rows = pair_sweep(12, 3, pairs=[(1, 7)], priority="cyclic")
        assert rows[0].best == 2
