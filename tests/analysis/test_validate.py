"""Unit tests for repro.analysis.validate — the theorem/simulator bridge."""

from __future__ import annotations

import pytest

from repro.analysis.validate import (
    Discrepancy,
    validate_conflict_free,
    validate_disjoint,
    validate_single_stream,
    validate_unique_barrier,
)


class TestSingleStream:
    @pytest.mark.parametrize("m,n_c", [(8, 2), (12, 3), (13, 6), (16, 4)])
    def test_no_discrepancies(self, m, n_c):
        assert validate_single_stream(m, n_c) == []

    def test_subset_of_strides(self):
        assert validate_single_stream(16, 4, strides=[0, 1, 8]) == []


class TestConflictFree:
    def test_paper_configs_clean(self):
        pairs = [(1, 7), (1, 5), (1, 1), (2, 2), (1, 6), (3, 3)]
        assert validate_conflict_free(12, 3, pairs) == []

    def test_xmp_shape_clean(self):
        pairs = [(1, 1), (1, 5), (1, 9), (2, 2), (1, 3)]
        assert validate_conflict_free(16, 4, pairs) == []

    def test_self_conflicting_pairs_skipped(self):
        # d=8 on m=16, n_c=4 violates r >= n_c: outside the hypotheses,
        # must not produce (spurious) discrepancies.
        assert validate_conflict_free(16, 4, [(8, 1)]) == []


class TestDisjoint:
    def test_clean(self):
        assert validate_disjoint(12, 3, [(2, 4), (3, 6), (2, 2)]) == []
        assert validate_disjoint(16, 4, [(2, 2), (2, 6)]) == []


class TestUniqueBarrier:
    def test_scaled_fig5_clean(self):
        assert validate_unique_barrier(26, 4, [(1, 3)]) == []

    def test_requires_canonical_pairs(self):
        with pytest.raises(ValueError):
            validate_unique_barrier(26, 4, [(3, 1)])

    def test_non_barrier_pairs_skipped(self):
        assert validate_unique_barrier(12, 3, [(1, 7)]) == []


class TestDiscrepancyRepr:
    def test_str(self):
        d = Discrepancy(where="x", predicted=1, simulated=2)
        assert "x" in str(d) and "1" in str(d) and "2" in str(d)


class TestSections:
    def test_fig7_shape_clean(self):
        from repro.analysis.validate import validate_sections

        pairs = [(d1, d2) for d1 in range(1, 12) for d2 in range(d1, 12)]
        assert validate_sections(12, 2, 2, pairs) == []

    def test_xmp_shape_clean(self):
        from repro.analysis.validate import validate_sections

        pairs = [(1, 1), (1, 5), (2, 2), (3, 7), (1, 9)]
        assert validate_sections(16, 4, 4, pairs) == []

    def test_fig8_shape_clean(self):
        from repro.analysis.validate import validate_sections

        pairs = [(d, d) for d in range(1, 12)]
        assert validate_sections(12, 3, 3, pairs) == []
