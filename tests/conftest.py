"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.memory.config import MemoryConfig


@pytest.fixture
def fig2():
    """Fig. 2 memory: 12 banks, n_c = 3, unsectioned."""
    return MemoryConfig(banks=12, bank_cycle=3)


@pytest.fixture
def fig3():
    """Figs. 3-4 memory: 13 banks, n_c = 6."""
    return MemoryConfig(banks=13, bank_cycle=6)


@pytest.fixture
def fig5():
    """Figs. 5-6 memory: 13 banks, n_c = 4."""
    return MemoryConfig(banks=13, bank_cycle=4)


@pytest.fixture
def fig7():
    """Fig. 7 memory: 12 banks, 2 sections, n_c = 2."""
    return MemoryConfig(banks=12, bank_cycle=2, sections=2)


@pytest.fixture
def fig8():
    """Figs. 8-9 memory: 12 banks, 3 sections, n_c = 3."""
    return MemoryConfig(banks=12, bank_cycle=3, sections=3)


@pytest.fixture
def xmp():
    """The measured machine's memory: 16 banks, n_c = 4, 4 sections."""
    return MemoryConfig(banks=16, bank_cycle=4, sections=4)
