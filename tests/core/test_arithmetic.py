"""Unit tests for repro.core.arithmetic."""

from __future__ import annotations

import math

import pytest

from repro.core import arithmetic as ar


class TestGcdFamily:
    def test_gcd_basic(self):
        assert ar.gcd(12, 8) == 4
        assert ar.gcd(13, 6) == 1

    def test_gcd_zero_convention(self):
        # The paper's gcd(m, 0) = m convention.
        assert ar.gcd(16, 0) == 16

    def test_gcd3(self):
        assert ar.gcd3(12, 4, 6) == 2
        assert ar.gcd3(12, 1, 7) == 1
        assert ar.gcd3(16, 8, 4) == 4

    def test_egcd_bezout(self):
        g, x, y = ar.egcd(240, 46)
        assert g == math.gcd(240, 46)
        assert 240 * x + 46 * y == g

    def test_egcd_coprime(self):
        g, x, y = ar.egcd(7, 12)
        assert g == 1
        assert (7 * x) % 12 == 1 % 12

    def test_egcd_zero(self):
        g, x, y = ar.egcd(5, 0)
        assert g == 5 and 5 * x + 0 * y == 5

    def test_modinv(self):
        assert (7 * ar.modinv(7, 12)) % 12 == 1
        assert (5 * ar.modinv(5, 16)) % 16 == 1

    def test_modinv_rejects_non_units(self):
        with pytest.raises(ValueError):
            ar.modinv(4, 12)

    def test_lcm(self):
        assert ar.lcm(4, 6) == 12


class TestDivisorsUnits:
    def test_divisors_ordered(self):
        assert ar.divisors(12) == [1, 2, 3, 4, 6, 12]
        assert ar.divisors(13) == [1, 13]
        assert ar.divisors(1) == [1]

    def test_divisors_square(self):
        assert ar.divisors(16) == [1, 2, 4, 8, 16]

    def test_divisors_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ar.divisors(0)

    def test_units_16(self):
        u = ar.units(16)
        assert u == [1, 3, 5, 7, 9, 11, 13, 15]

    def test_units_prime(self):
        assert ar.units(13) == list(range(1, 13))

    def test_is_unit(self):
        assert ar.is_unit(5, 16)
        assert not ar.is_unit(6, 16)


class TestReturnNumber:
    """Theorem 1: r = m / gcd(m, d)."""

    def test_coprime_stride_full_period(self):
        assert ar.return_number(16, 3) == 16
        assert ar.return_number(13, 6) == 13

    def test_divisor_stride(self):
        assert ar.return_number(16, 8) == 2
        assert ar.return_number(16, 4) == 4
        assert ar.return_number(12, 6) == 2

    def test_zero_stride_single_bank(self):
        # gcd(m, 0) = m ⇒ r = 1: the stream hammers one bank.
        assert ar.return_number(16, 0) == 1

    def test_unit_stride(self):
        assert ar.return_number(16, 1) == 16

    def test_paper_example_m12(self):
        # Fig. 2's streams d = 1 and d = 7 both have full return number.
        assert ar.return_number(12, 1) == 12
        assert ar.return_number(12, 7) == 12

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ar.return_number(0, 1)
        with pytest.raises(ValueError):
            ar.return_number(8, -1)


class TestAccessSets:
    def test_access_set_size_is_return_number(self):
        for m in (8, 12, 13, 16):
            for d in range(m):
                assert len(ar.access_set(m, d)) == ar.return_number(m, d)

    def test_access_set_is_coset(self):
        # Z = b + <gcd(m,d)>
        z = ar.access_set(16, 4, b=3)
        assert z == frozenset({3, 7, 11, 15})

    def test_access_sequence(self):
        assert ar.access_sequence(12, 7, 0, 5) == [0, 7, 2, 9, 4]

    def test_access_sequence_negative_count(self):
        with pytest.raises(ValueError):
            ar.access_sequence(12, 1, 0, -1)

    def test_disjoint_cosets_when_gcd_gt_1(self):
        # Theorem 2's construction: consecutive starts with f = 2.
        z1 = ar.access_set(12, 2, b=0)
        z2 = ar.access_set(12, 4, b=1)
        assert not (z1 & z2)


class TestProgressions:
    def test_progression_residues(self):
        assert ar.progression_residues(12, 8) == frozenset({0, 4, 8})
        assert ar.progression_residues(12, 5) == frozenset(range(12))

    def test_progression_zero_step(self):
        assert ar.progression_residues(12, 0) == frozenset({0})
        assert ar.progression_residues(12, 12) == frozenset({0})

    def test_minimal_positive_residue(self):
        assert ar.minimal_positive_residue(12, 8) == 4
        assert ar.minimal_positive_residue(12, 5) == 1

    def test_minimal_positive_residue_zero_is_m(self):
        # gcd(m, 0) = m convention: equal strides never drift.
        assert ar.minimal_positive_residue(12, 0) == 12
        assert ar.minimal_positive_residue(12, 24) == 12


class TestFirstCommonIndex:
    def test_meeting_point(self):
        hit = ar.first_common_index(12, 1, 0, 7, 3)
        assert hit is not None
        k1, k2 = hit
        assert (0 + k1 * 1) % 12 == (3 + k2 * 7) % 12

    def test_disjoint_streams_return_none(self):
        assert ar.first_common_index(12, 2, 0, 4, 1) is None

    def test_same_start(self):
        assert ar.first_common_index(12, 1, 0, 5, 0) == (0, 0)


class TestCeilDiv:
    def test_values(self):
        assert ar.ceil_div(13, 3) == 5
        assert ar.ceil_div(12, 3) == 4
        assert ar.ceil_div(0, 5) == 0

    def test_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            ar.ceil_div(4, 0)
