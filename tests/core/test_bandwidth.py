"""Unit tests for repro.core.bandwidth."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core import bandwidth as bw
from repro.core.bandwidth import single_stream_prediction_table


class TestDefinitions:
    def test_max_bandwidth_is_port_count(self):
        assert bw.max_bandwidth(2) == 2
        assert bw.max_bandwidth(6) == 6
        with pytest.raises(ValueError):
            bw.max_bandwidth(0)

    def test_effective_bandwidth_exact(self):
        assert bw.effective_bandwidth(7, 6) == Fraction(7, 6)
        assert bw.effective_bandwidth(0, 10) == 0

    def test_effective_bandwidth_validation(self):
        with pytest.raises(ValueError):
            bw.effective_bandwidth(1, 0)
        with pytest.raises(ValueError):
            bw.effective_bandwidth(-1, 4)


class TestPairPrediction:
    def test_conflict_free(self):
        assert bw.predict_pair_bandwidth(12, 3, 1, 7) == 2

    def test_unique_barrier(self):
        assert bw.predict_pair_bandwidth(26, 4, 1, 3) == Fraction(4, 3)

    def test_start_dependent_returns_none(self):
        assert bw.predict_pair_bandwidth(13, 4, 1, 3) is None

    def test_bounds(self):
        lo, hi = bw.predicted_or_bounds(12, 3, 1, 7)
        assert lo == hi == 2
        lo, hi = bw.predicted_or_bounds(13, 4, 1, 3)
        assert lo < hi


class TestPredictionTable:
    def test_rows(self):
        rows = single_stream_prediction_table(16, 4, [1, 8, 16])
        assert rows[0] == (1, 16, Fraction(1))
        assert rows[1] == (8, 2, Fraction(1, 2))
        assert rows[2] == (0, 1, Fraction(1, 4))
