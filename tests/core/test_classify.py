"""Unit tests for repro.core.classify."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.classify import PairRegime, classify_pair


class TestConflictFree:
    def test_fig2_pair(self):
        c = classify_pair(12, 3, 1, 7)
        assert c.regime is PairRegime.CONFLICT_FREE
        assert c.predicted_bandwidth == 2
        assert c.conflict_free_offset == 3  # n_c * d1

    def test_bounds_collapse(self):
        c = classify_pair(12, 3, 1, 7)
        assert c.bandwidth_lower == c.bandwidth_upper == 2

    def test_equal_strides_large_r(self):
        c = classify_pair(16, 4, 2, 2)  # r = 8 = 2*n_c
        assert c.regime is PairRegime.CONFLICT_FREE


class TestSelfConflict:
    def test_detected(self):
        c = classify_pair(16, 4, 8, 1)  # r1 = 2 < 4
        assert c.regime is PairRegime.SELF_CONFLICT
        assert c.predicted_bandwidth is None
        # upper bound: solo caps 1/2 + 1
        assert c.bandwidth_upper == Fraction(3, 2)

    def test_stride_zero(self):
        c = classify_pair(16, 4, 0, 1)
        assert c.regime is PairRegime.SELF_CONFLICT
        assert c.notes  # explains the capped bandwidth


class TestUniqueBarrier:
    def test_scaled_fig5(self):
        # m=26, n_c=4, d=(1,3): Theorem 6 applies.
        c = classify_pair(26, 4, 1, 3)
        assert c.regime is PairRegime.UNIQUE_BARRIER
        assert c.predicted_bandwidth == Fraction(4, 3)
        assert c.unique_barrier
        assert c.delayed_stream == 2

    def test_swapped_orientation_flags_victim(self):
        # Swapping the strides swaps the barriered stream.
        c = classify_pair(26, 4, 3, 1)
        assert c.regime is PairRegime.UNIQUE_BARRIER
        assert c.delayed_stream == 1

    def test_delayed_stream_none_elsewhere(self):
        assert classify_pair(12, 3, 1, 7).delayed_stream is None


class TestStartDependentBarrier:
    def test_fig5_pair(self):
        # m=13, n_c=4, d=(1,3): barrier possible, not unique (Figs. 5-6).
        c = classify_pair(13, 4, 1, 3)
        assert c.regime is PairRegime.BARRIER_START_DEPENDENT
        assert c.predicted_bandwidth is None
        assert c.barrier_possible
        assert c.bandwidth_lower <= Fraction(4, 3) <= c.bandwidth_upper


class TestDisjointPossible:
    def test_non_synchronizing_but_disjoint(self):
        # m=12, n_c=3, d=(2,4): f=2>1 so disjoint starts exist; drift
        # gcd(6,1)=1 < 6 so Theorem 3 fails.
        c = classify_pair(12, 3, 2, 4)
        assert c.regime is PairRegime.DISJOINT_POSSIBLE
        assert c.predicted_bandwidth is None
        assert c.bandwidth_upper == 2


class TestConflicting:
    def test_fig3_pair(self):
        # m=13, n_c=6, d=(1,6): not CF, barrier possible but has double
        # conflicts and no uniqueness (Figs. 3-4) — but barrier_possible
        # keeps it in the start-dependent regime.
        c = classify_pair(13, 6, 1, 6)
        assert c.regime in (
            PairRegime.BARRIER_START_DEPENDENT,
            PairRegime.CONFLICTING,
        )
        assert c.predicted_bandwidth is None

    def test_generic_conflicting(self):
        # m=13, n_c=4, d=(1,6): c = 5 >= n_c, no barrier, prime m so no
        # disjoint starts, drift gcd(13,5)=1 < 8 so no CF.
        c = classify_pair(13, 4, 1, 6)
        assert c.regime is PairRegime.CONFLICTING
        assert c.bandwidth_lower < c.bandwidth_upper


class TestSectionedClassification:
    def test_fig7_conflict_free_via_eq32(self):
        c = classify_pair(12, 2, 1, 1, s=2)
        assert c.regime is PairRegime.CONFLICT_FREE
        assert c.conflict_free_offset == 3  # (n_c+1)*d1

    def test_sections_can_break_bank_level_cf(self):
        # d=(2,2) on m=12, n_c=2: bank-level CF (r=6 >= 4) but s=2 makes
        # every path offset collide.
        bank_level = classify_pair(12, 2, 2, 2)
        assert bank_level.regime is PairRegime.CONFLICT_FREE
        sectioned = classify_pair(12, 2, 2, 2, s=2)
        assert sectioned.regime is not PairRegime.CONFLICT_FREE
        assert any("section" in n for n in sectioned.notes)


class TestInputNormalisation:
    def test_strides_reduced_mod_m(self):
        a = classify_pair(12, 3, 13, 19)
        b = classify_pair(12, 3, 1, 7)
        assert a.regime is b.regime
        assert a.predicted_bandwidth == b.predicted_bandwidth
