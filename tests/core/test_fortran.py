"""Unit tests for repro.core.fortran (eq. 33 and Section V)."""

from __future__ import annotations

import pytest

from repro.core import fortran as ft


class TestLoopDistance:
    def test_1d_stride_is_inc_mod_m(self):
        # Section V: "it is simply the stride modulo m of the DO loop".
        assert ft.loop_distance(16, 5) == 5
        assert ft.loop_distance(16, 17) == 1
        assert ft.loop_distance(16, 16) == 0

    def test_second_dimension_multiplies_j1(self):
        # Sweeping the 2nd dim of a (100, 50) array: d = INC * 100 mod m.
        assert ft.loop_distance(16, 1, (100, 50), axis=1) == 100 % 16
        assert ft.loop_distance(16, 2, (100, 50), axis=1) == 200 % 16

    def test_third_dimension(self):
        assert ft.loop_distance(8, 1, (4, 6, 3), axis=2) == (4 * 6) % 8

    def test_negative_inc_reduced(self):
        assert ft.loop_distance(16, -1) == 15

    def test_axis_validation(self):
        with pytest.raises(ValueError):
            ft.loop_distance(16, 1, (10,), axis=1)
        with pytest.raises(ValueError):
            ft.loop_distance(16, 1, (), axis=1)
        with pytest.raises(ValueError):
            ft.loop_distance(0, 1)


class TestArraySpec:
    def test_column_major_offset(self):
        a = ft.ArraySpec("X", (4, 3))
        # element (i, j) at (i-1) + (j-1)*4
        assert a.offset(1, 1) == 0
        assert a.offset(2, 1) == 1
        assert a.offset(1, 2) == 4
        assert a.offset(4, 3) == 11

    def test_size(self):
        assert ft.ArraySpec("X", (4, 3)).size == 12

    def test_address_and_bank(self):
        a = ft.ArraySpec("X", (4, 3), base=100)
        assert a.address(1, 1) == 100
        assert a.bank(16, 1, 2) == (100 + 4) % 16

    def test_start_bank(self):
        assert ft.ArraySpec("X", (5,), base=17).start_bank(16) == 1

    def test_index_validation(self):
        a = ft.ArraySpec("X", (4, 3))
        with pytest.raises(IndexError):
            a.offset(5, 1)
        with pytest.raises(IndexError):
            a.offset(0, 1)
        with pytest.raises(ValueError):
            a.offset(1)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            ft.ArraySpec("X", ())
        with pytest.raises(ValueError):
            ft.ArraySpec("X", (0,))
        with pytest.raises(ValueError):
            ft.ArraySpec("X", (4,), base=-1)

    def test_element_offset_helper(self):
        assert ft.element_offset((4, 3), (2, 2)) == 5


class TestAccessPatternDistances:
    def test_row_distance(self):
        # Rows of a column-major (J1, J2) array step J1 words.
        assert ft.row_distance(16, (100, 50)) == 100 % 16
        assert ft.row_distance(16, (16, 16)) == 0  # the Section V trap!

    def test_column_distance(self):
        assert ft.column_distance(16, (100, 50)) == 1

    def test_diagonal_distance(self):
        assert ft.diagonal_distance(16, (100, 100)) == 101 % 16
        assert ft.diagonal_distance(16, (15, 15)) == 0  # J1+1 = 16

    def test_dimension_requirements(self):
        with pytest.raises(ValueError):
            ft.row_distance(16, (10,))
        with pytest.raises(ValueError):
            ft.diagonal_distance(16, (10,))
        with pytest.raises(ValueError):
            ft.column_distance(16, ())


class TestSafeLeadingDimension:
    def test_already_safe(self):
        assert ft.safe_leading_dimension(16, 101) == 101

    def test_bumps_to_coprime(self):
        # 100 shares a factor 4 with 16; next coprime is 101.
        assert ft.safe_leading_dimension(16, 100) == 101
        assert ft.safe_leading_dimension(16, 16) == 17

    def test_prime_bank_count(self):
        # Every dimension >= 1 coexists with a prime m unless a multiple.
        assert ft.safe_leading_dimension(13, 13) == 14
        assert ft.safe_leading_dimension(13, 12) == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            ft.safe_leading_dimension(0, 4)
        with pytest.raises(ValueError):
            ft.safe_leading_dimension(16, 0)
