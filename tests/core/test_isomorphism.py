"""Unit tests for repro.core.isomorphism (Appendix)."""

from __future__ import annotations

import math

import pytest

from repro.core import isomorphism as iso
from repro.core.arithmetic import units


class TestOrbit:
    def test_contains_self(self):
        assert (1, 3) in iso.orbit(16, 1, 3)

    def test_paper_example_1_3(self):
        # m = 16: 1 ⊕ 3 = 5 ⊕ 15 = 11 ⊕ 1.
        orb = iso.orbit(16, 1, 3)
        assert (5, 15) in orb
        assert (11, 1) in orb

    def test_paper_example_2_3(self):
        # m = 16: 2 ⊕ 3 = 6 ⊕ 9 = 6 ⊕ 1.
        orb = iso.orbit(16, 2, 3)
        assert (6, 9) in orb
        assert (6, 1) in orb

    def test_orbit_size_divides_unit_count(self):
        for m in (8, 12, 13, 16):
            for pair in [(1, 3), (2, 5), (4, 6)]:
                orb = iso.orbit(m, *pair)
                assert len(units(m)) % len(orb) == 0

    def test_validates_m(self):
        with pytest.raises(ValueError):
            iso.orbit(0, 1, 2)


class TestAreIsomorphic:
    def test_positive(self):
        assert iso.are_isomorphic(16, (5, 15), (1, 3))
        assert iso.are_isomorphic(16, (6, 1), (2, 3))

    def test_negative(self):
        # 1 ⊕ 2 has gcd pattern (1, 2); 1 ⊕ 3 has (1, 1): different orbits.
        assert not iso.are_isomorphic(16, (1, 2), (1, 3))

    def test_order_sensitive(self):
        # (3, 1) is the *swapped* pair; the orbit of (1, 3) under m=16
        # does not contain it (k*1=3 and k*3=1 needs k=3 and k=11).
        assert not iso.are_isomorphic(16, (3, 1), (1, 3))


class TestCanonicalize:
    def test_first_distance_divides_m(self):
        for m in (8, 12, 16):
            for d1 in range(1, m):
                for d2 in range(m):
                    c = iso.canonicalize(m, d1, d2)
                    assert m % c.d1 == 0, (m, d1, d2, c)

    def test_canonical_d1_is_gcd(self):
        c = iso.canonicalize(16, 6, 9)
        assert c.d1 == math.gcd(16, 6) == 2

    def test_transform_is_consistent(self):
        m = 16
        for d1, d2 in [(3, 7), (6, 9), (5, 15), (10, 4)]:
            c = iso.canonicalize(m, d1, d2)
            assert (c.k * d1) % m == c.d1 % m
            assert (c.k * d2) % m == c.d2

    def test_idempotent_on_canonical_input(self):
        c = iso.canonicalize(12, 1, 7)
        assert (c.d1, c.d2) == (1, 7)

    def test_class_invariant(self):
        # All members of one orbit canonicalize identically.
        m = 16
        base = iso.canonicalize(m, 2, 3)
        for kd1, kd2 in iso.orbit(m, 2, 3):
            if kd1 == 0:
                continue
            c = iso.canonicalize(m, kd1, kd2)
            assert (c.d1, c.d2) == (base.d1, base.d2)


class TestCanonicalPair:
    def test_prefers_unswapped(self):
        c = iso.canonical_pair(12, 1, 7)
        assert not c.swapped
        assert (c.d1, c.d2) == (1, 7)

    def test_group_action_fixes_order_without_swap(self):
        # (7, 1) maps to (1, 7) via k = 7 — the unit renumbering alone
        # restores d1 <= d2, so no stream swap is required.
        c = iso.canonical_pair(12, 7, 1)
        assert not c.swapped
        assert (c.d1, c.d2) == (1, 7)

    def test_swaps_when_group_action_cannot_fix_order(self):
        # (1, 0): every renumbering keeps d2 = 0 < d1, so the streams
        # must be exchanged to land in the theorems' domain.
        c = iso.canonical_pair(12, 1, 0)
        assert c.swapped

    def test_roundtrip_theorem_domain(self):
        # Every canonical_pair output satisfies d1 | m and d2 >= d1.
        for m in (12, 16):
            for d1 in range(1, m):
                for d2 in range(1, m):
                    c = iso.canonical_pair(m, d1, d2)
                    assert m % c.d1 == 0
                    assert c.d2 >= (c.d1 % m) or c.d2 >= c.d1 % m
