"""Unit tests for repro.core.multistream (k-stream extensions)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.multistream import (
    capacity_bound,
    equal_stride_bandwidth_bound,
    equal_stride_conflict_free,
    equal_stride_offsets,
    max_conflict_free_streams,
)


class TestCapacityBound:
    def test_port_limited(self):
        assert capacity_bound(16, 4, 2) == 2

    def test_bank_limited_xmp_remark(self):
        # Section IV: six ports on 16 banks with n_c=4 cap at 16/4 = 4.
        assert capacity_bound(16, 4, 6) == 4

    def test_fractional_capacity(self):
        assert capacity_bound(13, 6, 4) == Fraction(13, 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            capacity_bound(0, 4, 2)
        with pytest.raises(ValueError):
            capacity_bound(16, 0, 2)
        with pytest.raises(ValueError):
            capacity_bound(16, 4, 0)


class TestMaxConflictFreeStreams:
    def test_unit_stride(self):
        assert max_conflict_free_streams(16, 4, 1) == 4
        assert max_conflict_free_streams(12, 3, 1) == 4
        assert max_conflict_free_streams(13, 6, 1) == 2

    def test_reduced_ring(self):
        # d=2 on 16 banks reaches only 8 banks: r/n_c = 8/4 = 2.
        assert max_conflict_free_streams(16, 4, 2) == 2

    def test_self_conflicting_stride(self):
        assert max_conflict_free_streams(16, 4, 8) == 0

    def test_p2_matches_theorem3_equal_case(self):
        from repro.core.theorems import conflict_free_possible

        for m, n_c in [(12, 3), (16, 4), (13, 4)]:
            for d in range(1, m):
                lhs = equal_stride_conflict_free(m, n_c, d, 2)
                rhs = conflict_free_possible(m, n_c, d, d)
                assert lhs == rhs, (m, n_c, d)


class TestEqualStrideOffsets:
    def test_offsets_shape(self):
        offs = equal_stride_offsets(16, 4, 1, 4)
        assert offs == [0, 4, 8, 12]

    def test_none_when_impossible(self):
        assert equal_stride_offsets(16, 4, 1, 5) is None

    def test_offsets_distinct_banks(self):
        offs = equal_stride_offsets(12, 3, 1, 4)
        assert offs is not None and len(set(offs)) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            equal_stride_conflict_free(16, 4, 1, 0)
        with pytest.raises(ValueError):
            equal_stride_bandwidth_bound(16, 4, 1, 0)


class TestBandwidthBound:
    def test_conflict_free_region(self):
        assert equal_stride_bandwidth_bound(16, 4, 1, 3) == 3

    def test_saturated_region(self):
        assert equal_stride_bandwidth_bound(16, 4, 1, 6) == 4
        assert equal_stride_bandwidth_bound(16, 4, 2, 4) == 2  # r=8, 8/4

    def test_monotone_in_p(self):
        prev = Fraction(0)
        for p in range(1, 9):
            cur = equal_stride_bandwidth_bound(16, 4, 1, p)
            assert cur >= prev
            prev = cur


class TestBoundsAreTightAgainstSimulator:
    def test_staggered_streams_achieve_bound(self):
        from repro.memory.config import MemoryConfig
        from repro.sim.multi import equal_stride_table

        cfg = MemoryConfig(banks=16, bank_cycle=4)
        table = equal_stride_table(cfg, 1, 8)
        for p, bw in table.items():
            assert bw == equal_stride_bandwidth_bound(16, 4, 1, p), p
