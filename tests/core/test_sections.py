"""Unit tests for repro.core.sections (Theorems 8-9, eqs. 30-32)."""

from __future__ import annotations

import pytest

from repro.core import sections as sec


class TestStructure:
    def test_validate_section_count(self):
        sec.validate_section_count(12, 3)
        with pytest.raises(ValueError):
            sec.validate_section_count(12, 5)  # 5 ∤ 12
        with pytest.raises(ValueError):
            sec.validate_section_count(12, 24)  # s > m
        with pytest.raises(ValueError):
            sec.validate_section_count(12, 0)
        with pytest.raises(ValueError):
            sec.validate_section_count(0, 1)

    def test_section_of_bank_cyclic(self):
        assert [sec.section_of_bank(j, 2) for j in range(4)] == [0, 1, 0, 1]
        with pytest.raises(ValueError):
            sec.section_of_bank(0, 0)

    def test_section_set(self):
        # d = 4 on m = 12 visits banks {0,4,8}; with s = 2 all even: {0}.
        assert sec.section_set(12, 2, 4, 0) == frozenset({0})
        assert sec.section_set(12, 2, 4, 1) == frozenset({1})
        # d = 1 visits everything.
        assert sec.section_set(12, 3, 1, 0) == frozenset({0, 1, 2})

    def test_section_sets_disjoint(self):
        assert sec.section_sets_disjoint(12, 2, 4, 0, 4, 1)
        assert not sec.section_sets_disjoint(12, 2, 1, 0, 1, 1)


class TestTheorem8:
    def test_condition(self):
        # gcd(s, d2-d1) >= 2.
        assert sec.disjoint_sections_conflict_free(4, 2, 6)   # gcd(4,4)=4
        assert not sec.disjoint_sections_conflict_free(4, 2, 3)  # gcd(4,1)=1

    def test_equal_strides_always_pass(self):
        # gcd(s, 0) = s >= 2 for any sectioned memory.
        assert sec.disjoint_sections_conflict_free(2, 3, 3)

    def test_validates_s(self):
        with pytest.raises(ValueError):
            sec.disjoint_sections_conflict_free(0, 1, 2)


class TestTheorem9:
    def test_fig7_violates_t9_but_satisfies_eq32(self):
        # Fig. 7: m=12, s=2, n_c=2, d1=d2=1.
        # n_c*d1 = 2 is a multiple of s=2 ⇒ Theorem 9 path fails...
        assert not sec.path_conflict_free(12, 2, 2, 1, 1)
        # ...but eq. (32) holds: gcd(12, 0)=12 >= 2*(2+1)=6, and the
        # (n_c+1)*d1 = 3 offset misses the path collision.
        assert sec.sections_conflict_free_possible(12, 2, 2, 1, 1)
        assert sec.sections_conflict_free_start_offset(12, 2, 2, 1, 1) == 3

    def test_t9_direct_path(self):
        # m=12, s=4, n_c=3, d1=d2=1: T3 holds (gcd(12,0)=12 >= 6) and
        # n_c*d1 = 3 is not a multiple of 4.
        assert sec.path_conflict_free(12, 3, 4, 1, 1)
        assert sec.sections_conflict_free_start_offset(12, 3, 4, 1, 1) == 3

    def test_requires_bank_level_cf(self):
        # Bank-level Theorem 3 fails ⇒ sectioned CF impossible.
        assert not sec.path_conflict_free(13, 6, 13, 1, 6)
        with pytest.raises(ValueError):
            # s must divide m: 13 prime makes most s illegal.
            sec.path_conflict_free(13, 6, 2, 1, 6)

    def test_eq32_failure_gives_none(self):
        # m=12, s=2, n_c=2, d=(2,2): f=2, m'=6, drift 0 ⇒ gcd = 6 >= 6
        # for eq32? 2*(n_c+1) = 6 ⇒ holds; offset (n_c+1)*d1 = 6 ≡ 0 mod 2
        # ⇒ the offset still collides ⇒ not conflict free.
        assert not sec.sections_conflict_free_possible(12, 2, 2, 2, 2)
        assert sec.sections_conflict_free_start_offset(12, 2, 2, 2, 2) is None

    def test_validates_nc(self):
        with pytest.raises(ValueError):
            sec.path_conflict_free(12, 0, 2, 1, 1)
