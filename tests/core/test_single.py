"""Unit tests for repro.core.single (Section III-A)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.single import (
    predict_single,
    predict_single_stream,
    single_stream_bandwidth,
)
from repro.core.stream import AccessStream


class TestConflictFreeRegime:
    def test_unit_stride_full_bandwidth(self):
        p = predict_single(16, 1, 4)
        assert p.bandwidth == 1
        assert p.conflict_free
        assert p.stall_per_period == 0
        assert p.period == 16

    def test_boundary_r_equals_nc(self):
        # r = n_c is conflict free: the start bank has just recovered.
        p = predict_single(16, 4, 4)  # r = 4
        assert p.return_number == 4
        assert p.conflict_free
        assert p.bandwidth == 1


class TestSelfConflictRegime:
    def test_r_below_nc(self):
        # m=16, d=8 ⇒ r=2 < n_c=4 ⇒ b_eff = 2/4.
        p = predict_single(16, 8, 4)
        assert p.bandwidth == Fraction(1, 2)
        assert not p.conflict_free
        assert p.stall_per_period == 2
        assert p.period == 4

    def test_stride_zero_worst_case(self):
        # d ≡ 0: r = 1, b_eff = 1/n_c.
        p = predict_single(16, 0, 4)
        assert p.bandwidth == Fraction(1, 4)
        assert p.period == 4

    def test_stride_m_equivalent_to_zero(self):
        assert predict_single(16, 16, 4) == predict_single(16, 0, 4)

    def test_bandwidth_float(self):
        assert predict_single(16, 8, 4).bandwidth_float == 0.5


class TestConveniences:
    def test_single_stream_bandwidth(self):
        assert single_stream_bandwidth(12, 6, 3) == Fraction(2, 3)

    def test_stream_overload(self):
        s = AccessStream(start_bank=5, stride=8)
        assert predict_single_stream(s, 16, 4).bandwidth == Fraction(1, 2)

    def test_start_bank_irrelevant(self):
        # The regime depends only on the stride.
        a = predict_single_stream(AccessStream(0, 8), 16, 4)
        b = predict_single_stream(AccessStream(9, 8), 16, 4)
        assert a == b


class TestValidation:
    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            predict_single(0, 1, 4)

    def test_rejects_bad_nc(self):
        with pytest.raises(ValueError):
            predict_single(16, 1, 0)


class TestExhaustiveConsistency:
    def test_bandwidth_formula_everywhere(self):
        """b_eff == min(1, r/n_c) for a grid of shapes."""
        for m in (2, 3, 8, 12, 13, 16):
            for n_c in (1, 2, 3, 4, 6):
                for d in range(m):
                    p = predict_single(m, d, n_c)
                    assert p.bandwidth == min(
                        Fraction(1), Fraction(p.return_number, n_c)
                    )
                    # serviced requests per period equals r (or the period
                    # itself when conflict free).
                    assert p.period == (
                        p.return_number if p.conflict_free else n_c
                    )
