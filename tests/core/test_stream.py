"""Unit tests for repro.core.stream."""

from __future__ import annotations

import pytest

from repro.core.stream import INFINITE, AccessStream


class TestConstruction:
    def test_defaults_infinite(self):
        s = AccessStream(start_bank=0, stride=1)
        assert s.is_infinite
        assert s.length == INFINITE

    def test_label_default_empty(self):
        assert AccessStream(0, 1).label == ""

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            AccessStream(-1, 1)

    def test_rejects_negative_stride(self):
        with pytest.raises(ValueError):
            AccessStream(0, -3)

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            AccessStream(0, 1, length=-2)

    def test_zero_length_is_legal(self):
        s = AccessStream(0, 1, length=0)
        assert not s.is_infinite

    def test_frozen(self):
        s = AccessStream(0, 1)
        with pytest.raises(AttributeError):
            s.stride = 2  # type: ignore[misc]


class TestBinding:
    def test_bound_reduces_modulo(self):
        s = AccessStream(start_bank=25, stride=19).bound(12)
        assert s.start_bank == 1 and s.stride == 7

    def test_bound_rejects_bad_m(self):
        with pytest.raises(ValueError):
            AccessStream(0, 1).bound(0)


class TestPaperQuantities:
    def test_return_number_theorem1(self):
        assert AccessStream(0, 8).return_number(16) == 2
        assert AccessStream(0, 7).return_number(12) == 12

    def test_access_set(self):
        s = AccessStream(start_bank=1, stride=4)
        assert s.access_set(12) == frozenset({1, 5, 9})

    def test_bank_at(self):
        s = AccessStream(start_bank=3, stride=7)
        assert [s.bank_at(k, 12) for k in range(4)] == [3, 10, 5, 0]

    def test_bank_at_bounds(self):
        s = AccessStream(0, 1, length=2)
        assert s.bank_at(1, 8) == 1
        with pytest.raises(IndexError):
            s.bank_at(2, 8)
        with pytest.raises(ValueError):
            s.bank_at(-1, 8)

    def test_banks_default_one_period(self):
        s = AccessStream(0, 4)
        assert s.banks(12) == [0, 4, 8]

    def test_banks_finite_stream_truncated(self):
        s = AccessStream(0, 4, length=2)
        assert s.banks(12) == [0, 4]
        with pytest.raises(IndexError):
            s.banks(12, count=5)

    def test_self_conflict_free(self):
        # r = 2 < n_c = 4 on 16 banks with d = 8: self-conflicting.
        assert not AccessStream(0, 8).self_conflict_free(16, 4)
        assert AccessStream(0, 1).self_conflict_free(16, 4)

    def test_self_conflict_free_validates_nc(self):
        with pytest.raises(ValueError):
            AccessStream(0, 1).self_conflict_free(16, 0)


class TestHelpers:
    def test_with_label(self):
        s = AccessStream(0, 1).with_label("2")
        assert s.label == "2"

    def test_shifted(self):
        s = AccessStream(start_bank=10, stride=1).shifted(5, 12)
        assert s.start_bank == 3

    def test_shifted_preserves_other_fields(self):
        s = AccessStream(0, 7, length=9, label="x").shifted(1, 12)
        assert (s.stride, s.length, s.label) == (7, 9, "x")


class TestFromSigned:
    def test_negative_stride_reduced(self):
        s = AccessStream.from_signed(16, 0, -1)
        assert s.stride == 15

    def test_negative_start_reduced(self):
        s = AccessStream.from_signed(16, -3, 2)
        assert s.start_bank == 13

    def test_backwards_loop_same_conflict_behaviour(self):
        """-d and m-d produce identical bank walks."""
        fwd = AccessStream(start_bank=0, stride=13)
        bwd = AccessStream.from_signed(16, 0, -3)
        assert [bwd.bank_at(k, 16) for k in range(16)] == [
            fwd.bank_at(k, 16) for k in range(16)
        ]

    def test_length_and_label_carried(self):
        s = AccessStream.from_signed(8, 0, -2, length=5, label="back")
        assert s.length == 5 and s.label == "back"

    def test_validation(self):
        with pytest.raises(ValueError):
            AccessStream.from_signed(0, 0, 1)
